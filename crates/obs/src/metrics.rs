//! Metrics registry: named counters, gauges, and log-linear histograms.
//!
//! All mutation goes through `&self` (interior mutability) so a registry can
//! be shared by reference across solver, engine, and storage within one
//! query — and, since the registry is `Sync`, across the workers of a
//! parallel batch. Counters and gauges are lock-free atomics once created
//! (a `RwLock` guards only map growth); histograms sit behind one `Mutex`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Number of linear sub-buckets per power-of-two magnitude group.
const SUB_BUCKETS: u64 = 4;

/// A log-linear histogram over `u64` observations.
///
/// Values are grouped by floor-log2 magnitude, each magnitude split into
/// [`SUB_BUCKETS`] linear sub-buckets, giving a worst-case relative bucket
/// width of 25% with a handful of buckets per decade. Zero gets a dedicated
/// bucket. Exact `count`/`sum`/`min`/`max` are tracked alongside.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a value: 0 for 0, else `1 + 4*floor(log2 v) + sub`.
fn bucket_index(v: u64) -> u32 {
    if v == 0 {
        return 0;
    }
    let mag = 63 - v.leading_zeros();
    // Position of v within [2^mag, 2^(mag+1)), scaled to SUB_BUCKETS slots.
    // (v << 2) >> mag maps the magnitude group onto [4, 8); subtracting 4
    // yields the sub-bucket. For mag > 61 shift the value down instead to
    // avoid overflow.
    let sub = if mag <= 61 {
        ((v << 2) >> mag) - SUB_BUCKETS
    } else {
        (v >> (mag - 2)) & 0b11
    };
    1 + mag * SUB_BUCKETS as u32 + sub as u32
}

/// Inclusive lower bound of a bucket, for rendering: the smallest value
/// whose scaled position within the magnitude group reaches `sub`, i.e.
/// `ceil(base * (1 + sub/4))`.
fn bucket_floor(index: u32) -> u64 {
    if index == 0 {
        return 0;
    }
    let mag = (index - 1) / SUB_BUCKETS as u32;
    let sub = ((index - 1) % SUB_BUCKETS as u32) as u128;
    let base = 1u64 << mag;
    base + (base as u128 * sub).div_ceil(SUB_BUCKETS as u128) as u64
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(inclusive lower bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .map(|(&i, &c)| (bucket_floor(i), c))
            .collect()
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`) from the bucket counts.
    ///
    /// The target rank's observations are assumed uniformly spread across
    /// the holding bucket's value range, so the estimate interpolates
    /// linearly within the bucket (midpoint convention: the k-th of c
    /// observations sits at `(k - 0.5) / c` of the bucket width) instead of
    /// reporting a bucket edge. The extreme ranks are exact: rank 1 returns
    /// `min`, rank `count` returns `max` — in particular `p99` of a small
    /// sample can no longer over-report past the largest observation.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        if rank == 1 {
            return self.min;
        }
        let mut seen = 0u64;
        for (&i, &c) in &self.buckets {
            if seen + c >= rank {
                // Bucket value range, tightened to the observed extrema.
                let lo = bucket_floor(i).clamp(self.min, self.max);
                let hi = bucket_floor(i + 1)
                    .saturating_sub(1)
                    .clamp(self.min, self.max);
                if hi <= lo {
                    return lo;
                }
                let into = (rank - seen) as f64 - 0.5;
                let frac = (into / c as f64).clamp(0.0, 1.0);
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
            seen += c;
        }
        self.max
    }

    /// Cumulative bucket counts as `(inclusive upper bound, cumulative)`
    /// pairs, ascending — the shape Prometheus `le` bucket rendering needs.
    /// The final implicit `+Inf` bucket is `count()`, not included here.
    pub fn le_buckets(&self) -> Vec<(u64, u64)> {
        let mut cumulative = 0u64;
        self.buckets
            .iter()
            .map(|(&i, &c)| {
                cumulative += c;
                (bucket_floor(i + 1).saturating_sub(1), cumulative)
            })
            .collect()
    }

    /// Condensed view for snapshots and reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// Exact aggregate view of a [`Histogram`] at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSummary {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Named counters, gauges, and histograms behind `&self`.
///
/// Metric names are `&'static str` dotted paths by convention
/// (`"storage.blocks_read"`, `"solver.states_examined"`); keeping them
/// static makes recording allocation-free on the counter path. The registry
/// is `Sync`: counter/gauge updates are atomic `fetch_add`/`store` under a
/// read lock (the write lock is taken only the first time a name appears),
/// so workers of a parallel batch can share one registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, AtomicU64>>,
    // Gauges store the f64 bit pattern so they can share the atomic path.
    gauges: RwLock<BTreeMap<&'static str, AtomicU64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        {
            let map = self.counters.read().unwrap();
            if let Some(c) = map.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        self.counters
            .write()
            .unwrap()
            .entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .unwrap()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        let bits = value.to_bits();
        {
            let map = self.gauges.read().unwrap();
            if let Some(g) = map.get(name) {
                g.store(bits, Ordering::Relaxed);
                return;
            }
        }
        self.gauges
            .write()
            .unwrap()
            .entry(name)
            .or_insert_with(|| AtomicU64::new(bits))
            .store(bits, Ordering::Relaxed);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .read()
            .unwrap()
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Records `value` into the named histogram.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .observe(value);
    }

    /// Occupied buckets of a histogram (empty vec if absent).
    pub fn histogram_buckets(&self, name: &str) -> Vec<(u64, u64)> {
        self.histograms
            .lock()
            .unwrap()
            .get(name)
            .map(|h| h.nonzero_buckets())
            .unwrap_or_default()
    }

    /// A point-in-time copy of the named histogram, if ever observed.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.lock().unwrap().get(name).cloned()
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, h)| (k.to_string(), h.summary()))
                .collect(),
        }
    }

    /// Counter map keyed by static name — the cheap snapshot the tracer
    /// takes at span boundaries to compute per-span counter deltas.
    pub(crate) fn counters_now(&self) -> BTreeMap<&'static str, u64> {
        self.counters
            .read()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k, v.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// What happened between `earlier` and `self`.
    ///
    /// Counters subtract (saturating, so a reset registry diffs to zero
    /// rather than wrapping); histogram summaries subtract `count`/`sum`
    /// and keep `self`'s `min`/`max` (extrema are not invertible); gauges
    /// keep `self`'s value. Metrics absent from `earlier` count as zero.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let before = earlier.histograms.get(k).copied().unwrap_or_default();
                (
                    k.clone(),
                    HistogramSummary {
                        count: h.count.saturating_sub(before.count),
                        sum: h.sum.saturating_sub(before.sum),
                        min: h.min,
                        max: h.max,
                    },
                )
            })
            .filter(|(_, h)| h.count > 0)
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_zero_has_own_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        let mut last = 0;
        for v in 1..4096u64 {
            let b = bucket_index(v);
            assert!(b >= last, "bucket regressed at v={v}");
            last = b;
        }
        // Values in the same magnitude/quarter share a bucket.
        assert_eq!(bucket_index(64), bucket_index(79));
        assert_ne!(bucket_index(64), bucket_index(80));
    }

    #[test]
    fn bucket_floor_inverts_index_lower_bound() {
        for v in [0u64, 1, 2, 3, 5, 8, 13, 100, 1023, 1024, 1_000_000] {
            let b = bucket_index(v);
            let floor = bucket_floor(b);
            assert!(floor <= v, "floor {floor} > v {v}");
            // The next bucket's floor must be above v.
            if b < u32::MAX {
                assert!(bucket_floor(b + 1) > v, "v {v} not below next floor");
            }
        }
    }

    #[test]
    fn bucket_index_handles_huge_values() {
        assert!(bucket_index(u64::MAX) > bucket_index(u64::MAX / 2));
        assert!(bucket_index(1u64 << 62) < bucket_index(u64::MAX));
    }

    #[test]
    fn histogram_tracks_aggregates() {
        let mut h = Histogram::default();
        for v in [3u64, 9, 27, 81, 0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 81);
        assert!((h.mean() - 24.0).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    fn quantiles_are_exact_on_a_known_uniform_distribution() {
        // 1..=1000 is uniform, so within-bucket interpolation recovers the
        // true rank values exactly: the k-th observation in a bucket sits at
        // (k - 0.5)/c of the bucket width and rounding lands on the integer.
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 500);
        assert_eq!(h.quantile(0.95), 950);
        assert_eq!(h.quantile(0.99), 990);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn small_sample_p99_is_not_biased_to_the_bucket_edge() {
        // Four observations: p99 targets rank 4, which IS the max — the old
        // floor-of-bucket estimate returned 896 (the lower edge of 1000's
        // bucket); the fix returns the observation itself.
        let mut h = Histogram::default();
        for v in [1u64, 1, 1, 1000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(0.5), 1);
        // A single observation reports itself at every quantile.
        let mut one = Histogram::default();
        one.observe(777);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 777, "q={q}");
        }
    }

    #[test]
    fn quantiles_stay_within_observed_range() {
        let mut h = Histogram::default();
        for v in [3u64, 90, 91, 92, 93, 94, 2000] {
            h.observe(v);
        }
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!((3..=2000).contains(&v), "q={q} v={v}");
        }
        // Monotone in q.
        let mut last = 0;
        for i in 0..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!(v >= last, "quantile regressed at q={}", i as f64 / 100.0);
            last = v;
        }
    }

    #[test]
    fn le_buckets_are_cumulative_and_cover_count() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 70, 70, 1000] {
            h.observe(v);
        }
        let le = h.le_buckets();
        let mut last_le = 0;
        let mut last_cum = 0;
        for &(le_bound, cum) in &le {
            assert!(le_bound >= last_le);
            assert!(cum > last_cum);
            last_le = le_bound;
            last_cum = cum;
        }
        assert_eq!(le.last().map(|&(_, c)| c), Some(h.count()));
        // Every observation is ≤ the final bucket's upper bound.
        assert!(le.last().map(|&(b, _)| b).unwrap_or(0) >= h.max());
    }

    #[test]
    fn registry_is_sync_across_threads() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        r.add("t.count", 1);
                        r.observe("t.hist", 8);
                    }
                    r.set_gauge("t.gauge", 2.5);
                });
            }
        });
        assert_eq!(r.counter("t.count"), 4000);
        assert_eq!(r.gauge("t.gauge"), Some(2.5));
        assert_eq!(r.histogram("t.hist").unwrap().count(), 4000);
    }

    #[test]
    fn registry_counters_and_gauges() {
        let r = Registry::new();
        r.add("a.x", 2);
        r.add("a.x", 3);
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 2.5);
        assert_eq!(r.counter("a.x"), 5);
        assert_eq!(r.counter("a.y"), 0);
        assert_eq!(r.gauge("g"), Some(2.5));
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_hist_counts() {
        let r = Registry::new();
        r.add("c", 10);
        r.observe("h", 4);
        let before = r.snapshot();
        r.add("c", 7);
        r.add("d", 1);
        r.observe("h", 8);
        r.observe("h", 16);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counters.get("c"), Some(&7));
        assert_eq!(d.counters.get("d"), Some(&1));
        let h = d.histograms.get("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 24);
    }

    #[test]
    fn snapshot_diff_drops_unchanged_metrics() {
        let r = Registry::new();
        r.add("stable", 5);
        let before = r.snapshot();
        r.add("moving", 1);
        let d = r.snapshot().diff(&before);
        assert!(!d.counters.contains_key("stable"));
        assert_eq!(d.counters.get("moving"), Some(&1));
    }
}
