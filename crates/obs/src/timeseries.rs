//! Windowed time-series aggregation: 1-second buckets over a sliding
//! window, for request rates and SLO burn.
//!
//! A point-in-time counter snapshot (what `/metrics` exported before this
//! module) cannot answer "what is the request rate *right now*" or "what
//! fraction of the last minute's requests missed the latency objective" —
//! both need bucketed recent history. [`SloSeries`] keeps a fixed ring of
//! per-second buckets indexed by `second % window`; a bucket whose stamp
//! is stale is reset in place on the next write, so the ring never grows
//! and never needs a background sweeper.
//!
//! Observations are microsecond latencies; the objective is configured at
//! construction. `observe_at` takes an explicit second index so tests (and
//! replay tooling) can drive the clock deterministically.

use std::sync::Mutex;
use std::time::Instant;

/// Stamp value marking a bucket that has never been written.
const EMPTY: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct SecondBucket {
    /// Absolute second index since the series epoch, or [`EMPTY`].
    stamp: u64,
    total: u64,
    over: u64,
    sum_us: u64,
}

impl SecondBucket {
    const fn empty() -> Self {
        SecondBucket {
            stamp: EMPTY,
            total: 0,
            over: 0,
            sum_us: 0,
        }
    }
}

/// Sliding-window latency series with a fixed objective.
///
/// Shared behind `Arc`; one short critical section per observation.
#[derive(Debug)]
pub struct SloSeries {
    epoch: Instant,
    objective_us: u64,
    window_secs: u64,
    buckets: Mutex<Vec<SecondBucket>>,
}

/// Aggregates over the live window of a [`SloSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSnapshot {
    /// Window length, seconds.
    pub window_secs: u64,
    /// The latency objective observations are judged against.
    pub objective_us: u64,
    /// Requests observed inside the window.
    pub requests: u64,
    /// Requests over the objective inside the window.
    pub over_objective: u64,
    /// Requests per second, averaged over the active part of the window.
    pub rate_per_sec: f64,
    /// `over_objective / requests` (0.0 when idle) — the SLO burn.
    pub burn_ratio: f64,
    /// Mean latency inside the window, microseconds.
    pub mean_us: f64,
}

impl SloSeries {
    /// A series covering the trailing `window_secs` (clamped to ≥ 1) with
    /// the given latency objective in microseconds.
    pub fn new(window_secs: u64, objective_us: u64) -> Self {
        let window_secs = window_secs.max(1);
        SloSeries {
            epoch: Instant::now(),
            objective_us,
            window_secs,
            buckets: Mutex::new(vec![SecondBucket::empty(); window_secs as usize]),
        }
    }

    /// The configured latency objective, microseconds.
    pub fn objective_us(&self) -> u64 {
        self.objective_us
    }

    /// Window length, seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Records one request latency against the current wall second.
    pub fn observe(&self, latency_us: u64) {
        self.observe_at(self.now_second(), latency_us);
    }

    /// Records one request latency against an explicit second index.
    /// Exposed so tests can pin the clock; production callers use
    /// [`SloSeries::observe`].
    pub fn observe_at(&self, second: u64, latency_us: u64) {
        let idx = (second % self.window_secs) as usize;
        let mut buckets = self.buckets.lock().unwrap_or_else(|p| p.into_inner());
        let b = &mut buckets[idx];
        if b.stamp != second {
            *b = SecondBucket::empty();
            b.stamp = second;
        }
        b.total += 1;
        b.sum_us = b.sum_us.saturating_add(latency_us);
        if latency_us > self.objective_us {
            b.over += 1;
        }
    }

    /// Aggregates over buckets whose stamp falls inside the trailing
    /// window, ending at the current wall second (inclusive).
    pub fn snapshot(&self) -> SloSnapshot {
        self.snapshot_at(self.now_second())
    }

    /// [`SloSeries::snapshot`] with an explicit "now" second, for tests.
    pub fn snapshot_at(&self, now_second: u64) -> SloSnapshot {
        let oldest = (now_second + 1).saturating_sub(self.window_secs);
        let mut requests = 0u64;
        let mut over = 0u64;
        let mut sum_us = 0u64;
        {
            let buckets = self.buckets.lock().unwrap_or_else(|p| p.into_inner());
            for b in buckets.iter() {
                if b.stamp != EMPTY && b.stamp >= oldest && b.stamp <= now_second {
                    requests += b.total;
                    over += b.over;
                    sum_us = sum_us.saturating_add(b.sum_us);
                }
            }
        }
        // Early in the series' life the window is not yet full; average over
        // the seconds that have actually elapsed so the rate is not diluted.
        let active_secs = (now_second + 1).min(self.window_secs).max(1);
        SloSnapshot {
            window_secs: self.window_secs,
            objective_us: self.objective_us,
            requests,
            over_objective: over,
            rate_per_sec: requests as f64 / active_secs as f64,
            burn_ratio: if requests == 0 {
                0.0
            } else {
                over as f64 / requests as f64
            },
            mean_us: if requests == 0 {
                0.0
            } else {
                sum_us as f64 / requests as f64
            },
        }
    }

    fn now_second(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_rate_and_burn_within_window() {
        let s = SloSeries::new(10, 1_000);
        for sec in 0..5u64 {
            s.observe_at(sec, 500); // under objective
            s.observe_at(sec, 2_000); // over
        }
        let snap = s.snapshot_at(4);
        assert_eq!(snap.requests, 10);
        assert_eq!(snap.over_objective, 5);
        assert!((snap.burn_ratio - 0.5).abs() < 1e-9);
        // 10 requests over 5 active seconds.
        assert!((snap.rate_per_sec - 2.0).abs() < 1e-9);
        assert!((snap.mean_us - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn stale_buckets_fall_out_of_the_window() {
        let s = SloSeries::new(3, 100);
        s.observe_at(0, 50);
        s.observe_at(1, 50);
        s.observe_at(2, 50);
        assert_eq!(s.snapshot_at(2).requests, 3);
        // Second 3 reuses second 0's slot; second 0 leaves the window.
        s.observe_at(3, 500);
        let snap = s.snapshot_at(3);
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.over_objective, 1);
        // Far future: everything expired except what we write then.
        s.observe_at(100, 50);
        assert_eq!(s.snapshot_at(100).requests, 1);
    }

    #[test]
    fn exact_objective_is_not_a_violation() {
        let s = SloSeries::new(5, 1_000);
        s.observe_at(0, 1_000);
        let snap = s.snapshot_at(0);
        assert_eq!(snap.over_objective, 0);
        assert!((snap.burn_ratio - 0.0).abs() < 1e-9);
    }

    #[test]
    fn idle_series_snapshots_cleanly() {
        let s = SloSeries::new(60, 250_000);
        let snap = s.snapshot_at(30);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.burn_ratio, 0.0);
        assert_eq!(snap.rate_per_sec, 0.0);
        assert_eq!(snap.mean_us, 0.0);
    }

    #[test]
    fn is_sync_under_concurrent_observers() {
        let s = std::sync::Arc::new(SloSeries::new(4, 10));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        s.observe_at(1, if i % 2 == 0 { 5 } else { 50 });
                    }
                });
            }
        });
        let snap = s.snapshot_at(1);
        assert_eq!(snap.requests, 4000);
        assert_eq!(snap.over_objective, 2000);
    }
}
