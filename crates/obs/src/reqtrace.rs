//! Request-scoped tracing: per-request span trees with exact timestamps,
//! a lock-sharded retention ring, a worst-N slow-query log, and JSON /
//! Chrome trace-event export.
//!
//! The global [`crate::trace::Tracer`] *aggregates* — same-name siblings
//! merge, and per-entry timestamps are discarded — which is the right
//! shape for "where does time go on average" but useless for "why was
//! *this* request slow". [`RequestRecorder`] fills that gap: it implements
//! [`Recorder`] so the existing solver/engine instrumentation flows into
//! it unchanged, but it keeps every span occurrence with its own start
//! offset and duration, producing a [`RequestTrace`] that can be exported
//! as a tree or a `chrome://tracing` / Perfetto timeline. Metrics calls
//! are forwarded to a base recorder (normally the server's global
//! [`crate::Obs`]) so sampling a request never steals its counters from
//! the aggregate view.

use crate::record::Recorder;
use crate::report::Json;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits — the
/// wire format of the `x-cqp-trace-id` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Parses a hex trace ID (1–16 digits, surrounding whitespace ignored).
    pub fn parse(s: &str) -> Option<TraceId> {
        let t = s.trim();
        if t.is_empty() || t.len() > 16 {
            return None;
        }
        u64::from_str_radix(t, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One completed span occurrence inside a [`RequestTrace`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (matches the aggregate tracer's vocabulary).
    pub name: &'static str,
    /// Index of the parent span in the trace's `spans` vec, if nested.
    pub parent: Option<usize>,
    /// Start offset from the request's first byte, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Counters that advanced through this recorder while the span was
    /// open (including descendants) — the per-span solver stats.
    pub counters: Vec<(&'static str, u64)>,
}

/// A finished request trace: identity, metadata, and the span tree.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Trace identity (client-supplied or server-assigned).
    pub id: TraceId,
    /// Server-assigned monotonic sequence number (eviction / sort order).
    pub seq: u64,
    /// Request label, e.g. `POST /personalize`.
    pub label: String,
    /// Request start, microseconds since the owning telemetry epoch —
    /// places traces on a common timeline for the Chrome export.
    pub start_us: u64,
    /// End-to-end duration, microseconds.
    pub total_us: u64,
    /// Key/value metadata: user, problem, algorithm, outcome, status…
    pub meta: Vec<(&'static str, String)>,
    /// Completed spans in creation order (parents before children).
    pub spans: Vec<SpanRecord>,
    /// Point events `(offset_us, message)`.
    pub events: Vec<(u64, String)>,
}

impl RequestTrace {
    /// First metadata value under `key`, if present.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether any span carries `name`.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s.name == name)
    }
}

struct OpenSpan {
    index: usize,
    counters_at: BTreeMap<&'static str, u64>,
}

#[derive(Default)]
struct TraceBuild {
    spans: Vec<SpanRecord>,
    stack: Vec<OpenSpan>,
    counts: BTreeMap<&'static str, u64>,
    events: Vec<(u64, String)>,
}

/// Per-request [`Recorder`] that captures an exact span tree while
/// forwarding metrics (and aggregate spans) to a base recorder.
///
/// One instance serves one request; the interior mutex is effectively
/// uncontended but keeps the type `Sync`, which the `Recorder` bound
/// requires so the solver can hold `&dyn Recorder`.
pub struct RequestRecorder<'a> {
    base: &'a dyn Recorder,
    t0: Instant,
    inner: Mutex<TraceBuild>,
}

impl<'a> RequestRecorder<'a> {
    /// A recorder whose span offsets are measured from `t0` (the moment
    /// the request's first byte arrived) and whose metrics forward to
    /// `base`.
    pub fn new(base: &'a dyn Recorder, t0: Instant) -> Self {
        RequestRecorder {
            base,
            t0,
            inner: Mutex::new(TraceBuild::default()),
        }
    }

    fn elapsed_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// Records an already-measured span (e.g. HTTP parse, which finishes
    /// before the recorder can exist). Nested under the currently open
    /// span, if any.
    pub fn record_span(&self, name: &'static str, start_us: u64, dur_us: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let parent = inner.stack.last().map(|o| o.index);
        inner.spans.push(SpanRecord {
            name,
            parent,
            start_us,
            dur_us,
            counters: Vec::new(),
        });
    }

    /// Closes any spans left open (drop-safety for panicking handlers) and
    /// produces the finished trace.
    pub fn finish(
        self,
        id: TraceId,
        seq: u64,
        label: String,
        start_us: u64,
        meta: Vec<(&'static str, String)>,
    ) -> RequestTrace {
        let total_us = self.elapsed_us();
        let mut inner = self.inner.into_inner().unwrap_or_else(|p| p.into_inner());
        while let Some(open) = inner.stack.pop() {
            let end = total_us;
            let span = &mut inner.spans[open.index];
            span.dur_us = end.saturating_sub(span.start_us);
        }
        RequestTrace {
            id,
            seq,
            label,
            start_us,
            total_us,
            meta,
            spans: inner.spans,
            events: inner.events,
        }
    }
}

impl Recorder for RequestRecorder<'_> {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str) {
        let start_us = self.elapsed_us();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            let parent = inner.stack.last().map(|o| o.index);
            let index = inner.spans.len();
            inner.spans.push(SpanRecord {
                name,
                parent,
                start_us,
                dur_us: 0,
                counters: Vec::new(),
            });
            let counters_at = inner.counts.clone();
            inner.stack.push(OpenSpan { index, counters_at });
        }
        self.base.span_enter(name);
    }

    fn span_exit(&self) {
        let end_us = self.elapsed_us();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(open) = inner.stack.pop() {
                let deltas: Vec<(&'static str, u64)> = inner
                    .counts
                    .iter()
                    .filter_map(|(&k, &v)| {
                        let before = open.counters_at.get(k).copied().unwrap_or(0);
                        (v > before).then_some((k, v - before))
                    })
                    .collect();
                let span = &mut inner.spans[open.index];
                span.dur_us = end_us.saturating_sub(span.start_us);
                span.counters = deltas;
            }
        }
        self.base.span_exit();
    }

    fn add(&self, name: &'static str, delta: u64) {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            *inner.counts.entry(name).or_insert(0) += delta;
        }
        self.base.add(name, delta);
    }

    fn set_gauge(&self, name: &'static str, value: f64) {
        self.base.set_gauge(name, value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.base.observe(name, value);
    }

    fn event(&self, message: &str) {
        let at = self.elapsed_us();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            inner.events.push((at, message.to_string()));
        }
        self.base.event(message);
    }
}

/// Bounded, lock-sharded retention ring for finished traces.
///
/// Traces shard by `trace_id % shards`, each shard an independent
/// mutex-guarded deque of at most `ceil(capacity / shards)` entries with
/// strict oldest-first eviction — so eviction is deterministic per shard
/// regardless of cross-shard interleaving, and a hot tracing path never
/// serializes on one lock.
#[derive(Debug)]
pub struct TraceRing {
    shards: Vec<Mutex<VecDeque<Arc<RequestTrace>>>>,
    per_shard: usize,
    pushed: AtomicU64,
    evicted: AtomicU64,
}

impl TraceRing {
    /// A ring of `shards` (≥ 1) shards holding `capacity` (≥ shards)
    /// traces in total.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(shards).div_ceil(shards);
        TraceRing {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_shard,
            pushed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Retains `trace`, evicting its shard's oldest entry when full.
    pub fn push(&self, trace: Arc<RequestTrace>) {
        let shard = (trace.id.0 % self.shards.len() as u64) as usize;
        let mut deque = self.shards[shard].lock().unwrap_or_else(|p| p.into_inner());
        if deque.len() >= self.per_shard {
            deque.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        deque.push_back(trace);
        self.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent `n` retained traces, oldest first (by server
    /// sequence number).
    pub fn recent(&self, n: usize) -> Vec<Arc<RequestTrace>> {
        let mut all: Vec<Arc<RequestTrace>> = Vec::new();
        for shard in &self.shards {
            let deque = shard.lock().unwrap_or_else(|p| p.into_inner());
            all.extend(deque.iter().cloned());
        }
        all.sort_by_key(|t| t.seq);
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// The retained trace with `id`, newest first if several share it.
    pub fn find(&self, id: TraceId) -> Option<Arc<RequestTrace>> {
        let shard = (id.0 % self.shards.len() as u64) as usize;
        let deque = self.shards[shard].lock().unwrap_or_else(|p| p.into_inner());
        deque.iter().rev().find(|t| t.id == id).cloned()
    }

    /// Currently retained traces.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum retained traces (shards × per-shard bound).
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// `(pushed, evicted)` lifetime counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.pushed.load(Ordering::Relaxed),
            self.evicted.load(Ordering::Relaxed),
        )
    }
}

/// Worst-N slow-query log ordered by end-to-end duration.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    worst: Mutex<Vec<Arc<RequestTrace>>>,
}

impl SlowLog {
    /// A log retaining the `capacity` (≥ 1) slowest requests.
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            capacity: capacity.max(1),
            worst: Mutex::new(Vec::new()),
        }
    }

    /// Offers a trace; returns whether it was retained.
    pub fn offer(&self, trace: Arc<RequestTrace>) -> bool {
        let mut worst = self.worst.lock().unwrap_or_else(|p| p.into_inner());
        if worst.len() >= self.capacity
            && worst.last().is_some_and(|t| t.total_us >= trace.total_us)
        {
            return false;
        }
        // Insert keeping descending duration; ties break toward newer.
        let at = worst
            .iter()
            .position(|t| t.total_us < trace.total_us)
            .unwrap_or(worst.len());
        worst.insert(at, trace);
        worst.truncate(self.capacity);
        true
    }

    /// Retained traces, slowest first.
    pub fn worst(&self) -> Vec<Arc<RequestTrace>> {
        self.worst.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Duration a new trace must exceed to enter a full log (0 when the
    /// log still has room).
    pub fn threshold_us(&self) -> u64 {
        let worst = self.worst.lock().unwrap_or_else(|p| p.into_inner());
        if worst.len() < self.capacity {
            0
        } else {
            worst.last().map_or(0, |t| t.total_us)
        }
    }
}

/// JSON form of one trace: identity, metadata, span tree (flat spans with
/// parent indices plus rendered `path` strings), and events.
pub fn trace_to_json(trace: &RequestTrace) -> Json {
    let paths = span_paths(trace);
    let spans = trace
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let counters = Json::Obj(
                s.counters
                    .iter()
                    .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                    .collect(),
            );
            Json::obj(vec![
                ("name", Json::Str(s.name.to_string())),
                ("path", Json::Str(paths[i].clone())),
                (
                    "parent",
                    s.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                ),
                ("start_us", Json::Num(s.start_us as f64)),
                ("dur_us", Json::Num(s.dur_us as f64)),
                ("counters", counters),
            ])
        })
        .collect();
    let meta = Json::Obj(
        trace
            .meta
            .iter()
            .map(|(k, v)| (k.to_string(), Json::Str(v.clone())))
            .collect(),
    );
    let events = trace
        .events
        .iter()
        .map(|(at, msg)| {
            Json::obj(vec![
                ("at_us", Json::Num(*at as f64)),
                ("message", Json::Str(msg.clone())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("trace_id", Json::Str(trace.id.to_string())),
        ("seq", Json::Num(trace.seq as f64)),
        ("label", Json::Str(trace.label.clone())),
        ("start_us", Json::Num(trace.start_us as f64)),
        ("total_us", Json::Num(trace.total_us as f64)),
        ("meta", meta),
        ("spans", Json::Arr(spans)),
        ("events", Json::Arr(events)),
    ])
}

/// Dotted root-to-leaf path for every span, aligned with the aggregate
/// tracer's path vocabulary (`personalize.search`, …).
pub fn span_paths(trace: &RequestTrace) -> Vec<String> {
    let mut paths: Vec<String> = Vec::with_capacity(trace.spans.len());
    for s in &trace.spans {
        let path = match s.parent {
            Some(p) => format!("{}.{}", paths[p], s.name),
            None => s.name.to_string(),
        };
        paths.push(path);
    }
    paths
}

/// An array of traces in JSON form.
pub fn traces_to_json(traces: &[Arc<RequestTrace>]) -> Json {
    Json::Arr(traces.iter().map(|t| trace_to_json(t)).collect())
}

/// Chrome trace-event (`chrome://tracing` / Perfetto) rendering: one
/// complete (`ph: "X"`) event per request plus one per span, all on the
/// shared telemetry timeline; each trace gets its own `tid` lane.
pub fn traces_to_chrome(traces: &[Arc<RequestTrace>]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for trace in traces {
        let tid = (trace.seq % 1_000_000) + 1;
        events.push(Json::obj(vec![
            ("name", Json::Str(trace.label.clone())),
            ("cat", Json::Str("request".into())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::Num(trace.start_us as f64)),
            ("dur", Json::Num(trace.total_us.max(1) as f64)),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(tid as f64)),
            (
                "args",
                Json::obj(vec![
                    ("trace_id", Json::Str(trace.id.to_string())),
                    (
                        "meta",
                        Json::Obj(
                            trace
                                .meta
                                .iter()
                                .map(|(k, v)| (k.to_string(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ]));
        for s in &trace.spans {
            let args = Json::Obj(
                s.counters
                    .iter()
                    .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                    .collect(),
            );
            events.push(Json::obj(vec![
                ("name", Json::Str(s.name.to_string())),
                ("cat", Json::Str("span".into())),
                ("ph", Json::Str("X".into())),
                ("ts", Json::Num((trace.start_us + s.start_us) as f64)),
                ("dur", Json::Num(s.dur_us.max(1) as f64)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(tid as f64)),
                ("args", args),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{span_guard, NoopRecorder, Obs};

    fn sample_trace(id: u64, seq: u64, total_us: u64) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            id: TraceId(id),
            seq,
            label: "POST /personalize".into(),
            start_us: seq * 10,
            total_us,
            meta: vec![("outcome", "ok".into())],
            spans: vec![SpanRecord {
                name: "dispatch",
                parent: None,
                start_us: 1,
                dur_us: total_us.saturating_sub(1),
                counters: vec![("solver.states_examined", 3)],
            }],
            events: Vec::new(),
        })
    }

    #[test]
    fn trace_id_round_trips_and_rejects_garbage() {
        let id = TraceId(0x00ab_cdef_1234_5678);
        assert_eq!(id.to_string(), "00abcdef12345678");
        assert_eq!(TraceId::parse("00abcdef12345678"), Some(id));
        assert_eq!(TraceId::parse(" 2a "), Some(TraceId(42)));
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("not-hex"), None);
        assert_eq!(TraceId::parse("00abcdef123456789"), None); // 17 digits
    }

    #[test]
    fn recorder_builds_a_span_tree_with_counter_deltas() {
        let base = NoopRecorder;
        let rec = RequestRecorder::new(&base, Instant::now());
        rec.record_span("parse", 0, 15);
        {
            let _d = span_guard(&rec, "dispatch");
            rec.add("solver.states_examined", 5);
            {
                let _s = span_guard(&rec, "search");
                rec.add("solver.states_examined", 7);
            }
        }
        let trace = rec.finish(TraceId(9), 1, "POST /personalize".into(), 0, vec![]);
        let paths = span_paths(&trace);
        assert_eq!(paths, vec!["parse", "dispatch", "dispatch.search"]);
        let dispatch = &trace.spans[1];
        assert_eq!(dispatch.counters, vec![("solver.states_examined", 12)]);
        let search = &trace.spans[2];
        assert_eq!(search.counters, vec![("solver.states_examined", 7)]);
        assert!(trace.total_us >= trace.spans[1].dur_us);
    }

    #[test]
    fn recorder_forwards_metrics_to_base() {
        let obs = Obs::new();
        let rec = RequestRecorder::new(&obs, Instant::now());
        {
            let _g = span_guard(&rec, "work");
            rec.add("c.forwarded", 2);
            rec.observe("h.forwarded", 10);
            rec.set_gauge("g.forwarded", 1.5);
        }
        assert_eq!(obs.registry().counter("c.forwarded"), 2);
        assert_eq!(obs.registry().histogram("h.forwarded").unwrap().count(), 1);
        assert_eq!(obs.registry().gauge("g.forwarded"), Some(1.5));
        // The aggregate tracer saw the span too.
        let spans = obs.with_tracer(|t| t.spans());
        assert!(spans.iter().any(|s| s.path == "work"));
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let base = NoopRecorder;
        let rec = RequestRecorder::new(&base, Instant::now());
        rec.span_enter("left-open");
        let trace = rec.finish(TraceId(1), 1, "x".into(), 0, vec![]);
        assert_eq!(trace.spans.len(), 1);
        assert!(trace.spans[0].dur_us <= trace.total_us);
    }

    #[test]
    fn ring_evicts_oldest_per_shard_deterministically() {
        let ring = TraceRing::new(2, 4); // 2 per shard
                                         // Shard 0 gets ids 0,2,4,6; shard 1 gets 1,3.
        for (seq, id) in [(1u64, 0u64), (2, 2), (3, 4), (4, 6), (5, 1), (6, 3)] {
            ring.push(sample_trace(id, seq, 100));
        }
        // Shard 0 overflowed twice: ids 0 and 2 (the two oldest) evicted.
        assert!(ring.find(TraceId(0)).is_none());
        assert!(ring.find(TraceId(2)).is_none());
        for id in [4u64, 6, 1, 3] {
            assert!(ring.find(TraceId(id)).is_some(), "id {id} missing");
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.counters(), (6, 2));
        let recent = ring.recent(3);
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
    }

    #[test]
    fn slow_log_retains_worst_n() {
        let log = SlowLog::new(3);
        for (seq, us) in [(1u64, 50u64), (2, 500), (3, 5), (4, 300), (5, 700)] {
            log.offer(sample_trace(seq, seq, us));
        }
        let worst: Vec<u64> = log.worst().iter().map(|t| t.total_us).collect();
        assert_eq!(worst, vec![700, 500, 300]);
        assert_eq!(log.threshold_us(), 300);
        // Too fast to enter.
        assert!(!log.offer(sample_trace(9, 9, 10)));
    }

    #[test]
    fn chrome_export_produces_trace_events() {
        let traces = vec![sample_trace(7, 1, 250)];
        let chrome = traces_to_chrome(&traces);
        let events = chrome.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2); // request + one span
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 1.0);
        }
        let json = trace_to_json(&traces[0]);
        assert_eq!(
            json.get("trace_id").unwrap().as_str(),
            Some("0000000000000007")
        );
        assert!(json.render().contains("solver.states_examined"));
    }
}
