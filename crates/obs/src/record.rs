//! The [`Recorder`] trait lower layers are written against, its no-op
//! implementation, and [`Obs`] — the live registry + tracer bundle.

use crate::metrics::{Registry, Snapshot};
use crate::trace::Tracer;
use std::sync::Mutex;

/// Observability sink. Every method takes `&self` and defaults to a no-op,
/// so instrumented code pays one virtual call (or nothing, when it checks
/// [`Recorder::is_enabled`] first) when recording is off.
///
/// Recorders are `Send + Sync` so one sink (behind an `Arc` or a plain
/// reference) can serve every worker of a parallel search or batch run.
///
/// Span discipline: `span_enter`/`span_exit` must nest *per thread*; use
/// [`SpanGuard`] (via [`span_guard`]) to make exits drop-safe.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Instrumented code may skip
    /// preparing expensive arguments (formatting, snapshots) when false.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Opens a nested span.
    fn span_enter(&self, _name: &'static str) {}

    /// Closes the innermost span.
    fn span_exit(&self) {}

    /// Adds to a monotonic counter.
    fn add(&self, _name: &'static str, _delta: u64) {}

    /// Sets a gauge (last write wins).
    fn set_gauge(&self, _name: &'static str, _value: f64) {}

    /// Records a histogram observation.
    fn observe(&self, _name: &'static str, _value: u64) {}

    /// Appends a point event to the ring log.
    fn event(&self, _message: &str) {}
}

/// Discards everything; all methods are the trait defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Live observability state: a metrics [`Registry`] plus a span [`Tracer`],
/// shared by `&self` across solver, engine, and storage for one run — and
/// across worker threads for a parallel one (the tracer keeps one open-span
/// stack per thread).
#[derive(Debug, Default)]
pub struct Obs {
    registry: Registry,
    tracer: Mutex<Tracer>,
}

impl Obs {
    /// A fresh registry and tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Point-in-time snapshot of the registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Runs `f` against the tracer (lock scope kept internal).
    pub fn with_tracer<R>(&self, f: impl FnOnce(&Tracer) -> R) -> R {
        f(&self.tracer.lock().unwrap())
    }

    /// Flame-style text rendering of the span tree.
    pub fn render_tree(&self) -> String {
        self.tracer.lock().unwrap().render()
    }

    /// Opens a span and returns a guard that closes it on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        span_guard(self, name)
    }
}

impl Recorder for Obs {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str) {
        let counters = self.registry.counters_now();
        self.tracer.lock().unwrap().enter(name, counters);
    }

    fn span_exit(&self) {
        let counters = self.registry.counters_now();
        self.tracer.lock().unwrap().exit(counters);
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.registry.add(name, delta);
    }

    fn set_gauge(&self, name: &'static str, value: f64) {
        self.registry.set_gauge(name, value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.registry.observe(name, value);
    }

    fn event(&self, message: &str) {
        self.tracer.lock().unwrap().event(message.to_string());
    }
}

/// Closes its span when dropped, so early returns and `?` cannot leave a
/// span open.
pub struct SpanGuard<'a> {
    recorder: &'a dyn Recorder,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.span_exit();
    }
}

/// Opens `name` on `recorder` and returns the closing guard.
pub fn span_guard<'a>(recorder: &'a dyn Recorder, name: &'static str) -> SpanGuard<'a> {
    recorder.span_enter(name);
    SpanGuard { recorder }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let r = NoopRecorder;
        assert!(!r.is_enabled());
        r.span_enter("x");
        r.add("c", 1);
        r.span_exit();
    }

    #[test]
    fn obs_attributes_counters_to_spans() {
        let obs = Obs::new();
        {
            let _solve = obs.span("solve");
            obs.add("solver.states", 5);
            {
                let _phase = obs.span("phase1");
                obs.add("solver.states", 7);
            }
        }
        assert_eq!(obs.registry().counter("solver.states"), 12);
        let spans = obs.with_tracer(|t| t.spans());
        let solve = spans.iter().find(|s| s.path == "solve").unwrap();
        let phase = spans.iter().find(|s| s.path == "solve.phase1").unwrap();
        assert_eq!(solve.counter_deltas, vec![("solver.states", 12)]);
        assert_eq!(phase.counter_deltas, vec![("solver.states", 7)]);
    }

    #[test]
    fn guard_closes_span_on_early_drop() {
        let obs = Obs::new();
        let g = obs.span("outer");
        drop(g);
        assert_eq!(obs.with_tracer(|t| t.open_depth()), 0);
    }

    #[test]
    fn concurrent_workers_build_disjoint_subtrees() {
        const WORKER_SPANS: [&str; 4] = ["w0", "w1", "w2", "w3"];
        let obs = Obs::new();
        std::thread::scope(|s| {
            for name in WORKER_SPANS {
                let obs = &obs;
                s.spawn(move || {
                    let _w = obs.span(name);
                    for _ in 0..50 {
                        let _inner = obs.span("work");
                        obs.add("r.ticks", 1);
                    }
                });
            }
        });
        assert_eq!(obs.registry().counter("r.ticks"), 200);
        let spans = obs.with_tracer(|t| t.spans());
        // Each worker has its own root with a nested `work` node — no
        // cross-thread interleaving corrupted the nesting.
        for name in WORKER_SPANS {
            let path = format!("{name}.work");
            let node = spans.iter().find(|v| v.path == path).unwrap_or_else(|| {
                panic!("missing {path}");
            });
            assert_eq!(node.count, 50);
            assert_eq!(node.depth, 1);
        }
        assert_eq!(obs.with_tracer(|t| t.open_depth()), 0);
    }

    #[test]
    fn dyn_dispatch_works_for_both_impls() {
        fn run(r: &dyn Recorder) {
            let _g = span_guard(r, "dyn");
            r.add("k", 1);
        }
        run(&NoopRecorder);
        let obs = Obs::new();
        run(&obs);
        assert_eq!(obs.registry().counter("k"), 1);
    }
}
