//! Prometheus text-exposition (format version 0.0.4) rendering.
//!
//! Turns a [`Registry`] snapshot — dotted-path counters, gauges, and
//! log-linear histograms — into the `# HELP` / `# TYPE` / sample-line
//! format every Prometheus-compatible scraper (and `promtool`) parses,
//! plus [`CounterVec`], a small labeled-counter family for the
//! per-`{endpoint, problem, algorithm, outcome}` request accounting the
//! registry's flat static names cannot express.
//!
//! Conventions applied: metric names are the dotted registry paths with
//! `.` mangled to `_` under a caller-supplied prefix; counters gain the
//! `_total` suffix; histograms render cumulative `le` buckets from the
//! log-linear bucket bounds with the implicit `+Inf`, `_sum`, `_count`
//! triple.

use crate::metrics::{Histogram, Registry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// The `Content-Type` a `/metrics` endpoint must declare for this format.
pub const TEXT_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Mangles an arbitrary metric path into a legal Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn write_value(out: &mut String, value: f64) {
    if value.is_finite() && value.fract() == 0.0 && value.abs() < 9e15 {
        let _ = write!(out, "{}", value as i64);
    } else if value.is_infinite() && value > 0.0 {
        out.push_str("+Inf");
    } else {
        let _ = write!(out, "{value}");
    }
}

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label_value(v));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        write_value(&mut self.out, value);
        self.out.push('\n');
    }

    /// Header plus single unlabeled sample for a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// Header plus single unlabeled sample for a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Full histogram family: cumulative `le` buckets from the log-linear
    /// bucket bounds, the implicit `+Inf` bucket, `_sum`, and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.family(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        let mut le_buf = String::new();
        for (le, cumulative) in h.le_buckets() {
            le_buf.clear();
            let _ = write!(le_buf, "{le}");
            self.sample(&bucket, &[("le", le_buf.as_str())], cumulative as f64);
        }
        self.sample(&bucket, &[("le", "+Inf")], h.count() as f64);
        self.sample(&format!("{name}_sum"), &[], h.sum() as f64);
        self.sample(&format!("{name}_count"), &[], h.count() as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Renders every metric in `registry` under `prefix` (e.g. `cqp_`):
/// counters as `{prefix}{path}_total`, gauges as `{prefix}{path}`,
/// histograms as full `le`-bucket families.
pub fn render_registry(registry: &Registry, prefix: &str, w: &mut PromWriter) {
    let snap = registry.snapshot();
    for (name, value) in &snap.counters {
        let mangled = format!("{prefix}{}_total", sanitize_name(name));
        w.counter(&mangled, &format!("Counter {name}"), *value);
    }
    for (name, value) in &snap.gauges {
        let mangled = format!("{prefix}{}", sanitize_name(name));
        w.gauge(&mangled, &format!("Gauge {name}"), *value);
    }
    for name in snap.histograms.keys() {
        if let Some(h) = registry.histogram(name) {
            let mangled = format!("{prefix}{}", sanitize_name(name));
            w.histogram(&mangled, &format!("Histogram {name}"), &h);
        }
    }
}

/// A labeled counter family: one monotonic cell per label-value tuple.
///
/// Cells live in a mutex-guarded map — the write path is one short
/// critical section per request, far below the serving tier's lock
/// budget, and reads snapshot for rendering.
#[derive(Debug)]
pub struct CounterVec {
    name: &'static str,
    help: &'static str,
    labels: &'static [&'static str],
    cells: Mutex<BTreeMap<Vec<String>, u64>>,
}

impl CounterVec {
    /// A family named `name` with the given label names.
    pub fn new(name: &'static str, help: &'static str, labels: &'static [&'static str]) -> Self {
        CounterVec {
            name,
            help,
            labels,
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    /// Increments the cell for `values` (must match the label arity;
    /// mismatched calls are ignored rather than panicking).
    pub fn inc(&self, values: &[&str]) {
        self.add(values, 1);
    }

    /// Adds `delta` to the cell for `values`.
    pub fn add(&self, values: &[&str], delta: u64) {
        if values.len() != self.labels.len() {
            // Arity mismatch is a programming error, but observability must
            // never take the serving path down — drop the sample.
            return;
        }
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let mut cells = self.cells.lock().unwrap_or_else(|p| p.into_inner());
        *cells.entry(key).or_insert(0) += delta;
    }

    /// Current value of one cell (0 if never incremented).
    pub fn get(&self, values: &[&str]) -> u64 {
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.cells
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
            .copied()
            .unwrap_or(0)
    }

    /// Sum over all cells.
    pub fn total(&self) -> u64 {
        self.cells
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .sum()
    }

    /// Emits the family header and every cell.
    pub fn render(&self, w: &mut PromWriter) {
        w.family(self.name, self.help, "counter");
        let cells = self.cells.lock().unwrap_or_else(|p| p.into_inner());
        for (key, value) in cells.iter() {
            let labels: Vec<(&str, &str)> = self
                .labels
                .iter()
                .zip(key.iter())
                .map(|(&k, v)| (k, v.as_str()))
                .collect();
            w.sample(self.name, &labels, *value as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("server.latency_us"), "server_latency_us");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
    }

    #[test]
    fn renders_counters_gauges_and_histograms_from_a_registry() {
        let r = Registry::new();
        r.add("server.admitted", 12);
        r.set_gauge("server.queue_depth", 3.0);
        for v in [10u64, 20, 4000] {
            r.observe("server.latency_us", v);
        }
        let mut w = PromWriter::new();
        render_registry(&r, "cqp_", &mut w);
        let text = w.finish();
        assert!(text.contains("# TYPE cqp_server_admitted_total counter"));
        assert!(text.contains("cqp_server_admitted_total 12"));
        assert!(text.contains("# TYPE cqp_server_queue_depth gauge"));
        assert!(text.contains("cqp_server_queue_depth 3"));
        assert!(text.contains("# TYPE cqp_server_latency_us histogram"));
        assert!(text.contains("cqp_server_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cqp_server_latency_us_sum 4030"));
        assert!(text.contains("cqp_server_latency_us_count 3"));
        // Every sample line parses as `name{labels} value` with a numeric
        // value — the lightweight well-formedness check CI repeats.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in {line}"
            );
        }
    }

    #[test]
    fn histogram_le_buckets_are_cumulative_in_output() {
        let r = Registry::new();
        for v in [1u64, 2, 3, 100, 200] {
            r.observe("h", v);
        }
        let mut w = PromWriter::new();
        render_registry(&r, "t_", &mut w);
        let text = w.finish();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("t_h_bucket{le=\"") {
                let value: u64 = rest.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(value >= last, "non-cumulative at {line}");
                last = value;
                bucket_lines += 1;
            }
        }
        assert!(bucket_lines >= 2);
        assert_eq!(last, 5); // +Inf bucket equals count
    }

    #[test]
    fn counter_vec_tracks_labeled_cells() {
        let v = CounterVec::new(
            "cqp_requests_total",
            "Requests by endpoint and outcome.",
            &["endpoint", "outcome"],
        );
        v.inc(&["personalize", "ok"]);
        v.inc(&["personalize", "ok"]);
        v.inc(&["personalize", "shed"]);
        v.inc(&["metrics", "ok"]);
        assert_eq!(v.get(&["personalize", "ok"]), 2);
        assert_eq!(v.total(), 4);
        let mut w = PromWriter::new();
        v.render(&mut w);
        let text = w.finish();
        assert!(text.contains("# TYPE cqp_requests_total counter"));
        assert!(text.contains("cqp_requests_total{endpoint=\"personalize\",outcome=\"ok\"} 2"));
        assert!(text.contains("cqp_requests_total{endpoint=\"metrics\",outcome=\"ok\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(w.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn arity_mismatch_is_ignored_not_fatal() {
        let v = CounterVec::new("x_total", "x", &["a"]);
        v.inc(&["ok"]);
        v.inc(&["too", "many"]);
        v.inc(&[]);
        assert_eq!(v.total(), 1);
    }
}
