//! Observability for the CQP workspace.
//!
//! All `std`-only and thread-safe (one `Obs` can be shared — by reference
//! or `Arc` — across the workers of a parallel search or a batch
//! personalization run):
//!
//! * [`metrics`] — a [`Registry`] of named monotonic counters, gauges, and
//!   log-linear histograms, with point-in-time [`Snapshot`]s and
//!   [`Snapshot::diff`] for attributing counter deltas to a region of work.
//!   Counters and gauges are atomics; histograms sit behind a mutex.
//! * [`trace`] — the *aggregate* span [`Tracer`]: per-span wall-clock time,
//!   counter deltas captured at span boundaries, and a ring-buffered event
//!   log. Nesting is tracked per thread, so concurrent workers build
//!   disjoint subtrees. Renders as a flame-style text tree for `cqp_shell`.
//! * [`record`] — the [`Recorder`] trait the lower layers are written
//!   against. [`NoopRecorder`] keeps the hot path free when observability
//!   is off; [`Obs`] (registry + tracer behind one handle) records
//!   everything.
//! * [`reqtrace`] — *per-request* tracing: [`RequestRecorder`] captures an
//!   exact-timestamped span tree for one request (forwarding metrics to a
//!   base recorder), retained in a lock-sharded [`TraceRing`] and a
//!   worst-N [`SlowLog`], exportable as JSON or Chrome trace events.
//! * [`timeseries`] — [`SloSeries`], windowed 1-second-bucket aggregation
//!   for request rates and SLO burn.
//! * [`prometheus`] — text-exposition (0.0.4) rendering of a registry plus
//!   [`CounterVec`] labeled counter families.
//!
//! [`report`] turns a finished [`Obs`] into a JSONL run-report line
//! (hand-rolled JSON encoder; no serde in this environment).

pub mod metrics;
pub mod prometheus;
pub mod record;
pub mod report;
pub mod reqtrace;
pub mod timeseries;
pub mod trace;

pub use metrics::{Histogram, HistogramSummary, Registry, Snapshot};
pub use prometheus::{CounterVec, PromWriter};
pub use record::{NoopRecorder, Obs, Recorder, SpanGuard};
pub use report::{Json, RunReport};
pub use reqtrace::{RequestRecorder, RequestTrace, SlowLog, SpanRecord, TraceId, TraceRing};
pub use timeseries::{SloSeries, SloSnapshot};
pub use trace::{SpanView, Tracer};
