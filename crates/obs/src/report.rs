//! Run-report export: a tiny JSON value type (no serde in this
//! environment), converters from snapshots and span trees, and a JSONL
//! appender used by `reproduce` to drop one report line per experiment
//! row next to the CSVs.

use crate::metrics::Snapshot;
use crate::record::Obs;
use crate::trace::SpanView;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::Path;

/// A JSON value. Numbers are `f64` (counter magnitudes here are far below
/// 2^53, where that representation is exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; non-finite values encode as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (rejects negatives and
    /// fractional values — the strictness request validation wants).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an `Obj`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction part.
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_into(out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Metrics snapshot as `{counters:{...}, gauges:{...}, histograms:{...}}`.
pub fn snapshot_to_json(s: &Snapshot) -> Json {
    let counters = Json::Obj(
        s.counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect(),
    );
    let gauges = Json::Obj(
        s.gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect(),
    );
    let histograms = Json::Obj(
        s.histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", h.count.into()),
                        ("sum", h.sum.into()),
                        ("min", h.min.into()),
                        ("max", h.max.into()),
                        ("mean", h.mean().into()),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Span list as an array of `{path, count, secs, counters:{...}}`.
pub fn spans_to_json(spans: &[SpanView]) -> Json {
    Json::Arr(
        spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("path", Json::from(s.path.as_str())),
                    ("count", s.count.into()),
                    ("secs", s.total.as_secs_f64().into()),
                    (
                        "counters",
                        Json::Obj(
                            s.counter_deltas
                                .iter()
                                .map(|&(k, v)| (k.to_string(), Json::from(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// One run-report line: which experiment/row produced it, free-form
/// context fields, the full metrics snapshot, and the span tree.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Experiment name, e.g. `"fig12a"`.
    pub experiment: String,
    /// Row label, e.g. the algorithm name.
    pub label: String,
    /// Extra context fields (x-value, scale, ...), in insertion order.
    pub fields: Vec<(String, Json)>,
    /// Metrics at the end of the run.
    pub snapshot: Snapshot,
    /// Flattened span tree.
    pub spans: Vec<SpanView>,
}

impl RunReport {
    /// Captures registry + tracer state from `obs` into a report line.
    pub fn from_obs(experiment: &str, label: &str, obs: &Obs) -> Self {
        RunReport {
            experiment: experiment.to_string(),
            label: label.to_string(),
            fields: Vec::new(),
            snapshot: obs.snapshot(),
            spans: obs.with_tracer(|t| t.spans()),
        }
    }

    /// Adds a context field (builder-style).
    pub fn with_field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The full JSON object for this line.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            (
                "experiment".to_string(),
                Json::from(self.experiment.as_str()),
            ),
            ("label".to_string(), Json::from(self.label.as_str())),
        ];
        members.extend(self.fields.iter().cloned());
        members.push(("metrics".to_string(), snapshot_to_json(&self.snapshot)));
        members.push(("spans".to_string(), spans_to_json(&self.spans)));
        Json::Obj(members)
    }

    /// Appends this report as one line to a `.jsonl` file.
    pub fn append_to(&self, path: &Path) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(file, "{}", self.to_json().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Recorder;

    #[test]
    fn json_escaping_and_numbers() {
        let j = Json::obj(vec![
            ("s", Json::from("a\"b\\c\nd")),
            ("i", Json::from(42u64)),
            ("f", Json::from(1.5)),
            ("bad", Json::Num(f64::NAN)),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"s":"a\"b\\c\nd","i":42,"f":1.5,"bad":null,"arr":[null,true]}"#
        );
    }

    #[test]
    fn json_accessors_navigate_values() {
        let j = Json::obj(vec![
            ("n", Json::from(3.0)),
            ("frac", Json::from(1.5)),
            ("neg", Json::Num(-2.0)),
            ("s", Json::from("hi")),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![Json::from(1u64)])),
        ]);
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("frac").and_then(Json::as_u64), None);
        assert_eq!(j.get("frac").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("neg").and_then(Json::as_u64), None);
        assert_eq!(j.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(j.get("missing"), None);
        assert!(j.as_object().is_some());
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn report_round_trip_through_obs() {
        let obs = Obs::new();
        {
            let _g = obs.span("solve");
            obs.add("storage.blocks_read", 12);
            obs.observe("engine.rows", 100);
        }
        let line = RunReport::from_obs("fig12a", "C-BOUNDARIES", &obs)
            .with_field("k", 16u64)
            .to_json()
            .render();
        assert!(line.starts_with(r#"{"experiment":"fig12a","label":"C-BOUNDARIES","k":16"#));
        assert!(line.contains(r#""storage.blocks_read":12"#));
        assert!(line.contains(r#""path":"solve""#));
        assert!(line.contains(r#""engine.rows":{"count":1,"sum":100"#));
    }

    #[test]
    fn append_writes_one_line_per_report() {
        let dir = std::env::temp_dir().join("cqp_obs_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.report.jsonl");
        let _ = std::fs::remove_file(&path);
        let obs = Obs::new();
        obs.add("c", 1);
        let report = RunReport::from_obs("t", "a", &obs);
        report.append_to(&path).unwrap();
        report.append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }
}
