//! Hierarchical span tracer.
//!
//! Spans form a tree; entering the same span name twice under the same
//! parent aggregates into one node (count + total time), which keeps the
//! rendered tree readable when a phase runs in a loop. At span boundaries
//! the tracer captures counter values from the owning registry so each
//! node carries the counter *deltas* attributable to it (including its
//! children). A small ring buffer keeps the most recent point events.
//!
//! Nesting is tracked **per thread**: each thread gets its own open-span
//! stack, so workers of a parallel search build disjoint subtrees (rooted
//! at their per-worker spans) instead of corrupting each other's nesting.
//! The tree itself is shared — same-name siblings still aggregate.

use std::collections::BTreeMap;
use std::collections::{HashMap, VecDeque};
use std::thread::{self, ThreadId};
use std::time::{Duration, Instant};

/// Maximum retained point events.
const EVENT_RING: usize = 256;

#[derive(Debug)]
struct SpanData {
    name: &'static str,
    children: Vec<usize>,
    count: u64,
    total: Duration,
    counter_deltas: BTreeMap<&'static str, u64>,
}

#[derive(Debug)]
struct OpenSpan {
    node: usize,
    started: Instant,
    counters_at_entry: BTreeMap<&'static str, u64>,
}

/// Read-only view of one span node, for exporters.
#[derive(Debug, Clone)]
pub struct SpanView {
    /// Dotted path from the root, e.g. `"solve.find_boundaries"`.
    pub path: String,
    /// Span name (last path segment).
    pub name: &'static str,
    /// Tree depth (root children are 0).
    pub depth: usize,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock across entries.
    pub total: Duration,
    /// Counter deltas attributed to this span (children included).
    pub counter_deltas: Vec<(&'static str, u64)>,
}

/// The span tree plus event ring. Mutation requires `&mut`; the shared
/// wrapper lives in [`crate::record::Obs`] (a `Mutex`, so one tracer can
/// serve many worker threads).
#[derive(Debug)]
pub struct Tracer {
    arena: Vec<SpanData>,
    roots: Vec<usize>,
    // One open-span stack per thread; entries are removed when a thread's
    // stack drains so short-lived pool workers don't accumulate.
    stacks: HashMap<ThreadId, Vec<OpenSpan>>,
    epoch: Instant,
    events: VecDeque<(Duration, String)>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// An empty tracer; the epoch for event timestamps starts now.
    pub fn new() -> Self {
        Tracer {
            arena: Vec::new(),
            roots: Vec::new(),
            stacks: HashMap::new(),
            epoch: Instant::now(),
            events: VecDeque::new(),
        }
    }

    /// Opens a span under the calling thread's currently open one (or at
    /// the root). `counters` is the registry's counter state at entry, used
    /// to compute this span's deltas on exit.
    pub fn enter(&mut self, name: &'static str, counters: BTreeMap<&'static str, u64>) {
        let tid = thread::current().id();
        let parent = self
            .stacks
            .get(&tid)
            .and_then(|stack| stack.last())
            .map(|open| open.node);
        let siblings = match parent {
            Some(p) => &self.arena[p].children,
            None => &self.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&i| self.arena[i].name == name);
        let node = match existing {
            Some(i) => i,
            None => {
                let i = self.arena.len();
                self.arena.push(SpanData {
                    name,
                    children: Vec::new(),
                    count: 0,
                    total: Duration::ZERO,
                    counter_deltas: BTreeMap::new(),
                });
                match parent {
                    Some(p) => self.arena[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.stacks.entry(tid).or_default().push(OpenSpan {
            node,
            started: Instant::now(),
            counters_at_entry: counters,
        });
    }

    /// Closes the calling thread's innermost open span, folding in elapsed
    /// time and the counter deltas since entry. No-op if nothing is open.
    pub fn exit(&mut self, counters: BTreeMap<&'static str, u64>) {
        let tid = thread::current().id();
        let Some(stack) = self.stacks.get_mut(&tid) else {
            return;
        };
        let Some(open) = stack.pop() else {
            self.stacks.remove(&tid);
            return;
        };
        if stack.is_empty() {
            self.stacks.remove(&tid);
        }
        let data = &mut self.arena[open.node];
        data.count += 1;
        data.total += open.started.elapsed();
        for (name, now) in counters {
            let before = open.counters_at_entry.get(name).copied().unwrap_or(0);
            let delta = now.saturating_sub(before);
            if delta > 0 {
                *data.counter_deltas.entry(name).or_insert(0) += delta;
            }
        }
    }

    /// Appends a point event to the ring (oldest dropped past capacity).
    pub fn event(&mut self, message: String) {
        if self.events.len() == EVENT_RING {
            self.events.pop_front();
        }
        self.events.push_back((self.epoch.elapsed(), message));
    }

    /// Retained events as `(time since tracer creation, message)`.
    pub fn events(&self) -> impl Iterator<Item = (Duration, &str)> {
        self.events.iter().map(|(t, m)| (*t, m.as_str()))
    }

    /// Depth of spans currently open on the calling thread.
    pub fn open_depth(&self) -> usize {
        self.stacks.get(&thread::current().id()).map_or(0, Vec::len)
    }

    /// Flattens the closed span tree in render order (pre-order).
    pub fn spans(&self) -> Vec<SpanView> {
        let mut out = Vec::new();
        for &root in &self.roots {
            self.flatten(root, "", 0, &mut out);
        }
        out
    }

    fn flatten(&self, node: usize, prefix: &str, depth: usize, out: &mut Vec<SpanView>) {
        let data = &self.arena[node];
        let path = if prefix.is_empty() {
            data.name.to_string()
        } else {
            format!("{prefix}.{}", data.name)
        };
        out.push(SpanView {
            path: path.clone(),
            name: data.name,
            depth,
            count: data.count,
            total: data.total,
            counter_deltas: data.counter_deltas.iter().map(|(&k, &v)| (k, v)).collect(),
        });
        for &child in &data.children {
            self.flatten(child, &path, depth + 1, out);
        }
    }

    /// Flame-style text rendering of the span tree, one line per node:
    /// tree guides, name, total time, entry count, and counter deltas.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &root in &self.roots {
            self.render_node(root, "", true, true, &mut out);
        }
        out
    }

    fn render_node(&self, node: usize, indent: &str, last: bool, root: bool, out: &mut String) {
        let data = &self.arena[node];
        let (branch, child_indent) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{indent}└─ "), format!("{indent}   "))
        } else {
            (format!("{indent}├─ "), format!("{indent}│  "))
        };
        out.push_str(&branch);
        out.push_str(data.name);
        out.push_str(&format!("  {}", fmt_duration(data.total)));
        if data.count != 1 {
            out.push_str(&format!("  ({}x)", data.count));
        }
        if !data.counter_deltas.is_empty() {
            let deltas: Vec<String> = data
                .counter_deltas
                .iter()
                .map(|(k, v)| format!("{k} +{v}"))
                .collect();
            out.push_str(&format!("  [{}]", deltas.join(", ")));
        }
        out.push('\n');
        for (i, &child) in data.children.iter().enumerate() {
            let child_last = i + 1 == data.children.len();
            self.render_node(child, &child_indent, child_last, false, out);
        }
    }
}

/// Human-readable duration: ns/µs/ms/s with sensible precision.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(pairs: &[(&'static str, u64)]) -> BTreeMap<&'static str, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn nesting_builds_a_tree_with_paths() {
        let mut t = Tracer::new();
        t.enter("solve", counters(&[]));
        t.enter("find_boundaries", counters(&[]));
        t.exit(counters(&[]));
        t.enter("find_max_doi", counters(&[]));
        t.exit(counters(&[]));
        t.exit(counters(&[]));
        let spans = t.spans();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            ["solve", "solve.find_boundaries", "solve.find_max_doi"]
        );
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
    }

    #[test]
    fn reentering_a_span_aggregates() {
        let mut t = Tracer::new();
        for _ in 0..3 {
            t.enter("phase", counters(&[]));
            t.exit(counters(&[]));
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].count, 3);
    }

    #[test]
    fn parent_time_covers_child_time() {
        let mut t = Tracer::new();
        t.enter("parent", counters(&[]));
        t.enter("child", counters(&[]));
        std::thread::sleep(Duration::from_millis(2));
        t.exit(counters(&[]));
        t.exit(counters(&[]));
        let spans = t.spans();
        let parent = spans.iter().find(|s| s.name == "parent").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert!(child.total > Duration::ZERO);
        assert!(
            parent.total >= child.total,
            "parent {:?} < child {:?}",
            parent.total,
            child.total
        );
    }

    #[test]
    fn counter_deltas_attributed_to_span() {
        let mut t = Tracer::new();
        t.enter("work", counters(&[("io.blocks", 10)]));
        t.exit(counters(&[("io.blocks", 25), ("io.other", 3)]));
        let spans = t.spans();
        assert_eq!(
            spans[0].counter_deltas,
            vec![("io.blocks", 15), ("io.other", 3)]
        );
    }

    #[test]
    fn unbalanced_exit_is_harmless() {
        let mut t = Tracer::new();
        t.exit(counters(&[]));
        t.enter("a", counters(&[]));
        t.exit(counters(&[]));
        t.exit(counters(&[]));
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.open_depth(), 0);
    }

    #[test]
    fn event_ring_caps_retention() {
        let mut t = Tracer::new();
        for i in 0..(EVENT_RING + 10) {
            t.event(format!("e{i}"));
        }
        let events: Vec<_> = t.events().collect();
        assert_eq!(events.len(), EVENT_RING);
        assert_eq!(events[0].1, "e10");
    }

    #[test]
    fn render_contains_guides_and_names() {
        let mut t = Tracer::new();
        t.enter("solve", counters(&[]));
        t.enter("a", counters(&[("n", 0)]));
        t.exit(counters(&[("n", 7)]));
        t.enter("b", counters(&[]));
        t.exit(counters(&[]));
        t.exit(counters(&[]));
        let text = t.render();
        assert!(text.contains("solve"));
        assert!(text.contains("├─ a"));
        assert!(text.contains("└─ b"));
        assert!(text.contains("[n +7]"));
    }
}
