//! # cqp-engine
//!
//! Query representation, execution, and parameter estimation for the CQP
//! reproduction (Koutrika & Ioannidis, SIGMOD 2005).
//!
//! The paper personalizes *conjunctive* select-project-join queries. A
//! personalized query `Qx = Q ∧ Px` is rewritten (Section 4.2) as a set of
//! sub-queries — one per preference — combined with
//! `UNION ALL … GROUP BY … HAVING COUNT(*) = L`. This crate provides:
//!
//! * [`query::ConjunctiveQuery`] and [`query::PersonalizedQuery`] ASTs plus a
//!   catalog-aware [`query::QueryBuilder`],
//! * a pretty-printer ([`sql`]) that emits the SQL the paper shows,
//! * an executor ([`exec`]) with block-metered scans, hash joins, and the
//!   union/group/having combiner,
//! * the paper's approximate cost model ([`cost`], Formulas 6/11), and
//! * cardinality estimation ([`card`]) backed by `cqp-storage` statistics.
//!
//! ```
//! use cqp_engine::{execute, CmpOp, QueryBuilder};
//! use cqp_storage::{Database, DataType, IoMeter, RelationSchema, Value};
//!
//! let mut db = Database::new();
//! db.create_relation(RelationSchema::new(
//!     "MOVIE",
//!     vec![("mid", DataType::Int), ("title", DataType::Str), ("year", DataType::Int)],
//! ))
//! .unwrap();
//! db.insert_into("MOVIE", vec![Value::Int(1), Value::str("Manhattan"), Value::Int(1979)])
//!     .unwrap();
//! db.insert_into("MOVIE", vec![Value::Int(2), Value::str("Chicago"), Value::Int(2002)])
//!     .unwrap();
//!
//! let q = QueryBuilder::from(db.catalog(), "MOVIE")
//!     .unwrap()
//!     .select("MOVIE", "title")
//!     .unwrap()
//!     .filter("MOVIE", "year", CmpOp::Ge, 2000i64)
//!     .unwrap()
//!     .build();
//!
//! let meter = IoMeter::new(1.0); // b = 1 ms per block, as in the paper
//! let out = execute(&db, &q, &meter).unwrap();
//! assert_eq!(out.rows, vec![vec![Value::str("Chicago")]]);
//! assert_eq!(meter.blocks_read(), 1);
//! ```

pub mod card;
pub mod cost;
pub mod error;
pub mod exec;
pub mod explain;
pub mod parse;
pub mod query;
pub mod rank;
pub mod sql;

pub use card::CardEstimator;
pub use cost::CostModel;
pub use error::{EngineError, EngineResult};
pub use exec::{
    execute, execute_personalized, execute_personalized_recorded, execute_recorded, ExecOutput,
};
pub use explain::{explain, explain_personalized, PlanNode};
pub use parse::{parse_query, ParseError};
pub use query::{CmpOp, ConjunctiveQuery, PersonalizedQuery, Predicate, QueryBuilder};
pub use rank::{execute_ranked, Matching, RankedRow};
