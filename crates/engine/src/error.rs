//! Engine error types.

use cqp_storage::StorageError;
use std::fmt;

/// Errors produced while planning or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Underlying storage error.
    Storage(StorageError),
    /// A predicate references an attribute of a relation not in the query.
    AttrNotInQuery {
        /// Printable name of the offending attribute.
        attr: String,
    },
    /// The query references no relations.
    EmptyFrom,
    /// A relation in the FROM list is unreachable by join predicates from
    /// the rest of the query (would require a cartesian product).
    DisconnectedRelation {
        /// Printable name of the unreachable relation.
        relation: String,
    },
    /// A projection attribute is absent from the executed tuple layout.
    ProjectionUnavailable {
        /// Printable name of the missing attribute.
        attr: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::AttrNotInQuery { attr } => {
                write!(f, "predicate references attribute {attr} not in the query's FROM list")
            }
            EngineError::EmptyFrom => write!(f, "query has an empty FROM list"),
            EngineError::DisconnectedRelation { relation } => write!(
                f,
                "relation {relation} is not connected by any join predicate (cartesian products are not supported)"
            ),
            EngineError::ProjectionUnavailable { attr } => {
                write!(f, "projection attribute {attr} is unavailable in the result layout")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Convenience alias for engine results.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert() {
        let e: EngineError = StorageError::UnknownRelation("X".into()).into();
        assert!(e.to_string().contains('X'));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_variants() {
        assert!(EngineError::EmptyFrom.to_string().contains("FROM"));
        let e = EngineError::DisconnectedRelation {
            relation: "GENRE".into(),
        };
        assert!(e.to_string().contains("GENRE"));
    }
}
