//! Ranked execution of personalized queries.
//!
//! The paper requires that "the results of a personalized query should be
//! ranked by function `r` based on the preferences that they satisfy in a
//! profile" (Section 3) and notes after the rewriting that "the results of
//! this query may be ranked based on their degree of interest"
//! (Section 4.2).
//!
//! With the strict `HAVING COUNT(*) = L` form every surviving tuple
//! satisfies all `L` preferences and ranking is trivial. This module also
//! offers the *soft* variant — `HAVING COUNT(*) >= 1` — where a tuple
//! satisfies any non-empty subset of the integrated preferences and is
//! ranked by `r` over the dois of the sub-queries it appears in. That is
//! the classic personalization-ranking mode of the underlying preference
//! model (Koutrika & Ioannidis, ICDE 2004).

use crate::error::EngineResult;
use crate::exec::execute;
use crate::query::PersonalizedQuery;
use cqp_storage::{Database, IoMeter, Tuple};
use std::collections::{HashMap, HashSet};

/// A result row with its degree of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedRow {
    /// The projected tuple.
    pub row: Tuple,
    /// `r(doi of satisfied preferences)`.
    pub doi: f64,
    /// Indices (into the personalized query's sub-query list) of the
    /// preferences this row satisfies.
    pub satisfied: Vec<usize>,
}

/// How many preferences a row must satisfy to be returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Matching {
    /// `HAVING COUNT(*) = L` — the paper's strict conjunction (Section 4.2).
    All,
    /// `HAVING COUNT(*) >= n` — the soft variant; `AtLeast(1)` is the
    /// classic ranked personalization.
    AtLeast(usize),
}

/// Executes a personalized query and ranks rows by the noisy-or `r`
/// (Formula 10) over the dois of the preferences each row satisfies.
///
/// `pref_dois` must be parallel to `pq.subqueries`. Rows are ordered by
/// descending doi, ties broken by the tuple order for determinism.
pub fn execute_ranked(
    db: &Database,
    pq: &PersonalizedQuery,
    pref_dois: &[f64],
    matching: Matching,
    meter: &IoMeter,
) -> EngineResult<Vec<RankedRow>> {
    assert_eq!(
        pref_dois.len(),
        pq.subqueries.len(),
        "one doi per integrated preference"
    );
    let min_count = match matching {
        Matching::All => pq.num_preferences(),
        Matching::AtLeast(n) => n.max(1),
    };
    if pq.is_trivial() {
        let out = execute(db, &pq.base, meter)?;
        return Ok(out
            .rows
            .into_iter()
            .map(|row| RankedRow {
                row,
                doi: 0.0,
                satisfied: Vec::new(),
            })
            .collect());
    }

    let mut satisfied: HashMap<Tuple, Vec<usize>> = HashMap::new();
    for (i, sub) in pq.subqueries.iter().enumerate() {
        let out = execute(db, sub, meter)?;
        let distinct: HashSet<Tuple> = out.rows.into_iter().collect();
        for row in distinct {
            satisfied.entry(row).or_default().push(i);
        }
    }

    let mut ranked: Vec<RankedRow> = satisfied
        .into_iter()
        .filter(|(_, prefs)| prefs.len() >= min_count)
        .map(|(row, prefs)| {
            // Noisy-or over the satisfied preferences' dois (Formula 10).
            let doi = 1.0 - prefs.iter().map(|&i| 1.0 - pref_dois[i]).product::<f64>();
            RankedRow {
                row,
                doi,
                satisfied: prefs,
            }
        })
        .collect();
    ranked.sort_by(|a, b| b.doi.total_cmp(&a.doi).then_with(|| a.row.cmp(&b.row)));
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, QueryBuilder};
    use cqp_storage::{DataType, RelationSchema, Value};

    fn db() -> Database {
        let mut db = Database::with_block_capacity(4);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        for (mid, title, did) in [
            (1i64, "Both", 1i64),
            (2, "AllenOnly", 1),
            (3, "MusicalOnly", 2),
            (4, "Neither", 2),
        ] {
            db.insert_into(
                "MOVIE",
                vec![Value::Int(mid), Value::str(title), Value::Int(did)],
            )
            .unwrap();
        }
        db.insert_into("DIRECTOR", vec![Value::Int(1), Value::str("W. Allen")])
            .unwrap();
        db.insert_into("DIRECTOR", vec![Value::Int(2), Value::str("Other")])
            .unwrap();
        for (mid, g) in [
            (1i64, "musical"),
            (3, "musical"),
            (2, "drama"),
            (4, "drama"),
        ] {
            db.insert_into("GENRE", vec![Value::Int(mid), Value::str(g)])
                .unwrap();
        }
        db
    }

    fn personalized(db: &Database) -> PersonalizedQuery {
        let c = db.catalog();
        let base = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        PersonalizedQuery::compose(
            base,
            vec![
                vec![
                    Predicate::join(
                        c.resolve("MOVIE", "did").unwrap(),
                        c.resolve("DIRECTOR", "did").unwrap(),
                    ),
                    Predicate::eq(c.resolve("DIRECTOR", "name").unwrap(), "W. Allen"),
                ],
                vec![
                    Predicate::join(
                        c.resolve("MOVIE", "mid").unwrap(),
                        c.resolve("GENRE", "mid").unwrap(),
                    ),
                    Predicate::eq(c.resolve("GENRE", "genre").unwrap(), "musical"),
                ],
            ],
        )
    }

    #[test]
    fn strict_matching_equals_having_count_l() {
        let db = db();
        let pq = personalized(&db);
        let ranked =
            execute_ranked(&db, &pq, &[0.8, 0.45], Matching::All, &IoMeter::default()).unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].row, vec![Value::str("Both")]);
        // r(0.8, 0.45) = 1 - 0.2*0.55 = 0.89.
        assert!((ranked[0].doi - 0.89).abs() < 1e-12);
        assert_eq!(ranked[0].satisfied, vec![0, 1]);
    }

    #[test]
    fn soft_matching_ranks_by_satisfied_dois() {
        let db = db();
        let pq = personalized(&db);
        let ranked = execute_ranked(
            &db,
            &pq,
            &[0.8, 0.45],
            Matching::AtLeast(1),
            &IoMeter::default(),
        )
        .unwrap();
        // Both (0.89) > AllenOnly (0.8) > MusicalOnly (0.45); Neither absent.
        let titles: Vec<_> = ranked.iter().map(|r| r.row[0].clone()).collect();
        assert_eq!(
            titles,
            vec![
                Value::str("Both"),
                Value::str("AllenOnly"),
                Value::str("MusicalOnly")
            ]
        );
        assert!(ranked[0].doi > ranked[1].doi && ranked[1].doi > ranked[2].doi);
    }

    #[test]
    fn at_least_two_equals_all_for_two_prefs() {
        let db = db();
        let pq = personalized(&db);
        let all =
            execute_ranked(&db, &pq, &[0.8, 0.45], Matching::All, &IoMeter::default()).unwrap();
        let two = execute_ranked(
            &db,
            &pq,
            &[0.8, 0.45],
            Matching::AtLeast(2),
            &IoMeter::default(),
        )
        .unwrap();
        assert_eq!(all, two);
    }

    #[test]
    fn trivial_query_rows_have_zero_doi() {
        let db = db();
        let c = db.catalog();
        let base = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let pq = PersonalizedQuery {
            base,
            subqueries: vec![],
        };
        let ranked =
            execute_ranked(&db, &pq, &[], Matching::AtLeast(1), &IoMeter::default()).unwrap();
        assert_eq!(ranked.len(), 4);
        assert!(ranked.iter().all(|r| r.doi == 0.0));
    }

    #[test]
    #[should_panic(expected = "one doi per integrated preference")]
    fn doi_arity_checked() {
        let db = db();
        let pq = personalized(&db);
        let _ = execute_ranked(&db, &pq, &[0.8], Matching::All, &IoMeter::default());
    }
}
