//! A small SQL parser for the conjunctive fragment the paper uses.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query     := SELECT proj (',' proj)* FROM rel (',' rel)* [WHERE conj]
//! proj      := ident | ident '.' ident
//! conj      := pred (AND pred)*
//! pred      := operand op operand
//! operand   := ident['.' ident] | literal
//! op        := '=' | '<>' | '<' | '<=' | '>' | '>='
//! literal   := 'string' | integer | float
//! ```
//!
//! Unqualified column names are resolved against the FROM relations and
//! must be unambiguous. The parser exists so examples, tests, and REPL-ish
//! tools can write the paper's queries as text:
//!
//! ```
//! use cqp_engine::parse_query;
//! use cqp_storage::{Catalog, DataType, RelationSchema};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_relation(RelationSchema::new(
//!     "MOVIE",
//!     vec![("mid", DataType::Int), ("title", DataType::Str)],
//! )).unwrap();
//!
//! let q = parse_query("select title from MOVIE", &catalog).unwrap();
//! assert_eq!(q.projection.len(), 1);
//! ```

use crate::query::{CmpOp, ConjunctiveQuery, Predicate};
use cqp_storage::{Catalog, QualifiedAttr, RelationId, Value};
use std::fmt;

/// Errors from query parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer failure (unterminated string, bad character).
    Lex(String),
    /// A keyword or token was expected but something else appeared.
    Expected {
        /// What the parser wanted.
        wanted: &'static str,
        /// What it found.
        found: String,
    },
    /// A relation named in FROM is unknown.
    UnknownRelation(String),
    /// A column could not be resolved.
    UnknownColumn(String),
    /// An unqualified column name matches several FROM relations.
    AmbiguousColumn(String),
    /// Trailing input after a complete query.
    TrailingInput(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(m) => write!(f, "lex error: {m}"),
            ParseError::Expected { wanted, found } => {
                write!(f, "expected {wanted}, found `{found}`")
            }
            ParseError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ParseError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ParseError::AmbiguousColumn(c) => {
                write!(f, "column `{c}` is ambiguous across the FROM relations")
            }
            ParseError::TrailingInput(t) => write!(f, "trailing input starting at `{t}`"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Comma,
    Dot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    End,
}

fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '.' => {
                chars.next();
                out.push(Token::Dot);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some(&'=') => {
                        chars.next();
                        out.push(Token::Le);
                    }
                    Some(&'>') => {
                        chars.next();
                        out.push(Token::Ne);
                    }
                    _ => out.push(Token::Lt),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Ge);
                } else {
                    out.push(Token::Gt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            // '' escapes a quote, SQL style.
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(ParseError::Lex("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if s.contains('.') {
                    let v: f64 = s
                        .parse()
                        .map_err(|_| ParseError::Lex(format!("bad number `{s}`")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = s
                        .parse()
                        .map_err(|_| ParseError::Lex(format!("bad number `{s}`")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => return Err(ParseError::Lex(format!("unexpected character `{other}`"))),
        }
    }
    out.push(Token::End);
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a Catalog,
    from: Vec<RelationId>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::Expected {
                wanted: kw,
                found: format!("{other:?}"),
            }),
        }
    }

    fn ident(&mut self, wanted: &'static str) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError::Expected {
                wanted,
                found: format!("{other:?}"),
            }),
        }
    }

    /// Resolves `name` or `rel.name` against the FROM relations.
    fn resolve_column(&mut self, first: String) -> Result<QualifiedAttr, ParseError> {
        if *self.peek() == Token::Dot {
            self.next();
            let attr = self.ident("attribute name")?;
            let rid = self
                .catalog
                .relation_id(&first)
                .map_err(|_| ParseError::UnknownRelation(first.clone()))?;
            if !self.from.contains(&rid) {
                return Err(ParseError::UnknownColumn(format!(
                    "{first}.{attr} (relation not in FROM)"
                )));
            }
            return self
                .catalog
                .attr_id(rid, &attr)
                .map(|a| QualifiedAttr {
                    relation: rid,
                    attr: a,
                })
                .map_err(|_| ParseError::UnknownColumn(format!("{first}.{attr}")));
        }
        // Unqualified: search the FROM relations.
        let mut hit: Option<QualifiedAttr> = None;
        for &rid in &self.from {
            if let Ok(a) = self.catalog.attr_id(rid, &first) {
                if hit.is_some() {
                    return Err(ParseError::AmbiguousColumn(first));
                }
                hit = Some(QualifiedAttr {
                    relation: rid,
                    attr: a,
                });
            }
        }
        hit.ok_or(ParseError::UnknownColumn(first))
    }
}

/// Parses a conjunctive SELECT statement against a catalog.
pub fn parse_query(input: &str, catalog: &Catalog) -> Result<ConjunctiveQuery, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
        from: Vec::new(),
    };
    p.expect_keyword("select")?;

    // Projection names are collected first and resolved after FROM.
    let mut proj_names: Vec<(String, Option<String>)> = Vec::new();
    loop {
        let first = p.ident("projection column")?;
        if *p.peek() == Token::Dot {
            p.next();
            let attr = p.ident("attribute name")?;
            proj_names.push((first, Some(attr)));
        } else {
            proj_names.push((first, None));
        }
        if *p.peek() == Token::Comma {
            p.next();
        } else {
            break;
        }
    }

    p.expect_keyword("from")?;
    loop {
        let rel = p.ident("relation name")?;
        let rid = p
            .catalog
            .relation_id(&rel)
            .map_err(|_| ParseError::UnknownRelation(rel.clone()))?;
        if !p.from.contains(&rid) {
            p.from.push(rid);
        }
        if *p.peek() == Token::Comma {
            p.next();
        } else {
            break;
        }
    }

    // Resolve the projection now that FROM is known.
    let mut projection = Vec::new();
    for (first, attr) in proj_names {
        let qa = match attr {
            Some(attr) => {
                let rid = p
                    .catalog
                    .relation_id(&first)
                    .map_err(|_| ParseError::UnknownRelation(first.clone()))?;
                if !p.from.contains(&rid) {
                    return Err(ParseError::UnknownColumn(format!(
                        "{first}.{attr} (relation not in FROM)"
                    )));
                }
                p.catalog
                    .attr_id(rid, &attr)
                    .map(|a| QualifiedAttr {
                        relation: rid,
                        attr: a,
                    })
                    .map_err(|_| ParseError::UnknownColumn(format!("{first}.{attr}")))?
            }
            None => {
                // Temporarily rewind-free resolution of an unqualified name.
                let mut hit: Option<QualifiedAttr> = None;
                for &rid in &p.from {
                    if let Ok(a) = p.catalog.attr_id(rid, &first) {
                        if hit.is_some() {
                            return Err(ParseError::AmbiguousColumn(first));
                        }
                        hit = Some(QualifiedAttr {
                            relation: rid,
                            attr: a,
                        });
                    }
                }
                hit.ok_or(ParseError::UnknownColumn(first))?
            }
        };
        projection.push(qa);
    }

    let mut query = ConjunctiveQuery {
        projection,
        relations: p.from.clone(),
        predicates: Vec::new(),
    };

    // Optional WHERE.
    if let Token::Ident(s) = p.peek() {
        if s.eq_ignore_ascii_case("where") {
            p.next();
            loop {
                let pred = parse_predicate(&mut p)?;
                query.predicates.push(pred);
                match p.peek() {
                    Token::Ident(s) if s.eq_ignore_ascii_case("and") => {
                        p.next();
                    }
                    _ => break,
                }
            }
        }
    }

    match p.peek() {
        Token::End => Ok(query),
        other => Err(ParseError::TrailingInput(format!("{other:?}"))),
    }
}

fn parse_predicate(p: &mut Parser<'_>) -> Result<Predicate, ParseError> {
    let first = p.ident("column")?;
    let left = p.resolve_column(first)?;
    let op = match p.next() {
        Token::Eq => CmpOp::Eq,
        Token::Ne => CmpOp::Ne,
        Token::Lt => CmpOp::Lt,
        Token::Le => CmpOp::Le,
        Token::Gt => CmpOp::Gt,
        Token::Ge => CmpOp::Ge,
        other => {
            return Err(ParseError::Expected {
                wanted: "=, <= or >=",
                found: format!("{other:?}"),
            })
        }
    };
    match p.next() {
        Token::Str(s) => Ok(Predicate::Selection {
            attr: left,
            op,
            value: Value::Str(s),
        }),
        Token::Int(i) => Ok(Predicate::Selection {
            attr: left,
            op,
            value: Value::Int(i),
        }),
        Token::Float(v) => Ok(Predicate::Selection {
            attr: left,
            op,
            value: Value::float(v),
        }),
        Token::Ident(name) => {
            let right = p.resolve_column(name)?;
            if op != CmpOp::Eq {
                return Err(ParseError::Expected {
                    wanted: "= for join predicates",
                    found: op.sql().to_owned(),
                });
            }
            Ok(Predicate::Join { left, right })
        }
        other => Err(ParseError::Expected {
            wanted: "value or column",
            found: format!("{other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::conjunctive_sql;
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn parses_the_paper_base_query() {
        let c = catalog();
        let q = parse_query("select title from MOVIE", &c).unwrap();
        assert_eq!(q.relations.len(), 1);
        assert!(q.predicates.is_empty());
        assert_eq!(conjunctive_sql(&c, &q), "select MOVIE.title from MOVIE");
    }

    #[test]
    fn parses_the_paper_subquery_q1() {
        let c = catalog();
        let q = parse_query(
            "select title from MOVIE, DIRECTOR \
             where MOVIE.did = DIRECTOR.did and DIRECTOR.name = 'W. Allen'",
            &c,
        )
        .unwrap();
        assert_eq!(q.relations.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        assert!(matches!(q.predicates[0], Predicate::Join { .. }));
        assert!(matches!(
            &q.predicates[1],
            Predicate::Selection { value, .. } if value == &Value::str("W. Allen")
        ));
        q.validate(&c).unwrap();
    }

    #[test]
    fn resolves_unqualified_columns() {
        let c = catalog();
        let q = parse_query("select title, year from MOVIE where year >= 1990", &c).unwrap();
        assert_eq!(q.projection.len(), 2);
        assert!(matches!(
            &q.predicates[0],
            Predicate::Selection { op: CmpOp::Ge, value, .. } if value == &Value::Int(1990)
        ));
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let c = catalog();
        // `mid` exists in both MOVIE and GENRE.
        let err = parse_query(
            "select mid from MOVIE, GENRE where MOVIE.mid = GENRE.mid",
            &c,
        )
        .unwrap_err();
        assert_eq!(err, ParseError::AmbiguousColumn("mid".into()));
    }

    #[test]
    fn quoted_strings_support_sql_escapes() {
        let c = catalog();
        let q = parse_query("select title from MOVIE where title = 'It''s Magic'", &c).unwrap();
        assert!(matches!(
            &q.predicates[0],
            Predicate::Selection { value, .. } if value == &Value::str("It's Magic")
        ));
    }

    #[test]
    fn error_cases() {
        let c = catalog();
        assert!(matches!(
            parse_query("select title from NOPE", &c),
            Err(ParseError::UnknownRelation(_))
        ));
        assert!(matches!(
            parse_query("select nope from MOVIE", &c),
            Err(ParseError::UnknownColumn(_))
        ));
        assert!(matches!(
            parse_query("select title from MOVIE extra", &c),
            Err(ParseError::TrailingInput(_))
        ));
        assert!(matches!(
            parse_query("banana", &c),
            Err(ParseError::Expected {
                wanted: "select",
                ..
            })
        ));
        // Join with non-eq operator is rejected.
        assert!(parse_query(
            "select title from MOVIE, GENRE where MOVIE.mid >= GENRE.mid",
            &c
        )
        .is_err());
    }

    #[test]
    fn strict_and_negated_comparisons_parse() {
        let c = catalog();
        let q = parse_query("select title from MOVIE where year < 1990", &c).unwrap();
        assert!(matches!(
            &q.predicates[0],
            Predicate::Selection { op: CmpOp::Lt, .. }
        ));
        let q = parse_query("select title from MOVIE where year > 1990", &c).unwrap();
        assert!(matches!(
            &q.predicates[0],
            Predicate::Selection { op: CmpOp::Gt, .. }
        ));
        let q = parse_query("select title from MOVIE where title <> 'X'", &c).unwrap();
        assert!(matches!(
            &q.predicates[0],
            Predicate::Selection { op: CmpOp::Ne, .. }
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let c = catalog();
        let q = parse_query("SELECT title FROM MOVIE WHERE year >= 2000", &c).unwrap();
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn parse_executes_round_trip() {
        // Parsed queries run through the executor like built ones.
        use cqp_storage::{Database, IoMeter};
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.insert_into(
            "MOVIE",
            vec![
                Value::Int(1),
                Value::str("Chicago"),
                Value::Int(2002),
                Value::Int(1),
            ],
        )
        .unwrap();
        let q = parse_query("select title from MOVIE where year >= 2000", db.catalog()).unwrap();
        let out = crate::exec::execute(&db, &q, &IoMeter::default()).unwrap();
        assert_eq!(out.rows, vec![vec![Value::str("Chicago")]]);
    }
}
