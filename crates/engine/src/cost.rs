//! The paper's approximate execution-cost model.
//!
//! Section 7.1: *"execution cost is simply the cost of reading from disk all
//! required data once. Hence, the execution cost of a sub-query qi on
//! relations Ri1,…RiN is estimated as `cost(qi) = b × Σ blocks(Rij)`"*, and
//! (Formula 6/11) the cost of a personalized query is the sum of its
//! sub-queries' costs — group-by/having is assumed negligible.
//!
//! Costs are carried around in integer *blocks* and converted to
//! milliseconds only at the edges; this keeps every comparison inside the
//! CQP search exact and deterministic.

use crate::query::{ConjunctiveQuery, PersonalizedQuery};
use cqp_obs::Recorder;
use cqp_storage::{DbStats, RelationId};
use std::fmt;

/// The paper's cost model over database statistics.
#[derive(Clone)]
pub struct CostModel<'a> {
    stats: &'a DbStats,
    /// `b`: milliseconds per block read (1 ms in the paper's experiments).
    ms_per_block: f64,
    recorder: Option<&'a dyn Recorder>,
}

impl fmt::Debug for CostModel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CostModel")
            .field("ms_per_block", &self.ms_per_block)
            .field("recorded", &self.recorder.is_some())
            .finish()
    }
}

impl<'a> CostModel<'a> {
    /// Builds a cost model with the paper's default `b = 1 ms`.
    pub fn new(stats: &'a DbStats) -> Self {
        CostModel {
            stats,
            ms_per_block: 1.0,
            recorder: None,
        }
    }

    /// Builds a cost model with an explicit per-block cost.
    pub fn with_ms_per_block(stats: &'a DbStats, ms_per_block: f64) -> Self {
        assert!(ms_per_block.is_finite() && ms_per_block > 0.0);
        CostModel {
            stats,
            ms_per_block,
            recorder: None,
        }
    }

    /// Attaches a recorder: every query-level estimate then ticks the
    /// `engine.cost_evals` counter.
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    fn tick(&self) {
        if let Some(recorder) = self.recorder {
            recorder.add("engine.cost_evals", 1);
        }
    }

    /// `blocks(R)` for one relation (0 if statistics are missing).
    pub fn relation_blocks(&self, relation: RelationId) -> u64 {
        self.stats.table(relation.index()).map_or(0, |t| t.blocks)
    }

    /// Estimated cost of one conjunctive (sub-)query in blocks:
    /// `Σ blocks(R)` over its FROM list.
    pub fn query_blocks(&self, query: &ConjunctiveQuery) -> u64 {
        self.tick();
        query
            .relations
            .iter()
            .map(|r| self.relation_blocks(*r))
            .sum()
    }

    /// Estimated cost of a personalized query in blocks: the sum over its
    /// sub-queries (Formula 6). A trivial personalized query costs as much
    /// as its base query.
    pub fn personalized_blocks(&self, pq: &PersonalizedQuery) -> u64 {
        if pq.is_trivial() {
            self.query_blocks(&pq.base)
        } else {
            pq.subqueries.iter().map(|q| self.query_blocks(q)).sum()
        }
    }

    /// Converts a block count to milliseconds using `b`.
    pub fn blocks_to_ms(&self, blocks: u64) -> f64 {
        blocks as f64 * self.ms_per_block
    }

    /// Estimated cost of a conjunctive query in milliseconds.
    pub fn query_ms(&self, query: &ConjunctiveQuery) -> f64 {
        self.blocks_to_ms(self.query_blocks(query))
    }

    /// Estimated cost of a personalized query in milliseconds.
    pub fn personalized_ms(&self, pq: &PersonalizedQuery) -> f64 {
        self.blocks_to_ms(self.personalized_blocks(pq))
    }

    /// The configured `b` in milliseconds.
    pub fn ms_per_block(&self) -> f64 {
        self.ms_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use cqp_storage::{DataType, Database, RelationSchema, Value};

    fn db_with_blocks() -> Database {
        let mut db = Database::with_block_capacity(2);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        for i in 0..10 {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(i % 3),
                ],
            )
            .unwrap();
        }
        for i in 0..3 {
            db.insert_into("DIRECTOR", vec![Value::Int(i), Value::str(format!("d{i}"))])
                .unwrap();
        }
        db
    }

    #[test]
    fn query_cost_sums_relation_blocks() {
        let db = db_with_blocks();
        let stats = db.analyze();
        let model = CostModel::new(&stats);
        // MOVIE: 10 rows / 2 = 5 blocks; DIRECTOR: 3 rows / 2 = 2 blocks.
        let q1 = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        assert_eq!(model.query_blocks(&q1), 5);
        let q2 = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .join("MOVIE", "did", "DIRECTOR", "did")
            .unwrap()
            .build();
        assert_eq!(model.query_blocks(&q2), 7);
        assert!((model.query_ms(&q2) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn personalized_cost_is_sum_of_subqueries() {
        let db = db_with_blocks();
        let stats = db.analyze();
        let model = CostModel::new(&stats);
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let sub = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .join("MOVIE", "did", "DIRECTOR", "did")
            .unwrap()
            .build();
        let pq = PersonalizedQuery {
            base: base.clone(),
            subqueries: vec![sub.clone(), sub],
        };
        assert_eq!(model.personalized_blocks(&pq), 14);
        let trivial = PersonalizedQuery {
            base,
            subqueries: vec![],
        };
        assert_eq!(model.personalized_blocks(&trivial), 5);
    }

    #[test]
    fn custom_block_time_scales_ms() {
        let db = db_with_blocks();
        let stats = db.analyze();
        let model = CostModel::with_ms_per_block(&stats, 2.5);
        let q = QueryBuilder::from(db.catalog(), "DIRECTOR")
            .unwrap()
            .select("DIRECTOR", "name")
            .unwrap()
            .build();
        assert!((model.query_ms(&q) - 5.0).abs() < 1e-12);
        assert!((model.ms_per_block() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn missing_stats_cost_zero() {
        let stats = DbStats::default();
        let model = CostModel::new(&stats);
        assert_eq!(model.relation_blocks(RelationId(5)), 0);
    }

    #[test]
    fn recorder_counts_cost_evals() {
        let db = db_with_blocks();
        let stats = db.analyze();
        let obs = cqp_obs::Obs::new();
        let model = CostModel::new(&stats).with_recorder(&obs);
        let q = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        model.query_blocks(&q);
        model.personalized_blocks(&PersonalizedQuery {
            base: q.clone(),
            subqueries: vec![q.clone(), q],
        });
        // 1 direct + 2 sub-queries.
        assert_eq!(obs.registry().counter("engine.cost_evals"), 3);
    }
}
