//! SQL pretty-printing for queries, matching the paper's Section 4.2 form.

use crate::query::{ConjunctiveQuery, PersonalizedQuery, Predicate};
use cqp_storage::Catalog;
use std::fmt::Write as _;

/// Renders a conjunctive query as SQL text.
pub fn conjunctive_sql(catalog: &Catalog, q: &ConjunctiveQuery) -> String {
    let mut out = String::new();
    let projection = if q.projection.is_empty() {
        "*".to_owned()
    } else {
        q.projection
            .iter()
            .map(|qa| catalog.attr_name(*qa))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let from = q
        .relations
        .iter()
        .map(|r| {
            catalog
                .relation(*r)
                .map(|s| s.name.clone())
                .unwrap_or_else(|_| "?".into())
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(out, "select {projection} from {from}");
    if !q.predicates.is_empty() {
        let conds = q
            .predicates
            .iter()
            .map(|p| predicate_sql(catalog, p))
            .collect::<Vec<_>>()
            .join(" and ");
        let _ = write!(out, " where {conds}");
    }
    out
}

/// Renders one predicate as SQL text.
pub fn predicate_sql(catalog: &Catalog, p: &Predicate) -> String {
    match p {
        Predicate::Selection { attr, op, value } => {
            format!("{} {} {}", catalog.attr_name(*attr), op.sql(), value)
        }
        Predicate::Join { left, right } => {
            format!(
                "{} = {}",
                catalog.attr_name(*left),
                catalog.attr_name(*right)
            )
        }
    }
}

/// Renders the personalized query using the paper's union/having rewriting:
///
/// ```sql
/// select title
/// from   (q1) union all (q2) ...
/// group by title having count(*) = L
/// ```
pub fn personalized_sql(catalog: &Catalog, pq: &PersonalizedQuery) -> String {
    if pq.is_trivial() {
        return conjunctive_sql(catalog, &pq.base);
    }
    let projection = pq
        .base
        .projection
        .iter()
        .map(|qa| {
            // Inside the union the attributes are exported by name only.
            catalog
                .relation(qa.relation)
                .ok()
                .and_then(|s| s.attr(qa.attr).map(|a| a.name.clone()))
                .unwrap_or_else(|| "?".into())
        })
        .collect::<Vec<_>>()
        .join(", ");
    let unions = pq
        .subqueries
        .iter()
        .map(|q| format!("({})", conjunctive_sql(catalog, q)))
        .collect::<Vec<_>>()
        .join(" union all ");
    format!(
        "select {projection} from {unions} group by {projection} having count(*) = {}",
        pq.num_preferences()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, QueryBuilder};
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn renders_paper_subquery() {
        let c = catalog();
        let q = QueryBuilder::from(&c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .join("MOVIE", "did", "DIRECTOR", "did")
            .unwrap()
            .filter("DIRECTOR", "name", CmpOp::Eq, "W. Allen")
            .unwrap()
            .build();
        let sql = conjunctive_sql(&c, &q);
        assert_eq!(
            sql,
            "select MOVIE.title from MOVIE, DIRECTOR \
             where MOVIE.did = DIRECTOR.did and DIRECTOR.name = 'W. Allen'"
        );
    }

    #[test]
    fn renders_union_having_form() {
        let c = catalog();
        let base = QueryBuilder::from(&c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let m_did = c.resolve("MOVIE", "did").unwrap();
        let d_did = c.resolve("DIRECTOR", "did").unwrap();
        let pq = PersonalizedQuery::compose(
            base,
            vec![
                vec![Predicate::join(m_did, d_did)],
                vec![Predicate::join(m_did, d_did)],
            ],
        );
        let sql = personalized_sql(&c, &pq);
        assert!(sql.starts_with("select title from ("));
        assert!(sql.contains("union all"));
        assert!(sql.ends_with("group by title having count(*) = 2"));
    }

    #[test]
    fn trivial_personalized_renders_base() {
        let c = catalog();
        let base = QueryBuilder::from(&c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let pq = PersonalizedQuery {
            base,
            subqueries: vec![],
        };
        assert_eq!(personalized_sql(&c, &pq), "select MOVIE.title from MOVIE");
    }

    #[test]
    fn empty_projection_renders_star() {
        let c = catalog();
        let q = ConjunctiveQuery::scan(c.relation_id("MOVIE").unwrap(), vec![]);
        assert_eq!(conjunctive_sql(&c, &q), "select * from MOVIE");
    }
}
