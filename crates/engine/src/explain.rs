//! `EXPLAIN` for conjunctive and personalized queries.
//!
//! Renders the plan the executor will follow — scans with pushed-down
//! selections, hash joins in connectivity order, and the union/group
//! combiner — annotated with the block cost model's and the cardinality
//! estimator's numbers. What you see is exactly what
//! [`crate::exec::execute`] does; the planner logic is shared.

use crate::card::CardEstimator;
use crate::cost::CostModel;
use crate::error::{EngineError, EngineResult};
use crate::query::{ConjunctiveQuery, PersonalizedQuery, Predicate};
use cqp_storage::{Catalog, DbStats, RelationId};
use std::fmt::Write as _;

/// One node of an execution plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Operator description, e.g. `HashJoin(MOVIE.did = DIRECTOR.did)`.
    pub op: String,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated blocks read by this node (scans only; joins are free in
    /// the paper's model).
    pub est_blocks: u64,
    /// Child operators.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn leaf(op: String, est_rows: f64, est_blocks: u64) -> Self {
        PlanNode {
            op,
            est_rows,
            est_blocks,
            children: Vec::new(),
        }
    }

    /// Total estimated blocks of the subtree — the paper's query cost.
    pub fn total_blocks(&self) -> u64 {
        self.est_blocks
            + self
                .children
                .iter()
                .map(PlanNode::total_blocks)
                .sum::<u64>()
    }

    /// Renders the tree, one operator per line, indented.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let _ = writeln!(
            out,
            "{:indent$}{}  (rows≈{:.1}, blocks={})",
            "",
            self.op,
            self.est_rows,
            self.est_blocks,
            indent = depth * 2
        );
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// The join order the executor uses: the first FROM relation, then any
/// relation connected to the joined set by a join predicate.
pub(crate) fn join_order(query: &ConjunctiveQuery) -> EngineResult<Vec<RelationId>> {
    if query.relations.is_empty() {
        return Err(EngineError::EmptyFrom);
    }
    let mut order = vec![query.relations[0]];
    let mut remaining: Vec<RelationId> = query.relations[1..].to_vec();
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|r| {
            query.joins().any(|(l, rgt)| {
                (l.relation == *r && order.contains(&rgt.relation))
                    || (rgt.relation == *r && order.contains(&l.relation))
            })
        });
        match pos {
            Some(p) => order.push(remaining.remove(p)),
            None => {
                return Err(EngineError::DisconnectedRelation {
                    relation: format!("{:?}", remaining[0]),
                })
            }
        }
    }
    Ok(order)
}

/// Builds the plan tree for a conjunctive query.
pub fn explain(
    catalog: &Catalog,
    stats: &DbStats,
    query: &ConjunctiveQuery,
) -> EngineResult<PlanNode> {
    query.validate(catalog)?;
    let cost = CostModel::new(stats);
    let card = CardEstimator::new(stats);
    let order = join_order(query)?;

    let scan_node = |rel: RelationId| -> PlanNode {
        let name = catalog
            .relation(rel)
            .map(|s| s.name.clone())
            .unwrap_or_else(|_| "?".into());
        let sels = query.selections_on(rel);
        let mut single = ConjunctiveQuery {
            projection: Vec::new(),
            relations: vec![rel],
            predicates: Vec::new(),
        };
        for s in &sels {
            single.predicates.push((*s).clone());
        }
        let op = if sels.is_empty() {
            format!("SeqScan({name})")
        } else {
            let conds: Vec<String> = sels
                .iter()
                .map(|p| crate::sql::predicate_sql(catalog, p))
                .collect();
            format!("SeqScan({name}: {})", conds.join(" and "))
        };
        PlanNode::leaf(op, card.query_rows(&single), cost.relation_blocks(rel))
    };

    let mut joined: Vec<RelationId> = vec![order[0]];
    let mut node = scan_node(order[0]);
    let mut partial = ConjunctiveQuery {
        projection: Vec::new(),
        relations: vec![order[0]],
        predicates: query.selections_on(order[0]).into_iter().cloned().collect(),
    };
    for &rel in &order[1..] {
        let right = scan_node(rel);
        // All join predicates linking rel with the joined prefix.
        let mut conds: Vec<String> = Vec::new();
        for (l, r) in query.joins() {
            if (l.relation == rel && joined.contains(&r.relation))
                || (r.relation == rel && joined.contains(&l.relation))
            {
                conds.push(format!(
                    "{} = {}",
                    catalog.attr_name(*l),
                    catalog.attr_name(*r)
                ));
                partial.add_predicate(Predicate::Join {
                    left: *l,
                    right: *r,
                });
            }
        }
        for s in query.selections_on(rel) {
            partial.add_predicate(s.clone());
        }
        partial.add_relation(rel);
        joined.push(rel);
        node = PlanNode {
            op: format!("HashJoin({})", conds.join(" and ")),
            est_rows: card.query_rows(&partial),
            est_blocks: 0,
            children: vec![node, right],
        };
    }

    if query.projection.is_empty() {
        Ok(node)
    } else {
        let proj: Vec<String> = query
            .projection
            .iter()
            .map(|qa| catalog.attr_name(*qa))
            .collect();
        Ok(PlanNode {
            op: format!("Project({})", proj.join(", ")),
            est_rows: node.est_rows,
            est_blocks: 0,
            children: vec![node],
        })
    }
}

/// Builds the plan tree for a personalized query: the union of sub-query
/// plans under the `HAVING COUNT(*) = L` combiner.
pub fn explain_personalized(
    catalog: &Catalog,
    stats: &DbStats,
    pq: &PersonalizedQuery,
) -> EngineResult<PlanNode> {
    if pq.is_trivial() {
        return explain(catalog, stats, &pq.base);
    }
    let card = CardEstimator::new(stats);
    let children: Vec<PlanNode> = pq
        .subqueries
        .iter()
        .map(|q| explain(catalog, stats, q))
        .collect::<EngineResult<_>>()?;
    let paths: Vec<Vec<Predicate>> = pq
        .subqueries
        .iter()
        .map(|q| {
            q.predicates
                .iter()
                .filter(|p| !pq.base.predicates.contains(p))
                .cloned()
                .collect()
        })
        .collect();
    let est_rows = card.conjunction_rows(&pq.base, &paths);
    Ok(PlanNode {
        op: format!(
            "GroupHaving(count(*) = {}) over UnionAll[{}]",
            pq.num_preferences(),
            pq.num_preferences()
        ),
        est_rows,
        est_blocks: 0,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use cqp_storage::{DataType, Database, IoMeter, RelationSchema, Value};

    fn db() -> Database {
        let mut db = Database::with_block_capacity(4);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        for i in 0..12i64 {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(i % 3),
                ],
            )
            .unwrap();
        }
        for d in 0..3i64 {
            db.insert_into("DIRECTOR", vec![Value::Int(d), Value::str(format!("d{d}"))])
                .unwrap();
        }
        db
    }

    #[test]
    fn explain_matches_executor_cost() {
        let db = db();
        let stats = db.analyze();
        let q = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .join("MOVIE", "did", "DIRECTOR", "did")
            .unwrap()
            .filter("DIRECTOR", "name", crate::query::CmpOp::Eq, "d1")
            .unwrap()
            .build();
        let plan = explain(db.catalog(), &stats, &q).unwrap();
        // The plan's total blocks equal the cost model AND the actual I/O.
        let model = CostModel::new(&stats);
        assert_eq!(plan.total_blocks(), model.query_blocks(&q));
        let meter = IoMeter::new(1.0);
        crate::exec::execute(&db, &q, &meter).unwrap();
        assert_eq!(plan.total_blocks(), meter.blocks_read());

        let text = plan.render();
        assert!(text.contains("Project(MOVIE.title)"));
        assert!(text.contains("HashJoin(MOVIE.did = DIRECTOR.did)"));
        assert!(text.contains("SeqScan(DIRECTOR: DIRECTOR.name = 'd1')"));
    }

    #[test]
    fn explain_estimates_join_cardinality() {
        let db = db();
        let stats = db.analyze();
        let q = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .join("MOVIE", "did", "DIRECTOR", "did")
            .unwrap()
            .build();
        let plan = explain(db.catalog(), &stats, &q).unwrap();
        // 12 movies × 3 directors × 1/3 = 12 rows.
        assert!((plan.est_rows - 12.0).abs() < 1e-6, "{}", plan.est_rows);
    }

    #[test]
    fn explain_personalized_nests_subplans() {
        let db = db();
        let stats = db.analyze();
        let c = db.catalog();
        let base = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let m = c.resolve("MOVIE", "did").unwrap();
        let d = c.resolve("DIRECTOR", "did").unwrap();
        let pq = crate::query::PersonalizedQuery::compose(
            base,
            vec![vec![Predicate::join(m, d)], vec![Predicate::join(m, d)]],
        );
        let plan = explain_personalized(c, &stats, &pq).unwrap();
        assert_eq!(plan.children.len(), 2);
        assert!(plan.op.contains("count(*) = 2"));
        let model = CostModel::new(&stats);
        assert_eq!(plan.total_blocks(), model.personalized_blocks(&pq));
    }

    #[test]
    fn trivial_personalized_explains_base() {
        let db = db();
        let stats = db.analyze();
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let pq = crate::query::PersonalizedQuery {
            base,
            subqueries: vec![],
        };
        let plan = explain_personalized(db.catalog(), &stats, &pq).unwrap();
        assert!(plan.op.starts_with("Project"));
    }
}
