//! Query ASTs: conjunctive queries and personalized (union/having) queries.

use crate::error::{EngineError, EngineResult};
use cqp_storage::{Catalog, QualifiedAttr, RelationId, StorageResult, Value};

/// Comparison operators available in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the operator on two values using SQL NULL semantics.
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

/// A predicate of a conjunctive query: an atomic selection or join condition,
/// matching the paper's atomic query elements (Section 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `attr op value`, e.g. `GENRE.genre = 'musical'`.
    Selection {
        /// The attribute being constrained.
        attr: QualifiedAttr,
        /// Comparison operator.
        op: CmpOp,
        /// Constant the attribute is compared against.
        value: Value,
    },
    /// `left = right`, e.g. `MOVIE.did = DIRECTOR.did`.
    Join {
        /// Left attribute.
        left: QualifiedAttr,
        /// Right attribute.
        right: QualifiedAttr,
    },
}

impl Predicate {
    /// Convenience constructor for an equality selection.
    pub fn eq(attr: QualifiedAttr, value: impl Into<Value>) -> Self {
        Predicate::Selection {
            attr,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor for a join condition.
    pub fn join(left: QualifiedAttr, right: QualifiedAttr) -> Self {
        Predicate::Join { left, right }
    }

    /// Relations referenced by this predicate.
    pub fn relations(&self) -> Vec<RelationId> {
        match self {
            Predicate::Selection { attr, .. } => vec![attr.relation],
            Predicate::Join { left, right } => vec![left.relation, right.relation],
        }
    }
}

/// A conjunctive select-project-join query.
///
/// `relations` is the FROM list; `predicates` the conjunctive WHERE clause;
/// `projection` the SELECT list. Every relation appears at most once (the
/// paper's preference paths are acyclic, so self-joins never arise).
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// SELECT list.
    pub projection: Vec<QualifiedAttr>,
    /// FROM list (unique relation ids, in join order preference).
    pub relations: Vec<RelationId>,
    /// Conjunctive WHERE clause.
    pub predicates: Vec<Predicate>,
}

impl ConjunctiveQuery {
    /// A single-relation query projecting the given attributes.
    pub fn scan(relation: RelationId, projection: Vec<QualifiedAttr>) -> Self {
        ConjunctiveQuery {
            projection,
            relations: vec![relation],
            predicates: Vec::new(),
        }
    }

    /// Adds a relation to the FROM list if not already present.
    pub fn add_relation(&mut self, relation: RelationId) {
        if !self.relations.contains(&relation) {
            self.relations.push(relation);
        }
    }

    /// Adds a predicate, pulling any newly referenced relations into FROM.
    pub fn add_predicate(&mut self, pred: Predicate) {
        for r in pred.relations() {
            self.add_relation(r);
        }
        self.predicates.push(pred);
    }

    /// Returns a copy of this query extended with the given predicates.
    pub fn with_predicates(&self, preds: impl IntoIterator<Item = Predicate>) -> Self {
        let mut q = self.clone();
        for p in preds {
            q.add_predicate(p);
        }
        q
    }

    /// Checks that every referenced relation and attribute exists in the
    /// catalog and that every predicate's relations are in the FROM list.
    pub fn validate(&self, catalog: &Catalog) -> EngineResult<()> {
        if self.relations.is_empty() {
            return Err(EngineError::EmptyFrom);
        }
        for r in &self.relations {
            catalog.relation(*r)?;
        }
        let check = |qa: QualifiedAttr| -> EngineResult<()> {
            catalog.check_attr(qa)?;
            if !self.relations.contains(&qa.relation) {
                return Err(EngineError::AttrNotInQuery {
                    attr: catalog.attr_name(qa),
                });
            }
            Ok(())
        };
        for p in &self.projection {
            check(*p)?;
        }
        for pred in &self.predicates {
            match pred {
                Predicate::Selection { attr, .. } => check(*attr)?,
                Predicate::Join { left, right } => {
                    check(*left)?;
                    check(*right)?;
                }
            }
        }
        Ok(())
    }

    /// Selection predicates on a given relation (for push-down).
    pub fn selections_on(&self, relation: RelationId) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| matches!(p, Predicate::Selection { attr, .. } if attr.relation == relation))
            .collect()
    }

    /// Join predicates of the query.
    pub fn joins(&self) -> impl Iterator<Item = (&QualifiedAttr, &QualifiedAttr)> {
        self.predicates.iter().filter_map(|p| match p {
            Predicate::Join { left, right } => Some((left, right)),
            _ => None,
        })
    }
}

/// A personalized query: the paper's Section 4.2 rewriting.
///
/// Semantics: each sub-query integrates one preference into the base query;
/// the final answer is
/// `SELECT … FROM (q1 UNION ALL … UNION ALL qL) GROUP BY … HAVING COUNT(*) = L`,
/// i.e. the tuples that satisfy *all* selected preferences.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizedQuery {
    /// The original, unpersonalized query `Q`.
    pub base: ConjunctiveQuery,
    /// One sub-query per integrated preference: `qi = Q ∧ pi`.
    pub subqueries: Vec<ConjunctiveQuery>,
}

impl PersonalizedQuery {
    /// Builds a personalized query from the base and per-preference
    /// predicate lists (one list = one preference's condition path).
    pub fn compose(base: ConjunctiveQuery, preference_predicates: Vec<Vec<Predicate>>) -> Self {
        let subqueries = preference_predicates
            .into_iter()
            .map(|preds| base.with_predicates(preds))
            .collect();
        PersonalizedQuery { base, subqueries }
    }

    /// Number of integrated preferences (`L`, the HAVING count).
    pub fn num_preferences(&self) -> usize {
        self.subqueries.len()
    }

    /// True when no preferences were integrated: the query degenerates to
    /// the base query.
    pub fn is_trivial(&self) -> bool {
        self.subqueries.is_empty()
    }

    /// Validates base and every sub-query against a catalog.
    pub fn validate(&self, catalog: &Catalog) -> EngineResult<()> {
        self.base.validate(catalog)?;
        for q in &self.subqueries {
            q.validate(catalog)?;
        }
        Ok(())
    }
}

/// A small catalog-aware builder so examples and tests can write queries by
/// name rather than by raw ids.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    query: ConjunctiveQuery,
}

impl<'a> QueryBuilder<'a> {
    /// Starts a query over `relation`.
    pub fn from(catalog: &'a Catalog, relation: &str) -> StorageResult<Self> {
        let rid = catalog.relation_id(relation)?;
        Ok(QueryBuilder {
            catalog,
            query: ConjunctiveQuery {
                projection: Vec::new(),
                relations: vec![rid],
                predicates: Vec::new(),
            },
        })
    }

    /// Adds a `REL.attr` to the SELECT list.
    pub fn select(mut self, relation: &str, attribute: &str) -> StorageResult<Self> {
        let qa = self.catalog.resolve(relation, attribute)?;
        self.query.projection.push(qa);
        self.query.add_relation(qa.relation);
        Ok(self)
    }

    /// Adds a `REL.attr op value` selection.
    pub fn filter(
        mut self,
        relation: &str,
        attribute: &str,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> StorageResult<Self> {
        let qa = self.catalog.resolve(relation, attribute)?;
        self.query.add_predicate(Predicate::Selection {
            attr: qa,
            op,
            value: value.into(),
        });
        Ok(self)
    }

    /// Adds a `RELa.x = RELb.y` join.
    pub fn join(
        mut self,
        left_rel: &str,
        left_attr: &str,
        right_rel: &str,
        right_attr: &str,
    ) -> StorageResult<Self> {
        let l = self.catalog.resolve(left_rel, left_attr)?;
        let r = self.catalog.resolve(right_rel, right_attr)?;
        self.query
            .add_predicate(Predicate::Join { left: l, right: r });
        Ok(self)
    }

    /// Finishes the builder.
    pub fn build(self) -> ConjunctiveQuery {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::{DataType, RelationSchema};

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn builder_constructs_paper_example_query() {
        // select title from MOVIE (Section 4.2)
        let c = paper_catalog();
        let q = QueryBuilder::from(&c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        assert_eq!(q.relations.len(), 1);
        assert!(q.predicates.is_empty());
        q.validate(&c).unwrap();
    }

    #[test]
    fn add_predicate_pulls_in_relations() {
        let c = paper_catalog();
        let mut q = QueryBuilder::from(&c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let l = c.resolve("MOVIE", "did").unwrap();
        let r = c.resolve("DIRECTOR", "did").unwrap();
        q.add_predicate(Predicate::join(l, r));
        assert_eq!(q.relations.len(), 2);
        // Adding it again must not duplicate the relation.
        q.add_predicate(Predicate::join(l, r));
        assert_eq!(q.relations.len(), 2);
        q.validate(&c).unwrap();
    }

    #[test]
    fn compose_builds_one_subquery_per_preference() {
        let c = paper_catalog();
        let base = QueryBuilder::from(&c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let m_did = c.resolve("MOVIE", "did").unwrap();
        let d_did = c.resolve("DIRECTOR", "did").unwrap();
        let d_name = c.resolve("DIRECTOR", "name").unwrap();
        let m_mid = c.resolve("MOVIE", "mid").unwrap();
        let g_mid = c.resolve("GENRE", "mid").unwrap();
        let g_genre = c.resolve("GENRE", "genre").unwrap();

        let pq = PersonalizedQuery::compose(
            base,
            vec![
                vec![
                    Predicate::join(m_did, d_did),
                    Predicate::eq(d_name, "W. Allen"),
                ],
                vec![
                    Predicate::join(m_mid, g_mid),
                    Predicate::eq(g_genre, "musical"),
                ],
            ],
        );
        assert_eq!(pq.num_preferences(), 2);
        assert!(!pq.is_trivial());
        pq.validate(&c).unwrap();
        // Sub-query 1 joins MOVIE with DIRECTOR only.
        assert_eq!(pq.subqueries[0].relations.len(), 2);
        assert_eq!(pq.subqueries[1].relations.len(), 2);
    }

    #[test]
    fn validate_rejects_foreign_attrs() {
        let c = paper_catalog();
        let mut q = QueryBuilder::from(&c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        // Selection on GENRE without GENRE in FROM: add_predicate would pull
        // the relation in, so construct the broken query manually.
        let g_genre = c.resolve("GENRE", "genre").unwrap();
        q.predicates.push(Predicate::eq(g_genre, "musical"));
        let err = q.validate(&c).unwrap_err();
        assert!(matches!(err, EngineError::AttrNotInQuery { .. }));
    }

    #[test]
    fn validate_rejects_empty_from() {
        let c = paper_catalog();
        let q = ConjunctiveQuery {
            projection: vec![],
            relations: vec![],
            predicates: vec![],
        };
        assert!(matches!(q.validate(&c), Err(EngineError::EmptyFrom)));
    }

    #[test]
    fn cmp_op_eval_semantics() {
        assert!(CmpOp::Eq.eval(&Value::Int(3), &Value::Int(3)));
        assert!(CmpOp::Le.eval(&Value::Int(2), &Value::Int(3)));
        assert!(CmpOp::Ge.eval(&Value::Int(3), &Value::Int(3)));
        assert!(CmpOp::Lt.eval(&Value::Int(2), &Value::Int(3)));
        assert!(!CmpOp::Lt.eval(&Value::Int(3), &Value::Int(3)));
        assert!(CmpOp::Gt.eval(&Value::Int(4), &Value::Int(3)));
        assert!(CmpOp::Ne.eval(&Value::Int(4), &Value::Int(3)));
        assert!(!CmpOp::Ne.eval(&Value::Int(3), &Value::Int(3)));
        assert!(!CmpOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(
            !CmpOp::Ne.eval(&Value::Null, &Value::Int(1)),
            "NULL <> x is unknown"
        );
        assert_eq!(CmpOp::Le.sql(), "<=");
        assert_eq!(CmpOp::Ne.sql(), "<>");
        assert_eq!(CmpOp::Lt.sql(), "<");
        assert_eq!(CmpOp::Gt.sql(), ">");
    }
}
