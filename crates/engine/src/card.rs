//! Cardinality (result-size) estimation.
//!
//! The CQP `size` parameter needs an estimate of `size(Q ∧ Px)` for every
//! candidate state. We use the textbook System-R style estimator: the size
//! of a conjunctive query is the product of its relations' cardinalities
//! times the product of its predicates' selectivities, assuming
//! independence. Selection selectivities come from MCVs/uniformity, join
//! selectivities from `1 / max(V(left), V(right))`.
//!
//! The key property the CQP search relies on (paper Formula 8) holds by
//! construction: adding a preference multiplies the estimate by a
//! selectivity factor ≤ 1, so `Px ⊆ Py ⇒ size(Q ∧ Px) ≥ size(Q ∧ Py)`.

use crate::query::{CmpOp, ConjunctiveQuery, Predicate};
use cqp_obs::Recorder;
use cqp_storage::{ColumnStats, DbStats, QualifiedAttr};
use std::fmt;

/// Cardinality estimator over database statistics.
#[derive(Clone)]
pub struct CardEstimator<'a> {
    stats: &'a DbStats,
    recorder: Option<&'a dyn Recorder>,
}

impl fmt::Debug for CardEstimator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CardEstimator")
            .field("recorded", &self.recorder.is_some())
            .finish()
    }
}

impl<'a> CardEstimator<'a> {
    /// Builds an estimator.
    pub fn new(stats: &'a DbStats) -> Self {
        CardEstimator {
            stats,
            recorder: None,
        }
    }

    /// Attaches a recorder: every query-size estimate then ticks the
    /// `engine.card_evals` counter.
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    fn column(&self, qa: QualifiedAttr) -> Option<&ColumnStats> {
        self.stats
            .table(qa.relation.index())
            .and_then(|t| t.columns.get(qa.attr.index()))
    }

    /// Estimated selectivity of a single predicate in `[0, 1]`.
    pub fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        match pred {
            Predicate::Selection { attr, op, value } => {
                let Some(col) = self.column(*attr) else {
                    return 1.0;
                };
                let sel = match op {
                    CmpOp::Eq => col.selectivity_eq(value),
                    CmpOp::Ne => 1.0 - col.selectivity_eq(value),
                    // The histogram's bucket resolution subsumes the
                    // open/closed distinction.
                    CmpOp::Lt | CmpOp::Le => col.selectivity_le(value),
                    CmpOp::Gt | CmpOp::Ge => col.selectivity_ge(value),
                };
                sel.clamp(0.0, 1.0)
            }
            Predicate::Join { left, right } => {
                let dl = self.column(*left).map_or(1, |c| c.n_distinct.max(1));
                let dr = self.column(*right).map_or(1, |c| c.n_distinct.max(1));
                1.0 / dl.max(dr) as f64
            }
        }
    }

    /// Estimated result size of a conjunctive query.
    pub fn query_rows(&self, query: &ConjunctiveQuery) -> f64 {
        if let Some(recorder) = self.recorder {
            recorder.add("engine.card_evals", 1);
        }
        let mut size: f64 = query
            .relations
            .iter()
            .map(|r| self.stats.table(r.index()).map_or(0, |t| t.rows) as f64)
            .product();
        for pred in &query.predicates {
            size *= self.predicate_selectivity(pred);
        }
        size.max(0.0)
    }

    /// The multiplicative factor one preference path applies to the base
    /// query size: `rows(Q ∧ p) / rows(Q)` under the estimator, in `[0, 1]`.
    pub fn preference_factor(&self, base: &ConjunctiveQuery, path: &[Predicate]) -> f64 {
        let base_rows = self.query_rows(base);
        if base_rows <= 0.0 {
            return 0.0;
        }
        let extended = base.with_predicates(path.iter().cloned());
        let ext_rows = self.query_rows(&extended);
        (ext_rows / base_rows).clamp(0.0, 1.0)
    }

    /// Estimated *conjunction* size of a base query and a set of preference
    /// predicate paths: the size of the query satisfying the base AND every
    /// preference simultaneously (the HAVING-count semantics), assuming the
    /// preferences filter independently.
    pub fn conjunction_rows(
        &self,
        base: &ConjunctiveQuery,
        preference_paths: &[Vec<Predicate>],
    ) -> f64 {
        let base_rows = self.query_rows(base);
        if base_rows <= 0.0 {
            return 0.0;
        }
        preference_paths.iter().fold(base_rows, |size, path| {
            size * self.preference_factor(base, path)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use cqp_storage::{DataType, Database, RelationSchema, Value};

    fn db() -> Database {
        let mut db = Database::with_block_capacity(8);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        // 100 movies over 10 directors; 100 genre rows, half musical.
        for i in 0..100i64 {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(i % 10),
                ],
            )
            .unwrap();
            db.insert_into(
                "GENRE",
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "musical" } else { "drama" }),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn selection_selectivity_from_mcv() {
        let db = db();
        let stats = db.analyze();
        let est = CardEstimator::new(&stats);
        let c = db.catalog();
        let g = c.resolve("GENRE", "genre").unwrap();
        let sel = est.predicate_selectivity(&Predicate::eq(g, "musical"));
        assert!((sel - 0.5).abs() < 1e-9, "sel = {sel}");
    }

    #[test]
    fn join_selectivity_uses_distinct_counts() {
        let db = db();
        let stats = db.analyze();
        let est = CardEstimator::new(&stats);
        let c = db.catalog();
        let m = c.resolve("MOVIE", "mid").unwrap();
        let g = c.resolve("GENRE", "mid").unwrap();
        // Both sides have 100 distinct mids -> selectivity 1/100.
        let sel = est.predicate_selectivity(&Predicate::join(m, g));
        assert!((sel - 0.01).abs() < 1e-12);
    }

    #[test]
    fn query_rows_estimates_join_result() {
        let db = db();
        let stats = db.analyze();
        let est = CardEstimator::new(&stats);
        let q = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .join("MOVIE", "mid", "GENRE", "mid")
            .unwrap()
            .filter("GENRE", "genre", CmpOp::Eq, "musical")
            .unwrap()
            .build();
        // 100 × 100 × (1/100) × 0.5 = 50 — matches the true result size.
        let rows = est.query_rows(&q);
        assert!((rows - 50.0).abs() < 1e-6, "rows = {rows}");
    }

    #[test]
    fn preference_factor_shrinks_size_monotonically() {
        let db = db();
        let stats = db.analyze();
        let est = CardEstimator::new(&stats);
        let c = db.catalog();
        let base = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let m = c.resolve("MOVIE", "mid").unwrap();
        let gm = c.resolve("GENRE", "mid").unwrap();
        let gg = c.resolve("GENRE", "genre").unwrap();
        let path = vec![Predicate::join(m, gm), Predicate::eq(gg, "musical")];
        let f = est.preference_factor(&base, &path);
        assert!(f > 0.0 && f <= 1.0);

        // Formula 8: more preferences, smaller (or equal) size.
        let one = est.conjunction_rows(&base, std::slice::from_ref(&path));
        let two = est.conjunction_rows(&base, &[path.clone(), path]);
        assert!(two <= one);
        assert!(one <= est.query_rows(&base));
    }

    #[test]
    fn empty_base_estimates_zero() {
        let mut empty = Database::new();
        empty
            .create_relation(RelationSchema::new("T", vec![("x", DataType::Int)]))
            .unwrap();
        let stats = empty.analyze();
        let est = CardEstimator::new(&stats);
        let q = QueryBuilder::from(empty.catalog(), "T")
            .unwrap()
            .select("T", "x")
            .unwrap()
            .build();
        assert_eq!(est.query_rows(&q), 0.0);
        assert_eq!(est.preference_factor(&q, &[]), 0.0);
        assert_eq!(est.conjunction_rows(&q, &[]), 0.0);
    }
}
