//! Query execution with block-metered I/O.
//!
//! The executor is deliberately simple — selections are pushed into scans,
//! joins are hash joins in connectivity order — because the point of running
//! queries in this reproduction is to *measure* cost (Figure 15) and to rank
//! results, not to compete with a real optimizer. Every block touched by a
//! scan charges the [`IoMeter`], which is what makes measured execution time
//! comparable to the paper's `b × Σ blocks(R)` estimate.

use crate::error::{EngineError, EngineResult};
use crate::query::{CmpOp, ConjunctiveQuery, PersonalizedQuery, Predicate};
use cqp_obs::record::span_guard;
use cqp_obs::{NoopRecorder, Recorder};
use cqp_storage::{Database, IoMeter, QualifiedAttr, RelationId, Tuple, Value};
use std::collections::{HashMap, HashSet};

/// The output of query execution: projected tuples in deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutput {
    /// Projected rows.
    pub rows: Vec<Tuple>,
}

impl ExecOutput {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// An intermediate result: a tuple layout plus rows in that layout.
struct Intermediate {
    layout: Vec<QualifiedAttr>,
    rows: Vec<Tuple>,
}

impl Intermediate {
    fn position(&self, qa: QualifiedAttr) -> Option<usize> {
        self.layout.iter().position(|a| *a == qa)
    }
}

/// Scans one relation, applying pushed-down selections, charging the meter
/// for every block read. Scan totals are reported to `recorder` once per
/// scan (not per block) so the no-op path stays out of the inner loop.
fn scan_filtered(
    db: &Database,
    meter: &IoMeter,
    relation: RelationId,
    selections: &[(QualifiedAttr, CmpOp, Value)],
    recorder: &dyn Recorder,
) -> EngineResult<Intermediate> {
    let table = db.table(relation)?;
    let arity = table.schema().arity();
    let layout: Vec<QualifiedAttr> = (0..arity)
        .map(|i| QualifiedAttr::new(relation.0, i as u16))
        .collect();
    let mut rows = Vec::new();
    let mut blocks = 0u64;
    let mut scanned = 0u64;
    for block in table.blocks() {
        meter.try_charge(1)?;
        blocks += 1;
        for row in block.rows() {
            scanned += 1;
            let keep = selections.iter().all(|(qa, op, value)| {
                let idx = qa.attr.index();
                op.eval(&row[idx], value)
            });
            if keep {
                rows.push(row.clone());
            }
        }
    }
    recorder.add("engine.scans", 1);
    recorder.add("engine.blocks_scanned", blocks);
    recorder.add("engine.rows_scanned", scanned);
    Ok(Intermediate { layout, rows })
}

/// Hash-joins two intermediates on the given (left, right) column pairs.
fn hash_join(left: Intermediate, right: Intermediate, keys: &[(usize, usize)]) -> Intermediate {
    // Build on the smaller side for memory, probing with the larger.
    let (build, probe, build_keys, probe_keys, build_is_left) =
        if left.rows.len() <= right.rows.len() {
            let bk: Vec<usize> = keys.iter().map(|(l, _)| *l).collect();
            let pk: Vec<usize> = keys.iter().map(|(_, r)| *r).collect();
            (left, right, bk, pk, true)
        } else {
            let bk: Vec<usize> = keys.iter().map(|(_, r)| *r).collect();
            let pk: Vec<usize> = keys.iter().map(|(l, _)| *l).collect();
            (right, left, bk, pk, false)
        };

    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, row) in build.rows.iter().enumerate() {
        let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue; // NULL never joins
        }
        table.entry(key).or_default().push(i);
    }

    // Output layout is always left ++ right to keep attribute positions
    // independent of which side was chosen as build.
    let mut layout;
    let mut rows = Vec::new();
    if build_is_left {
        layout = build.layout.clone();
        layout.extend(probe.layout.iter().copied());
        for prow in &probe.rows {
            let key: Vec<Value> = probe_keys.iter().map(|&k| prow[k].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for &bi in matches {
                    let mut out = build.rows[bi].clone();
                    out.extend(prow.iter().cloned());
                    rows.push(out);
                }
            }
        }
    } else {
        layout = probe.layout.clone();
        layout.extend(build.layout.iter().copied());
        for prow in &probe.rows {
            let key: Vec<Value> = probe_keys.iter().map(|&k| prow[k].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for &bi in matches {
                    let mut out = prow.clone();
                    out.extend(build.rows[bi].iter().cloned());
                    rows.push(out);
                }
            }
        }
    }
    Intermediate { layout, rows }
}

/// Executes a conjunctive query, returning projected rows.
///
/// Joins are performed in connectivity order starting from the query's first
/// relation; a relation with no join path to the rest is rejected
/// ([`EngineError::DisconnectedRelation`]) rather than producing a cartesian
/// product — the paper's preference paths always join through the graph.
pub fn execute(
    db: &Database,
    query: &ConjunctiveQuery,
    meter: &IoMeter,
) -> EngineResult<ExecOutput> {
    execute_recorded(db, query, meter, &NoopRecorder)
}

/// [`execute`] under an `engine.execute` span, reporting scan/join/row
/// counters to `recorder`.
pub fn execute_recorded(
    db: &Database,
    query: &ConjunctiveQuery,
    meter: &IoMeter,
    recorder: &dyn Recorder,
) -> EngineResult<ExecOutput> {
    let _span = span_guard(recorder, "engine.execute");
    query.validate(db.catalog())?;

    // Group pushed-down selections per relation.
    let mut selections: HashMap<RelationId, Vec<(QualifiedAttr, CmpOp, Value)>> = HashMap::new();
    for pred in &query.predicates {
        if let Predicate::Selection { attr, op, value } = pred {
            selections
                .entry(attr.relation)
                .or_default()
                .push((*attr, *op, value.clone()));
        }
    }

    let first = query.relations[0];
    let mut current = scan_filtered(
        db,
        meter,
        first,
        selections.get(&first).map(|v| v.as_slice()).unwrap_or(&[]),
        recorder,
    )?;
    let mut joined: HashSet<RelationId> = HashSet::from([first]);
    let mut remaining: Vec<RelationId> = query
        .relations
        .iter()
        .copied()
        .filter(|r| *r != first)
        .collect();

    while !remaining.is_empty() {
        // Find a remaining relation connected to the joined set.
        let next_pos = remaining.iter().position(|r| {
            query.joins().any(|(l, rgt)| {
                (l.relation == *r && joined.contains(&rgt.relation))
                    || (rgt.relation == *r && joined.contains(&l.relation))
            })
        });
        let Some(pos) = next_pos else {
            let name = db
                .catalog()
                .relation(remaining[0])
                .map(|s| s.name.clone())?;
            return Err(EngineError::DisconnectedRelation { relation: name });
        };
        let rel = remaining.remove(pos);
        let right = scan_filtered(
            db,
            meter,
            rel,
            selections.get(&rel).map(|v| v.as_slice()).unwrap_or(&[]),
            recorder,
        )?;

        // All join predicates linking `rel` with the current intermediate.
        let mut keys: Vec<(usize, usize)> = Vec::new();
        for (l, r) in query.joins() {
            let (cur_attr, new_attr) = if l.relation == rel && joined.contains(&r.relation) {
                (*r, *l)
            } else if r.relation == rel && joined.contains(&l.relation) {
                (*l, *r)
            } else {
                continue;
            };
            let li =
                current
                    .position(cur_attr)
                    .ok_or_else(|| EngineError::ProjectionUnavailable {
                        attr: db.catalog().attr_name(cur_attr),
                    })?;
            let ri =
                right
                    .position(new_attr)
                    .ok_or_else(|| EngineError::ProjectionUnavailable {
                        attr: db.catalog().attr_name(new_attr),
                    })?;
            keys.push((li, ri));
        }
        current = hash_join(current, right, &keys);
        recorder.add("engine.joins", 1);
        recorder.add("engine.join_rows_emitted", current.rows.len() as u64);
        joined.insert(rel);
    }

    // Project.
    let positions: Vec<usize> = query
        .projection
        .iter()
        .map(|qa| {
            current
                .position(*qa)
                .ok_or_else(|| EngineError::ProjectionUnavailable {
                    attr: db.catalog().attr_name(*qa),
                })
        })
        .collect::<EngineResult<_>>()?;
    let mut rows: Vec<Tuple> = current
        .rows
        .iter()
        .map(|row| positions.iter().map(|&i| row[i].clone()).collect())
        .collect();
    rows.sort();
    recorder.add("engine.rows_emitted", rows.len() as u64);
    Ok(ExecOutput { rows })
}

/// Executes a personalized query with the paper's Section 4.2 semantics:
///
/// ```sql
/// SELECT … FROM (q1 UNION ALL … UNION ALL qL)
/// GROUP BY … HAVING COUNT(*) = L
/// ```
///
/// Each sub-query's projected rows are first de-duplicated (a preference can
/// otherwise match a base tuple several times through a join) so that the
/// HAVING count means "number of preferences satisfied".
pub fn execute_personalized(
    db: &Database,
    pq: &PersonalizedQuery,
    meter: &IoMeter,
) -> EngineResult<ExecOutput> {
    execute_personalized_recorded(db, pq, meter, &NoopRecorder)
}

/// [`execute_personalized`] under an `engine.execute_personalized` span:
/// each sub-query runs under a shared `engine.subquery` child span (entries
/// aggregate) and the final HAVING-count filter reports the rows kept.
pub fn execute_personalized_recorded(
    db: &Database,
    pq: &PersonalizedQuery,
    meter: &IoMeter,
    recorder: &dyn Recorder,
) -> EngineResult<ExecOutput> {
    let _span = span_guard(recorder, "engine.execute_personalized");
    if pq.is_trivial() {
        return execute_recorded(db, &pq.base, meter, recorder);
    }
    let want = pq.num_preferences();
    let mut counts: HashMap<Tuple, usize> = HashMap::new();
    for sub in &pq.subqueries {
        let sub_span = span_guard(recorder, "engine.subquery");
        let out = execute_recorded(db, sub, meter, recorder)?;
        recorder.add("engine.subqueries", 1);
        if recorder.is_enabled() {
            recorder.observe("engine.subquery_rows", out.rows.len() as u64);
        }
        drop(sub_span);
        let distinct: HashSet<Tuple> = out.rows.into_iter().collect();
        for row in distinct {
            *counts.entry(row).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<Tuple> = counts
        .into_iter()
        .filter(|(_, c)| *c == want)
        .map(|(r, _)| r)
        .collect();
    rows.sort();
    recorder.add("engine.personalized_rows_kept", rows.len() as u64);
    Ok(ExecOutput { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use cqp_storage::{DataType, RelationSchema};

    /// The movie database of the paper's running example.
    fn paper_db() -> Database {
        let mut db = Database::with_block_capacity(2);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();

        let movies: &[(i64, &str, i64, i64, i64)] = &[
            (1, "Everyone Says I Love You", 1996, 101, 1),
            (2, "Manhattan", 1979, 96, 1),
            (3, "Chicago", 2002, 113, 2),
            (4, "Heat", 1995, 170, 3),
        ];
        for (mid, title, year, dur, did) in movies {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(*mid),
                    Value::str(*title),
                    Value::Int(*year),
                    Value::Int(*dur),
                    Value::Int(*did),
                ],
            )
            .unwrap();
        }
        for (did, name) in [(1i64, "W. Allen"), (2, "R. Marshall"), (3, "M. Mann")] {
            db.insert_into("DIRECTOR", vec![Value::Int(did), Value::str(name)])
                .unwrap();
        }
        for (mid, genre) in [
            (1i64, "musical"),
            (1, "comedy"),
            (2, "comedy"),
            (3, "musical"),
            (4, "crime"),
        ] {
            db.insert_into("GENRE", vec![Value::Int(mid), Value::str(genre)])
                .unwrap();
        }
        db
    }

    #[test]
    fn simple_scan_projects_and_meters() {
        let db = paper_db();
        let q = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let meter = IoMeter::new(1.0);
        let out = execute(&db, &q, &meter).unwrap();
        assert_eq!(out.len(), 4);
        // 4 movies at 2 rows/block = 2 blocks.
        assert_eq!(meter.blocks_read(), 2);
    }

    #[test]
    fn selection_filters_rows() {
        let db = paper_db();
        let q = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .filter("MOVIE", "year", CmpOp::Ge, 1996i64)
            .unwrap()
            .build();
        let out = execute(&db, &q, &IoMeter::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows[0][0], Value::str("Chicago"));
    }

    #[test]
    fn join_paper_subquery_q1() {
        // Q1: select title from MOVIE M, DIRECTOR D
        //     where M.did = D.did and D.name = 'W. Allen'
        let db = paper_db();
        let q = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .join("MOVIE", "did", "DIRECTOR", "did")
            .unwrap()
            .filter("DIRECTOR", "name", CmpOp::Eq, "W. Allen")
            .unwrap()
            .build();
        let out = execute(&db, &q, &IoMeter::default()).unwrap();
        let titles: Vec<_> = out.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            titles,
            vec![
                Value::str("Everyone Says I Love You"),
                Value::str("Manhattan")
            ]
        );
    }

    #[test]
    fn personalized_query_intersects_preferences() {
        // The paper's Section 4.2 example: W. Allen movies AND musicals.
        let db = paper_db();
        let c = db.catalog();
        let base = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let m_did = c.resolve("MOVIE", "did").unwrap();
        let d_did = c.resolve("DIRECTOR", "did").unwrap();
        let d_name = c.resolve("DIRECTOR", "name").unwrap();
        let m_mid = c.resolve("MOVIE", "mid").unwrap();
        let g_mid = c.resolve("GENRE", "mid").unwrap();
        let g_genre = c.resolve("GENRE", "genre").unwrap();
        let pq = PersonalizedQuery::compose(
            base,
            vec![
                vec![
                    Predicate::join(m_did, d_did),
                    Predicate::eq(d_name, "W. Allen"),
                ],
                vec![
                    Predicate::join(m_mid, g_mid),
                    Predicate::eq(g_genre, "musical"),
                ],
            ],
        );
        let out = execute_personalized(&db, &pq, &IoMeter::default()).unwrap();
        // Only "Everyone Says I Love You" is both by W. Allen and a musical.
        assert_eq!(out.rows, vec![vec![Value::str("Everyone Says I Love You")]]);
    }

    #[test]
    fn trivial_personalized_query_equals_base() {
        let db = paper_db();
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let pq = PersonalizedQuery {
            base: base.clone(),
            subqueries: vec![],
        };
        let a = execute_personalized(&db, &pq, &IoMeter::default()).unwrap();
        let b = execute(&db, &base, &IoMeter::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_join_matches_are_deduplicated_per_subquery() {
        // Movie 1 has two genres; a genre-less preference on GENRE would
        // match it twice without per-sub-query dedup.
        let db = paper_db();
        let c = db.catalog();
        let base = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let m_mid = c.resolve("MOVIE", "mid").unwrap();
        let g_mid = c.resolve("GENRE", "mid").unwrap();
        // Preference: "has any genre row" (a pure join preference path).
        let pq = PersonalizedQuery::compose(base, vec![vec![Predicate::join(m_mid, g_mid)]]);
        let out = execute_personalized(&db, &pq, &IoMeter::default()).unwrap();
        // Movies 1,2,3,4 all have genre rows; movie 1 must appear once.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn disconnected_relation_is_rejected() {
        let db = paper_db();
        let c = db.catalog();
        let mut q = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        q.add_relation(c.relation_id("DIRECTOR").unwrap());
        let err = execute(&db, &q, &IoMeter::default()).unwrap_err();
        assert!(matches!(err, EngineError::DisconnectedRelation { .. }));
    }

    #[test]
    fn meter_accumulates_across_subqueries() {
        let db = paper_db();
        let c = db.catalog();
        let base = QueryBuilder::from(c, "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let m_did = c.resolve("MOVIE", "did").unwrap();
        let d_did = c.resolve("DIRECTOR", "did").unwrap();
        let pq = PersonalizedQuery::compose(
            base,
            vec![
                vec![Predicate::join(m_did, d_did)],
                vec![Predicate::join(m_did, d_did)],
            ],
        );
        let meter = IoMeter::new(1.0);
        execute_personalized(&db, &pq, &meter).unwrap();
        // Each sub-query scans MOVIE (2 blocks) + DIRECTOR (2 blocks).
        assert_eq!(meter.blocks_read(), 8);
        assert!((meter.elapsed_ms() - 8.0).abs() < 1e-12);
    }
}
