//! # cqp-core
//!
//! **Constrained Query Personalization (CQP)** — a reproduction of Koutrika
//! & Ioannidis, *"Constrained Optimalities in Query Personalization"*,
//! SIGMOD 2005.
//!
//! Query personalization enhances a query `Q` with a subset `Px` of the
//! preferences `P` extracted from the user's profile. Each candidate
//! `Qx = Q ∧ Px` carries three parameters — degree of interest, execution
//! cost, and result size — and CQP is the family of optimization problems
//! that optimize one of them under range constraints on the others
//! (paper Table 1, here [`problem::ProblemSpec`]).
//!
//! The paper maps CQP onto a state-space search: states are subsets of `P`
//! represented as ordered index sets over a rank vector (`C` by cost, `D`
//! by doi, `S` by size), and [`transitions`] (`Horizontal`, `Vertical`,
//! `Horizontal2`) move between states with *known* monotone effects on the
//! parameters. The [`algorithms`] module implements the paper's five search
//! algorithms plus an exhaustive oracle, a branch-and-bound exact solver,
//! and the generic baselines (simulated annealing, tabu, genetic) the
//! Related Work section contrasts with.
//!
//! ## Quick start
//!
//! ```
//! use cqp_core::prelude::*;
//! use cqp_prefspace::{PrefParams, PreferenceSpace};
//! use cqp_prefs::{ConjModel, Doi};
//!
//! // A synthetic preference space: (doi, cost-in-blocks, size factor).
//! let space = PreferenceSpace::synthetic(
//!     vec![
//!         PrefParams { doi: Doi::new(0.8), cost_blocks: 120, size_factor: 0.5 },
//!         PrefParams { doi: Doi::new(0.7), cost_blocks: 80, size_factor: 0.6 },
//!         PrefParams { doi: Doi::new(0.5), cost_blocks: 60, size_factor: 0.7 },
//!     ],
//!     1000.0, // base query result size
//!     0,      // base query cost
//! );
//!
//! // Problem 2: maximize doi subject to cost <= 185 blocks.
//! let solution = solve_p2(&space, ConjModel::NoisyOr, 185, Algorithm::CBoundaries);
//! assert!(solution.cost_blocks <= 185);
//! assert!(solution.doi.value() > 0.0);
//! ```

pub mod algorithms;
pub mod answer_cache;
pub mod batch;
pub mod breaker;
pub mod budget;
pub mod construct;
pub mod context;
pub mod cost_cache;
pub mod error;
pub mod instrument;
pub mod params;
pub mod problem;
pub mod solver;
pub mod spaces;
pub mod state;
pub mod transitions;

/// Convenient re-exports for typical users.
pub mod prelude {
    pub use crate::algorithms::general::solve as general_solve;
    pub use crate::algorithms::pareto::{pareto_frontier, ParetoPoint};
    pub use crate::algorithms::{solve_p2, solve_p2_recorded, Algorithm, Solution};
    pub use crate::answer_cache::{
        AnswerCache, CacheCounters, CachedAnswer, FamilyKey, Lookup, VariantKey, PROFILE_SCOPE_SEP,
    };
    pub use crate::batch::{
        BatchDriver, BatchItemResult, BatchRequest, CacheRequest, CacheTier, RetryPolicy,
    };
    pub use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
    pub use crate::budget::{Budget, CancelToken, DegradeReason, DegradedInfo};
    pub use crate::context::{Connection, Device, Intent, PolicyConfig, SearchContext};
    pub use crate::cost_cache::{EvictionPolicy, SharedCostCache};
    pub use crate::error::CqpError;
    pub use crate::instrument::Instrument;
    pub use crate::params::QueryParams;
    pub use crate::problem::{Constraints, Objective, ProblemKind, ProblemSpec};
    pub use crate::solver::{CqpSystem, PersonalizationOutcome, SolverConfig};
    pub use crate::state::State;
}

pub use prelude::*;
