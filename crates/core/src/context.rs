//! Mapping the search context onto a CQP problem.
//!
//! "Mapping the search context onto the appropriate CQP problem is a policy
//! issue and is not addressed here" (paper Section 1); "In ongoing work, we
//! are concerned with policies mapping the search context onto the
//! appropriate CQP problem" (Section 8). This module supplies a concrete,
//! overridable default policy so applications can express contexts the way
//! the paper's introduction does — device, connection, patience — instead
//! of hand-picking Table 1 rows.
//!
//! The default policy follows the paper's narrative:
//!
//! * fast connection + big screen → maximize interest, keep the answer
//!   non-empty (Problem 1 or 3 depending on whether a deadline exists);
//! * slow connection or small screen → bound cost and size tightly
//!   (Problem 3);
//! * an impatient user with an interest floor → minimize cost
//!   (Problem 4/5).

use crate::problem::ProblemSpec;
use cqp_prefs::Doi;

/// The device class issuing the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// Full-size screen: long answers are fine.
    Desktop,
    /// Small screen: answers must stay browsable.
    Handheld,
}

/// The connection quality, which bounds tolerable execution cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connection {
    /// High bandwidth / low latency.
    Fast,
    /// Low bandwidth (the paper's palmtop-in-Pisa situation).
    Slow,
}

/// What the user cares about most right now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intent {
    /// Best possible answer within the context's tolerances.
    BestAnswer,
    /// Fastest acceptable answer with at least this much interest.
    QuickAnswer {
        /// The interest floor.
        min_doi: Doi,
    },
}

/// A search context, in the vocabulary of the paper's introduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchContext {
    /// Device class.
    pub device: Device,
    /// Connection quality.
    pub connection: Connection,
    /// The user's current intent.
    pub intent: Intent,
}

/// Tunable thresholds of the default policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Cost bound (blocks) granted to fast connections.
    pub fast_cost_blocks: u64,
    /// Cost bound (blocks) granted to slow connections.
    pub slow_cost_blocks: u64,
    /// Result-size cap for handheld devices.
    pub handheld_size_max: f64,
    /// Result-size cap for desktop devices.
    pub desktop_size_max: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            fast_cost_blocks: 400, // the paper's default cmax at b = 1 ms
            slow_cost_blocks: 60,
            handheld_size_max: 3.0, // "say, three restaurants"
            desktop_size_max: 50.0,
        }
    }
}

impl SearchContext {
    /// Maps this context onto a Table 1 problem with the default policy.
    pub fn problem(&self) -> ProblemSpec {
        self.problem_with(&PolicyConfig::default())
    }

    /// Maps this context onto a Table 1 problem with explicit thresholds.
    pub fn problem_with(&self, cfg: &PolicyConfig) -> ProblemSpec {
        let cmax = match self.connection {
            Connection::Fast => cfg.fast_cost_blocks,
            Connection::Slow => cfg.slow_cost_blocks,
        };
        let smax = match self.device {
            Device::Desktop => cfg.desktop_size_max,
            Device::Handheld => cfg.handheld_size_max,
        };
        match self.intent {
            Intent::BestAnswer => ProblemSpec::p3(cmax, 1.0, smax),
            Intent::QuickAnswer { min_doi } => ProblemSpec::p5(min_doi, 1.0, smax),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemKind;

    #[test]
    fn laptop_in_the_office() {
        // The paper's first Al scenario: fast connection, big screen.
        let ctx = SearchContext {
            device: Device::Desktop,
            connection: Connection::Fast,
            intent: Intent::BestAnswer,
        };
        let p = ctx.problem();
        assert_eq!(p.kind(), Some(ProblemKind::P3));
        assert_eq!(p.constraints.cost_max_blocks, Some(400));
        assert_eq!(p.constraints.size_max, Some(50.0));
    }

    #[test]
    fn palmtop_in_pisa() {
        // The paper's second Al scenario: handheld, low bandwidth, wants a
        // handful of restaurants.
        let ctx = SearchContext {
            device: Device::Handheld,
            connection: Connection::Slow,
            intent: Intent::BestAnswer,
        };
        let p = ctx.problem();
        assert_eq!(p.kind(), Some(ProblemKind::P3));
        assert_eq!(p.constraints.cost_max_blocks, Some(60));
        assert_eq!(p.constraints.size_max, Some(3.0));
        assert!((p.constraints.size_min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impatient_user_minimizes_cost() {
        let ctx = SearchContext {
            device: Device::Handheld,
            connection: Connection::Slow,
            intent: Intent::QuickAnswer {
                min_doi: Doi::new(0.6),
            },
        };
        let p = ctx.problem();
        assert_eq!(p.kind(), Some(ProblemKind::P5));
        assert_eq!(p.constraints.doi_min, Some(Doi::new(0.6)));
    }

    #[test]
    fn custom_policy_overrides_thresholds() {
        let cfg = PolicyConfig {
            slow_cost_blocks: 10,
            handheld_size_max: 1.0,
            ..Default::default()
        };
        let ctx = SearchContext {
            device: Device::Handheld,
            connection: Connection::Slow,
            intent: Intent::BestAnswer,
        };
        let p = ctx.problem_with(&cfg);
        assert_eq!(p.constraints.cost_max_blocks, Some(10));
        assert_eq!(p.constraints.size_max, Some(1.0));
    }
}
