//! States of the CQP search space.
//!
//! "Each state in a CQP problem corresponds to a query built by integrating
//! a set of preferences from the user profile into the initial query"
//! (paper Section 5.1). Algorithms never manipulate the preferences
//! directly; they work with **ordered sets of indices `R` into a rank
//! vector** (`C`, `D`, or `S`) — paper Observation 1 — which is exactly
//! what [`State`] stores.

use std::fmt;

/// Maximum number of preferences a state space can index.
///
/// The bit-key used for visited-set and cost-cache hashing packs indices
/// into a 256-bit set ([`StateKey`]); the paper's experiments use `K ≤ 40`,
/// so 256 is generous. Indices at or beyond this bound **hard-error** (see
/// [`State::bitkey`]) instead of silently aliasing.
pub const MAX_K: usize = 256;

/// A 256-bit set key identifying a [`State`] exactly (one bit per index).
///
/// Replaces the earlier `u128` key, whose `1 << (i % 128)` construction
/// silently collided for indices ≥ 128 and corrupted visited sets and cost
/// caches on large profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateKey([u64; 4]);

impl StateKey {
    /// The key of the empty state.
    pub const EMPTY: StateKey = StateKey([0; 4]);

    /// Sets the bit for index `i`.
    ///
    /// # Panics
    /// Panics (in all builds) if `i ≥ MAX_K`: aliasing two states onto one
    /// key is silent state-space corruption, never acceptable.
    fn set(&mut self, i: u16) {
        assert!(
            (i as usize) < MAX_K,
            "preference index {i} out of range: StateKey holds at most {MAX_K} \
             preferences; raise MAX_K (and widen StateKey) for larger profiles"
        );
        self.0[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// A well-mixed 64-bit digest of the key, for shard selection.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the four words, then a final avalanche multiply.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in self.0 {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h.wrapping_mul(0xff51_afd7_ed55_8ccd)
    }
}

/// An ordered index set: indices (0-based) into a rank vector, sorted
/// ascending. The paper writes these as e.g. `c1c3c4` (1-based).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct State {
    indices: Vec<u16>,
}

impl State {
    /// The empty state (no preferences integrated).
    pub fn empty() -> Self {
        State {
            indices: Vec::new(),
        }
    }

    /// A single-preference state `{k}`.
    pub fn singleton(k: u16) -> Self {
        State { indices: vec![k] }
    }

    /// Builds a state from indices; sorts and deduplicates.
    pub fn from_indices(mut indices: Vec<u16>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        State { indices }
    }

    /// Number of preferences — the paper's *group size* (Definition 1).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if the state holds no preferences.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted indices.
    pub fn indices(&self) -> &[u16] {
        &self.indices
    }

    /// Membership test.
    pub fn contains(&self, k: u16) -> bool {
        self.indices.binary_search(&k).is_ok()
    }

    /// The largest index, if any.
    pub fn max_index(&self) -> Option<u16> {
        self.indices.last().copied()
    }

    /// Returns a new state with `k` inserted.
    pub fn with_inserted(&self, k: u16) -> State {
        debug_assert!(!self.contains(k), "inserting an index already present");
        let mut indices = Vec::with_capacity(self.indices.len() + 1);
        let pos = self.indices.partition_point(|&i| i < k);
        indices.extend_from_slice(&self.indices[..pos]);
        indices.push(k);
        indices.extend_from_slice(&self.indices[pos..]);
        State { indices }
    }

    /// Returns a new state with the member `old` replaced by `new`.
    pub fn with_replaced(&self, old: u16, new: u16) -> State {
        debug_assert!(self.contains(old) && !self.contains(new));
        let mut indices: Vec<u16> = self.indices.iter().copied().filter(|&i| i != old).collect();
        let pos = indices.partition_point(|&i| i < new);
        indices.insert(pos, new);
        State { indices }
    }

    /// Returns the prefix state keeping the first `n` members (used by the
    /// D-HEURDOI regrow heuristic, paper Figure 11 step 2.5.1).
    pub fn prefix(&self, n: usize) -> State {
        State {
            indices: self.indices[..n.min(self.indices.len())].to_vec(),
        }
    }

    /// True if `self` is componentwise ≥ `other` (same size): i.e. `self`
    /// is reachable from `other` through Vertical transitions, which means
    /// `self` lies *below* `other` in the paper's diagrams.
    pub fn dominated_by(&self, other: &State) -> bool {
        self.len() == other.len()
            && self
                .indices
                .iter()
                .zip(other.indices.iter())
                .all(|(s, o)| s >= o)
    }

    /// True if `other`'s members are a subset of `self`'s.
    pub fn is_superset_of(&self, other: &State) -> bool {
        other.indices.iter().all(|i| self.contains(*i))
    }

    /// The exact 256-bit set key for visited/cost-cache hashing.
    ///
    /// # Panics
    /// Panics (in all builds) if an index reaches [`MAX_K`] — a clear error
    /// beats the silent key aliasing a modulo would cause.
    pub fn bitkey(&self) -> StateKey {
        let mut key = StateKey::EMPTY;
        for &i in &self.indices {
            key.set(i);
        }
        key
    }

    /// Approximate heap footprint in bytes — the unit the Figure 13 memory
    /// experiment accumulates.
    pub fn heap_bytes(&self) -> usize {
        self.indices.capacity() * std::mem::size_of::<u16>()
    }

    /// Iterates over the members.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.indices.iter().copied()
    }

    /// Maps the state's rank-vector indices to P-indices through `order`
    /// (the paper's `C[k]` dereference).
    pub fn to_pref_indices(&self, order: &[usize]) -> Vec<usize> {
        self.indices.iter().map(|&i| order[i as usize]).collect()
    }
}

impl fmt::Display for State {
    /// Paper-style rendering, 1-based: `c1c3c4`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.indices.is_empty() {
            return write!(f, "∅");
        }
        for i in &self.indices {
            write!(f, "c{}", i + 1)?;
        }
        Ok(())
    }
}

impl FromIterator<u16> for State {
    fn from_iter<T: IntoIterator<Item = u16>>(iter: T) -> Self {
        State::from_indices(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u16]) -> State {
        State::from_indices(v.to_vec())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let st = s(&[3, 1, 3, 0]);
        assert_eq!(st.indices(), &[0, 1, 3]);
        assert_eq!(st.len(), 3);
        assert!(st.contains(1));
        assert!(!st.contains(2));
        assert_eq!(st.max_index(), Some(3));
    }

    #[test]
    fn insertion_and_replacement_keep_order() {
        let st = s(&[0, 2]);
        assert_eq!(st.with_inserted(1).indices(), &[0, 1, 2]);
        assert_eq!(st.with_inserted(5).indices(), &[0, 2, 5]);
        assert_eq!(st.with_replaced(2, 3).indices(), &[0, 3]);
        assert_eq!(st.with_replaced(0, 1).indices(), &[1, 2]);
    }

    #[test]
    fn paper_dominance_example() {
        // Figure 6 discussion: c2c3c5 lies below boundary c2c3c4
        // (componentwise {1,2,4} ≥ {1,2,3}).
        let below = s(&[1, 2, 4]);
        let boundary = s(&[1, 2, 3]);
        assert!(below.dominated_by(&boundary));
        assert!(!boundary.dominated_by(&below));
        // Different sizes never dominate.
        assert!(!s(&[1, 2]).dominated_by(&boundary));
    }

    #[test]
    fn superset_check() {
        // C-MAXBOUNDS: c1 is a subset of c1c3 and therefore redundant.
        assert!(s(&[0, 2]).is_superset_of(&s(&[0])));
        assert!(!s(&[0]).is_superset_of(&s(&[0, 2])));
        assert!(s(&[0]).is_superset_of(&State::empty()));
    }

    #[test]
    fn bitkeys_distinguish_states() {
        assert_ne!(s(&[0, 1]).bitkey(), s(&[0, 2]).bitkey());
        assert_eq!(s(&[1, 0]).bitkey(), s(&[0, 1]).bitkey());
        assert_eq!(State::empty().bitkey(), StateKey::EMPTY);
    }

    #[test]
    fn bitkeys_do_not_alias_across_the_128_boundary() {
        // Regression: the old u128 key computed `1 << (i % 128)`, so index
        // 128 aliased index 0 and 129 aliased 1.
        assert_ne!(s(&[0]).bitkey(), s(&[128]).bitkey());
        assert_ne!(s(&[1]).bitkey(), s(&[129]).bitkey());
        assert_ne!(s(&[128]).bitkey(), s(&[129]).bitkey());
        assert_ne!(s(&[0, 128]).bitkey(), s(&[0]).bitkey());
        // Word boundaries inside the key.
        assert_ne!(s(&[63]).bitkey(), s(&[64]).bitkey());
        assert_ne!(s(&[191]).bitkey(), s(&[192]).bitkey());
        assert_ne!(s(&[255]).bitkey(), s(&[0]).bitkey());
        // Digests spread too (not a correctness requirement, but the shard
        // selector depends on them not being degenerate).
        assert_ne!(s(&[0]).bitkey().digest(), s(&[128]).bitkey().digest());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitkey_hard_errors_beyond_max_k() {
        let _ = s(&[MAX_K as u16]).bitkey();
    }

    #[test]
    fn prefix_truncates() {
        let st = s(&[0, 2, 5]);
        assert_eq!(st.prefix(2).indices(), &[0, 2]);
        assert_eq!(st.prefix(0), State::empty());
        assert_eq!(st.prefix(9), st);
    }

    #[test]
    fn display_is_paper_style() {
        assert_eq!(s(&[0, 2, 3]).to_string(), "c1c3c4");
        assert_eq!(State::empty().to_string(), "∅");
    }

    #[test]
    fn pref_index_mapping() {
        // C = [2, 0, 1] maps state {0,2} to P-indices {2, 1}.
        let order = vec![2usize, 0, 1];
        assert_eq!(s(&[0, 2]).to_pref_indices(&order), vec![2, 1]);
    }

    #[test]
    fn from_iterator() {
        let st: State = vec![4u16, 1, 4].into_iter().collect();
        assert_eq!(st.indices(), &[1, 4]);
    }
}
