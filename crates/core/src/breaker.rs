//! Circuit breaker for the dispatch path.
//!
//! A [`CircuitBreaker`] sits in front of the batch driver's `submit` path
//! (and the server's dispatch) and sheds load when the downstream keeps
//! failing transiently, instead of letting every request pay the full
//! retry-and-fail cost. It is the classic three-state machine:
//!
//! * **Closed** — traffic flows; outcomes land in a sliding window of the
//!   last [`BreakerConfig::window`] requests. When the window holds at
//!   least [`BreakerConfig::min_samples`] outcomes and the failure rate
//!   reaches [`BreakerConfig::failure_threshold`], the breaker trips.
//! * **Open** — all requests are shed immediately with a suggested
//!   `Retry-After`. After [`BreakerConfig::cooldown_ms`] the next arrival
//!   transitions the breaker to half-open.
//! * **Half-open** — up to [`BreakerConfig::half_open_probes`] probe
//!   requests are admitted; the first probe outcome decides: success
//!   closes the breaker (window cleared), failure re-opens it and restarts
//!   the cooldown.
//!
//! Only failures the caller *reports* count — the convention in this
//! codebase is that callers report `success=false` only for transient
//! faults ([`CqpError::is_transient`]); client faults (bad requests,
//! oversized spaces) say nothing about downstream health and must be
//! recorded as successes or not at all.
//!
//! All transitions are counted in lock-free counters and mirrored to a
//! [`Recorder`] (`breaker.opened` / `breaker.half_open` / `breaker.closed`
//! counters, `breaker.state` gauge) so `/metrics` can expose them.
//!
//! [`CqpError::is_transient`]: crate::error::CqpError::is_transient

use cqp_obs::Recorder;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tuning knobs for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Sliding window length (outcomes) consulted while closed.
    pub window: usize,
    /// Failure rate in `[0, 1]` at which the breaker trips.
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before the rate is meaningful.
    pub min_samples: usize,
    /// How long the breaker stays open before probing, milliseconds.
    pub cooldown_ms: u64,
    /// Concurrent probe requests admitted while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown_ms: 1_000,
            half_open_probes: 1,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// All traffic is shed.
    Open,
    /// Probe traffic only.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase tag for reports and `/metrics`.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Gauge encoding: closed = 0, half-open = 1, open = 2.
    pub fn gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Recent outcomes while closed; `true` = failure.
    window: VecDeque<bool>,
    /// Failures currently in `window` (kept in sync incrementally).
    failures: usize,
    /// When the breaker last entered [`BreakerState::Open`].
    opened_at: Option<Instant>,
    /// Probes admitted and not yet reported while half-open.
    probes_inflight: u32,
}

/// A thread-safe closed/open/half-open circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    opened: AtomicU64,
    half_opened: AtomicU64,
    closed: AtomicU64,
    shed: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker under `config`. `window`, `min_samples`, and
    /// `half_open_probes` are clamped to at least 1.
    pub fn new(mut config: BreakerConfig) -> Self {
        config.window = config.window.max(1);
        config.min_samples = config.min_samples.max(1).min(config.window);
        config.half_open_probes = config.half_open_probes.max(1);
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                failures: 0,
                opened_at: None,
                probes_inflight: 0,
            }),
            opened: AtomicU64::new(0),
            half_opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The configuration this breaker runs under.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Asks to pass one request through. `Ok(())` admits it (the caller
    /// must later call [`CircuitBreaker::record`] with the outcome);
    /// `Err(retry_after_ms)` sheds it with a back-off hint.
    pub fn try_acquire(&self) -> Result<(), u64> {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let elapsed_ms = inner
                    .opened_at
                    .map(|t| t.elapsed().as_millis() as u64)
                    .unwrap_or(u64::MAX);
                if elapsed_ms >= self.config.cooldown_ms {
                    inner.state = BreakerState::HalfOpen;
                    inner.probes_inflight = 1;
                    self.half_opened.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                } else {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    Err((self.config.cooldown_ms - elapsed_ms).max(1))
                }
            }
            BreakerState::HalfOpen => {
                if inner.probes_inflight < self.config.half_open_probes {
                    inner.probes_inflight += 1;
                    Ok(())
                } else {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    Err(self.config.cooldown_ms.max(1))
                }
            }
        }
    }

    /// Reports the outcome of an admitted request. Callers should pass
    /// `success=false` only for transient faults — a client fault says
    /// nothing about downstream health. Transitions are mirrored to
    /// `recorder` as `breaker.*` counters and the `breaker.state` gauge.
    pub fn record(&self, success: bool, recorder: &dyn Recorder) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.window.push_back(!success);
                if !success {
                    inner.failures += 1;
                }
                while inner.window.len() > self.config.window {
                    if let Some(evicted_failure) = inner.window.pop_front() {
                        if evicted_failure {
                            inner.failures -= 1;
                        }
                    }
                }
                let samples = inner.window.len();
                let rate = inner.failures as f64 / samples as f64;
                if samples >= self.config.min_samples && rate >= self.config.failure_threshold {
                    self.trip(&mut inner, recorder);
                }
            }
            BreakerState::HalfOpen => {
                inner.probes_inflight = inner.probes_inflight.saturating_sub(1);
                if success {
                    inner.state = BreakerState::Closed;
                    inner.window.clear();
                    inner.failures = 0;
                    inner.opened_at = None;
                    inner.probes_inflight = 0;
                    self.closed.fetch_add(1, Ordering::Relaxed);
                    recorder.add("breaker.closed", 1);
                } else {
                    self.trip(&mut inner, recorder);
                }
            }
            // A request admitted while closed can finish after the breaker
            // tripped; its outcome is stale and says nothing new.
            BreakerState::Open => {}
        }
        recorder.set_gauge("breaker.state", inner.state.gauge());
    }

    /// The current state (resolving an elapsed cooldown requires an
    /// arrival, so an open breaker reports open until the next
    /// [`CircuitBreaker::try_acquire`]).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Lifetime transition and shed counts:
    /// `(opened, half_opened, closed, shed)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.opened.load(Ordering::Relaxed),
            self.half_opened.load(Ordering::Relaxed),
            self.closed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
        )
    }

    fn trip(&self, inner: &mut Inner, recorder: &dyn Recorder) {
        inner.state = BreakerState::Open;
        inner.window.clear();
        inner.failures = 0;
        inner.opened_at = Some(Instant::now());
        inner.probes_inflight = 0;
        self.opened.fetch_add(1, Ordering::Relaxed);
        recorder.add("breaker.opened", 1);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock leaves only counters behind;
        // recovering the inner value keeps the breaker serviceable.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_obs::{NoopRecorder, Obs};

    fn quick(cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_ms,
            half_open_probes: 1,
        })
    }

    #[test]
    fn stays_closed_under_success() {
        let b = quick(1_000);
        for _ in 0..64 {
            assert!(b.try_acquire().is_ok());
            b.record(true, &NoopRecorder);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.counters(), (0, 0, 0, 0));
    }

    #[test]
    fn trips_at_failure_threshold_and_sheds() {
        let b = quick(60_000);
        for _ in 0..4 {
            assert!(b.try_acquire().is_ok());
            b.record(false, &NoopRecorder);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let err = b.try_acquire();
        assert!(err.is_err());
        assert!(err.unwrap_err() > 0);
        let (opened, _, _, shed) = b.counters();
        assert_eq!(opened, 1);
        assert_eq!(shed, 1);
    }

    #[test]
    fn below_min_samples_never_trips() {
        let b = quick(1_000);
        for _ in 0..3 {
            assert!(b.try_acquire().is_ok());
            b.record(false, &NoopRecorder);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = quick(0); // cooldown elapses immediately
        for _ in 0..4 {
            b.try_acquire().ok();
            b.record(false, &NoopRecorder);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown of 0 ms: next arrival becomes the probe.
        assert!(b.try_acquire().is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(true, &NoopRecorder);
        assert_eq!(b.state(), BreakerState::Closed);
        let (opened, half, closed, _) = b.counters();
        assert_eq!((opened, half, closed), (1, 1, 1));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = quick(0);
        for _ in 0..4 {
            b.try_acquire().ok();
            b.record(false, &NoopRecorder);
        }
        assert!(b.try_acquire().is_ok());
        b.record(false, &NoopRecorder);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.counters().0, 2); // opened twice
    }

    #[test]
    fn half_open_admits_only_probe_budget() {
        let b = quick(0);
        for _ in 0..4 {
            b.try_acquire().ok();
            b.record(false, &NoopRecorder);
        }
        assert!(b.try_acquire().is_ok()); // the probe
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.try_acquire().is_err()); // beyond probe budget
    }

    #[test]
    fn window_slides_old_failures_out() {
        let b = quick(1_000);
        // One early failure, then 16 successes: the window (8) slides the
        // failure out entirely.
        b.try_acquire().ok();
        b.record(false, &NoopRecorder);
        for _ in 0..16 {
            b.try_acquire().ok();
            b.record(true, &NoopRecorder);
        }
        // Three fresh failures: the window holds 5 successes + 3 failures
        // (rate 0.375 < 0.5), so the breaker stays closed. If eviction
        // failed to forget the early failure the rate would read 0.5 and
        // trip.
        for _ in 0..3 {
            b.try_acquire().ok();
            b.record(false, &NoopRecorder);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn transitions_reach_recorder() {
        let obs = Obs::new();
        let b = quick(0);
        for _ in 0..4 {
            b.try_acquire().ok();
            b.record(false, &obs);
        }
        b.try_acquire().ok(); // half-open
        b.record(true, &obs); // closes
        let reg = obs.registry();
        assert_eq!(reg.counter("breaker.opened"), 1);
        assert_eq!(reg.counter("breaker.closed"), 1);
        assert_eq!(reg.gauge("breaker.state"), Some(0.0));
    }

    #[test]
    fn state_tags_and_gauges() {
        assert_eq!(BreakerState::Closed.as_str(), "closed");
        assert_eq!(BreakerState::Open.as_str(), "open");
        assert_eq!(BreakerState::HalfOpen.as_str(), "half_open");
        assert_eq!(BreakerState::Closed.gauge(), 0.0);
        assert_eq!(BreakerState::HalfOpen.gauge(), 1.0);
        assert_eq!(BreakerState::Open.gauge(), 2.0);
    }
}
