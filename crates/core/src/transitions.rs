//! The transitions of the CQP state spaces (paper Sections 5.2.1/5.2.2).
//!
//! All three transitions perform *syntactic* modifications with known
//! implications on the state parameters (paper Observation 1):
//!
//! * [`horizontal`] — `Cx ∪ {c_{i+1}}` where `i = max(Cx)`: insert the
//!   order-vector entry right after the largest one present. Moves to
//!   higher primary value and higher doi (cost space Table 4).
//! * [`vertical`] — replace a member `c_i` by its successor `c_{i+1}` if
//!   absent. Moves to lower primary value; the other parameters change in
//!   unknown directions. Neighbors are returned ordered by decreasing
//!   primary value of the resulting state.
//! * [`horizontal2`] — `Cx ∪ {c_i}` for any absent `c_i`, "ordered in
//!   decreasing cost": i.e. by ascending order-vector index, since the
//!   vector itself is sorted by decreasing parameter contribution.

use crate::spaces::SpaceView;
use crate::state::State;

/// The Horizontal transition: append the successor of the maximum index.
///
/// For the empty state this yields `{c1}` (the paper's algorithms start
/// from `R = {1}`). Returns `None` when the maximum index is already the
/// last entry of the order vector.
pub fn horizontal(view: &SpaceView<'_>, s: &State) -> Option<State> {
    let k = view.k() as u16;
    if k == 0 {
        return None;
    }
    match s.max_index() {
        None => Some(State::singleton(0)),
        Some(m) if m + 1 < k => Some(s.with_inserted(m + 1)),
        Some(_) => None,
    }
}

/// The Vertical transitions: every replacement of a member by its immediate
/// successor in the order vector, provided the successor is absent.
///
/// The returned list is ordered by decreasing primary value of the
/// resulting state (paper: "Vertical neighbors are ordered in decreasing
/// cost"), with ties broken by the replaced index for determinism.
pub fn vertical(view: &SpaceView<'_>, s: &State) -> Vec<State> {
    let k = view.k() as u16;
    let mut out: Vec<(f64, u16, State)> = Vec::new();
    for i in s.iter() {
        let next = i + 1;
        if next < k && !s.contains(next) {
            let n = s.with_replaced(i, next);
            out.push((view.primary(&n), i, n));
        }
    }
    out.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    out.into_iter().map(|(_, _, n)| n).collect()
}

/// The Horizontal2 transitions (paper Section 5.2.1, C-MAXBOUNDS): every
/// single insertion of an absent order-vector entry, in ascending index
/// order — which is descending order of the inserted preference's
/// parameter contribution, hence "ordered in decreasing cost".
///
/// Returned lazily so "first neighbor satisfying the constraint" scans
/// don't materialize the whole list.
pub fn horizontal2<'a>(
    view: &SpaceView<'a>,
    s: &'a State,
) -> impl Iterator<Item = (u16, State)> + 'a {
    let k = view.k() as u16;
    (0..k)
        .filter(|i| !s.contains(*i))
        .map(move |i| (i, s.with_inserted(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::SpaceView;
    use cqp_prefs::{ConjModel, Doi};
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    /// The paper's Figure 6/8 example: five preferences with costs
    /// 120, 80, 60, 40, 30 in C order. We give dois so that the doi order
    /// equals the cost order (which keeps the fixture easy to reason
    /// about) — the transition structure only depends on the indices.
    fn fig6_space() -> PreferenceSpace {
        let costs = [120u64, 80, 60, 40, 30];
        let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
        PreferenceSpace::synthetic(
            (0..5)
                .map(|i| PrefParams {
                    doi: Doi::new(dois[i]),
                    cost_blocks: costs[i],
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    fn st(v: &[u16]) -> State {
        State::from_indices(v.to_vec())
    }

    #[test]
    fn horizontal_appends_after_max() {
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        // Paper: Horizontal(c1c3) = c1c3c4.
        assert_eq!(horizontal(&view, &st(&[0, 2])), Some(st(&[0, 2, 3])));
        // From the empty state: {c1}.
        assert_eq!(horizontal(&view, &State::empty()), Some(st(&[0])));
        // Max index present: no successor.
        assert_eq!(horizontal(&view, &st(&[1, 4])), None);
    }

    #[test]
    fn vertical_paper_example() {
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        // Paper: Vertical(c1c3) = {c1c4, c2c3} (in decreasing cost:
        // c1c4 = 120+40 = 160, c2c3 = 80+60 = 140).
        let vs = vertical(&view, &st(&[0, 2]));
        assert_eq!(vs, vec![st(&[0, 3]), st(&[1, 2])]);
    }

    #[test]
    fn vertical_skips_present_successors() {
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        // c1c2: replacing c1 by c2 is blocked (present); only c2→c3 works.
        let vs = vertical(&view, &st(&[0, 1]));
        assert_eq!(vs, vec![st(&[0, 2])]);
        // Full state has no vertical neighbors.
        assert!(vertical(&view, &st(&[0, 1, 2, 3, 4])).is_empty());
    }

    #[test]
    fn vertical_decreases_primary() {
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let s = st(&[0, 2, 3]);
        let c = view.state_cost(&s);
        for n in vertical(&view, &s) {
            assert!(view.state_cost(&n) < c);
            assert_eq!(n.len(), s.len());
        }
    }

    #[test]
    fn horizontal_increases_cost_and_doi() {
        // Table 4: Horizontal ↑cost, ↑doi.
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let s = st(&[1, 2]);
        let h = horizontal(&view, &s).unwrap();
        assert!(view.state_cost(&h) > view.state_cost(&s));
        assert!(view.state_doi(&h) > view.state_doi(&s));
        assert!(view.state_size(&h) <= view.state_size(&s));
    }

    #[test]
    fn horizontal2_enumerates_in_decreasing_cost() {
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        // Paper: Horizontal2(c2) = {c1c2, c2c3, c2c4, c2c5}.
        let base = st(&[1]);
        let hs: Vec<State> = horizontal2(&view, &base).map(|(_, s)| s).collect();
        assert_eq!(hs, vec![st(&[0, 1]), st(&[1, 2]), st(&[1, 3]), st(&[1, 4])]);
        // Costs decrease along the enumeration.
        let costs: Vec<u64> = hs.iter().map(|s| view.state_cost(s)).collect();
        for w in costs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn doi_space_transitions_mirror_table5() {
        let space = fig6_space();
        let view = SpaceView::doi(&space, ConjModel::NoisyOr);
        let s = st(&[1, 2]);
        // Horizontal: ↑doi (Table 5).
        let h = horizontal(&view, &s).unwrap();
        assert!(view.state_doi(&h) > view.state_doi(&s));
        // Vertical: ↓doi, cost unknown.
        for n in vertical(&view, &s) {
            assert!(view.state_doi(&n) < view.state_doi(&s));
        }
    }

    #[test]
    fn destination_states_remain_valid_sets() {
        // Proposition 1: the destination of a transition is also a state.
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        for s in [st(&[0]), st(&[0, 2]), st(&[1, 3]), st(&[0, 1, 2])] {
            if let Some(h) = horizontal(&view, &s) {
                assert_eq!(h.len(), s.len() + 1);
            }
            for v in vertical(&view, &s) {
                assert_eq!(v.len(), s.len());
            }
            for (_, h2) in horizontal2(&view, &s) {
                assert_eq!(h2.len(), s.len() + 1);
            }
        }
    }
}
