//! The CQP system facade — the full architecture of paper Figure 2.
//!
//! `User query + profile + search context → Preference Space → Parameter
//! Estimation → CQP State Space Search → Personalized Query Construction →
//! Query Execution`. [`CqpSystem`] wires the modules of this workspace into
//! that pipeline.

use crate::algorithms::{self, general, solve_p2_budgeted, Algorithm, Solution};
use crate::budget::{Budget, CancelToken};
use crate::construct::construct;
use crate::error::CqpError;
use crate::problem::{ProblemKind, ProblemSpec};
use cqp_engine::{
    execute_personalized, execute_personalized_recorded, ConjunctiveQuery, ExecOutput,
    PersonalizedQuery,
};
use cqp_obs::record::span_guard;
use cqp_obs::{NoopRecorder, Recorder};
use cqp_par::ThreadPool;
use cqp_prefs::{ConjModel, Profile};
use cqp_prefspace::{extract, ExtractConfig, PreferenceSpace};
use cqp_storage::{Database, DbStats, IoMeter};
use std::sync::Arc;
use std::time::Instant;

/// How much hardware parallelism a search may use.
///
/// `threads == 1` (the default) is the sequential baseline every parallel
/// path is tested bit-identical against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads for partitionable searches (clamped to
    /// `1..=`[`cqp_par::MAX_WORKERS`] by the pool).
    pub threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism { threads: 1 }
    }
}

impl Parallelism {
    /// `threads` workers (0 is treated as 1 by the pool).
    pub fn new(threads: usize) -> Self {
        Parallelism { threads }
    }

    /// One worker per hardware thread.
    pub fn auto() -> Self {
        Parallelism {
            threads: cqp_par::available_parallelism(),
        }
    }

    /// A pool of this width.
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads)
    }
}

/// Configuration for one personalization request.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// The conjunction model `r` (Formula 10 by default).
    pub conj: ConjModel,
    /// Preference extraction parameters (`K`, pruning thresholds, …).
    pub extract: ExtractConfig,
    /// Search algorithm (used directly for Problem 2; other problems use
    /// the Section 6 adaptation, or branch-and-bound when selected).
    pub algorithm: Algorithm,
    /// Worker threads for partitionable searches (Exhaustive and
    /// BranchBound split their subset enumeration across a pool; the
    /// paper's graph searches are sequential and ignore this — batch-level
    /// parallelism across requests is [`crate::batch`]'s job).
    pub parallelism: Parallelism,
    /// Wall-clock / state budget for the search phase. When exceeded the
    /// search returns its best-so-far incumbent tagged
    /// [`Solution::degraded`] instead of running to completion. Unlimited
    /// by default.
    pub budget: Budget,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            conj: ConjModel::NoisyOr,
            extract: ExtractConfig::default(),
            algorithm: Algorithm::CMaxBounds,
            parallelism: Parallelism::default(),
            budget: Budget::unlimited(),
        }
    }
}

/// Errors surfaced by the system facade — the unified [`CqpError`].
///
/// Historical alias: earlier revisions had a facade-local two-variant enum;
/// the taxonomy now lives in [`crate::error`] so storage faults and request
/// validation share one type with construction and execution failures.
pub type SolverError = CqpError;

/// The result of a personalization request.
#[derive(Debug, Clone)]
pub struct PersonalizationOutcome {
    /// The selected preferences and their estimated parameters.
    pub solution: Solution,
    /// The constructed personalized query.
    pub query: PersonalizedQuery,
    /// The query rendered as SQL (the paper's Section 4.2 form).
    pub sql: String,
    /// Number of preferences the Preference Space produced (`K`).
    pub space_k: usize,
    /// Wall-clock time spent extracting the preference space, seconds.
    pub prefspace_secs: f64,
    /// Wall-clock time spent in state-space search, seconds.
    pub search_secs: f64,
}

/// The CQP system: a database plus its statistics, ready to personalize
/// queries for any profile.
#[derive(Debug)]
pub struct CqpSystem<'a> {
    db: &'a Database,
    stats: DbStats,
}

impl<'a> CqpSystem<'a> {
    /// Builds the system, analyzing the database for statistics.
    pub fn new(db: &'a Database) -> Self {
        Self::new_recorded(db, &NoopRecorder)
    }

    /// [`CqpSystem::new`] with the catalog analysis pass traced and its
    /// row/table counters published (`storage.analyze` span).
    pub fn new_recorded(db: &'a Database, recorder: &dyn Recorder) -> Self {
        CqpSystem {
            db,
            stats: db.analyze_recorded(recorder),
        }
    }

    /// Builds the system from already-computed statistics, skipping the
    /// analysis pass. The batch driver uses this so every concurrent
    /// request shares one `DbStats` instead of re-analyzing per request.
    pub fn from_parts(db: &'a Database, stats: DbStats) -> Self {
        CqpSystem { db, stats }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The statistics the estimators run on.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// Extracts the preference space for a query/profile pair.
    pub fn preference_space(
        &self,
        query: &ConjunctiveQuery,
        profile: &Profile,
        config: &SolverConfig,
    ) -> PreferenceSpace {
        let mut extract_cfg = config.extract.clone();
        // Cost-based algorithms need the C/S vectors; the cost bound (if
        // any) lets extraction prune hopeless preferences (Figure 3).
        extract_cfg.with_cost_vectors =
            extract_cfg.with_cost_vectors || config.algorithm.needs_cost_vectors();
        extract(query, profile, &self.stats, &extract_cfg).space
    }

    /// [`CqpSystem::preference_space`] repaired incrementally from a cached
    /// space built for the same base query at an older profile version:
    /// surviving preferences reuse their cost/size estimates and the rank
    /// vectors are merged, not re-sorted. Bit-identical to a fresh build
    /// (`cqp_prefspace::extract_delta`).
    pub fn preference_space_delta(
        &self,
        query: &ConjunctiveQuery,
        profile: &Profile,
        config: &SolverConfig,
        cached: &PreferenceSpace,
    ) -> cqp_prefspace::DeltaExtraction {
        let mut extract_cfg = config.extract.clone();
        extract_cfg.with_cost_vectors =
            extract_cfg.with_cost_vectors || config.algorithm.needs_cost_vectors();
        cqp_prefspace::extract_delta(query, profile, &self.stats, &extract_cfg, cached)
    }

    /// Runs the full pipeline for one CQP problem.
    pub fn personalize(
        &self,
        query: &ConjunctiveQuery,
        profile: &Profile,
        problem: &ProblemSpec,
        config: &SolverConfig,
    ) -> Result<PersonalizationOutcome, SolverError> {
        self.run_recorded(query, profile, problem, config, &NoopRecorder)
    }

    /// [`CqpSystem::personalize`] under a `personalize` span with nested
    /// `prefspace` / `search` / `construct` phases. The outcome's wall-clock
    /// fields are unchanged; the recorder additionally sees per-phase spans
    /// and the `solver.*` counters.
    pub fn personalize_recorded(
        &self,
        query: &ConjunctiveQuery,
        profile: &Profile,
        problem: &ProblemSpec,
        config: &SolverConfig,
        recorder: &dyn Recorder,
    ) -> Result<PersonalizationOutcome, SolverError> {
        self.run_recorded(query, profile, problem, config, recorder)
    }

    /// Runs the full pipeline for one CQP problem, returning a typed
    /// [`CqpError`] for every failure mode: infeasible request shapes are
    /// rejected up front ([`CqpError::SpaceTooLarge`]), construction and
    /// execution errors propagate, and budget overruns degrade the solution
    /// ([`Solution::degraded`]) instead of failing the request.
    pub fn run(
        &self,
        query: &ConjunctiveQuery,
        profile: &Profile,
        problem: &ProblemSpec,
        config: &SolverConfig,
    ) -> Result<PersonalizationOutcome, CqpError> {
        self.run_recorded(query, profile, problem, config, &NoopRecorder)
    }

    /// [`CqpSystem::run`] with spans and `solver.*` counters.
    pub fn run_recorded(
        &self,
        query: &ConjunctiveQuery,
        profile: &Profile,
        problem: &ProblemSpec,
        config: &SolverConfig,
        recorder: &dyn Recorder,
    ) -> Result<PersonalizationOutcome, CqpError> {
        let _run = span_guard(recorder, "personalize");

        let t0 = Instant::now();
        let space = {
            let _span = span_guard(recorder, "prefspace");
            let space = self.preference_space(query, profile, config);
            recorder.add("solver.prefspace_k", space.k() as u64);
            space
        };
        let prefspace_secs = t0.elapsed().as_secs_f64();

        // The exhaustive oracle enumerates 2^K subsets and asserts on
        // oversized spaces; turn that into a typed rejection so one
        // oversized request cannot abort a batch.
        if config.algorithm == Algorithm::Exhaustive
            && space.k() > algorithms::exhaustive::MAX_EXHAUSTIVE_K
        {
            return Err(CqpError::SpaceTooLarge {
                k: space.k(),
                max: algorithms::exhaustive::MAX_EXHAUSTIVE_K,
            });
        }

        let t1 = Instant::now();
        let solution = {
            let _span = span_guard(recorder, "search");
            self.search_recorded(&space, problem, config, recorder)
        };
        let search_secs = t1.elapsed().as_secs_f64();

        let _span = span_guard(recorder, "construct");
        let pq = construct(query, &space, &solution.prefs)?;
        let sql = cqp_engine::sql::personalized_sql(self.db.catalog(), &pq);
        Ok(PersonalizationOutcome {
            solution,
            query: pq,
            sql,
            space_k: space.k(),
            prefspace_secs,
            search_secs,
        })
    }

    /// State-space search only (no construction) — used by benchmarks.
    pub fn search(
        &self,
        space: &PreferenceSpace,
        problem: &ProblemSpec,
        config: &SolverConfig,
    ) -> Solution {
        self.search_recorded(space, problem, config, &NoopRecorder)
    }

    /// [`CqpSystem::search`] with spans and `solver.*` counters. One
    /// [`CancelToken`] derived from `config.budget` is shared by every
    /// search path (and every pool worker in the partitioned ones); a
    /// tripped token tags the returned incumbent [`Solution::degraded`].
    pub fn search_recorded(
        &self,
        space: &PreferenceSpace,
        problem: &ProblemSpec,
        config: &SolverConfig,
        recorder: &dyn Recorder,
    ) -> Solution {
        let token = CancelToken::for_budget(&config.budget);
        if config.algorithm == Algorithm::BranchBound {
            let _span = span_guard(recorder, "BranchBound");
            let mut sol = if config.parallelism.threads > 1 {
                let pool = config.parallelism.pool();
                algorithms::branch_bound::solve_partitioned_bounded(
                    space,
                    config.conj,
                    problem,
                    &pool,
                    &token,
                )
            } else {
                algorithms::branch_bound::solve_bounded(space, config.conj, problem, &token)
            };
            sol.degraded = token.degraded_info();
            sol.instrument.flush_to(recorder);
            return sol;
        }
        if problem.kind() == Some(ProblemKind::P2) {
            // P2 specs built via `ProblemSpec::p2` always carry their cost
            // bound; a hand-rolled spec without one falls through to the
            // general search instead of panicking.
            if let Some(cmax) = problem.constraints.cost_max_blocks {
                if config.algorithm == Algorithm::Exhaustive && config.parallelism.threads > 1 {
                    let _span = span_guard(recorder, "Exhaustive");
                    let pool = config.parallelism.pool();
                    let mut sol = algorithms::exhaustive::solve_partitioned_bounded(
                        space,
                        config.conj,
                        &ProblemSpec::p2(cmax),
                        &pool,
                        &token,
                    );
                    sol.degraded = token.degraded_info();
                    sol.instrument.flush_to(recorder);
                    return sol;
                }
                return solve_p2_budgeted(
                    space,
                    config.conj,
                    cmax,
                    config.algorithm,
                    recorder,
                    None,
                    &token,
                );
            }
        }
        let _span = span_guard(recorder, "general");
        let mut sol = general::solve_bounded(space, config.conj, problem, &token);
        sol.degraded = token.degraded_info();
        sol.instrument.flush_to(recorder);
        sol
    }

    /// [`CqpSystem::search_recorded`] seeded with a warm-start bound from a
    /// previously solved instance over the same space (cross-request answer
    /// cache, warm tier). Only the branch-and-bound path can exploit the
    /// seed; every other algorithm dispatches exactly like
    /// [`CqpSystem::search_recorded`], so the returned solution is always
    /// bit-identical to a cold search — the seed only shrinks the states
    /// visited.
    ///
    /// The caller must guarantee `warm` is feasible under `problem` (the
    /// answer cache checks this before handing out a seed).
    pub fn search_warm_recorded(
        &self,
        space: &PreferenceSpace,
        problem: &ProblemSpec,
        config: &SolverConfig,
        warm: Option<crate::params::QueryParams>,
        recorder: &dyn Recorder,
    ) -> Solution {
        if config.algorithm != Algorithm::BranchBound || warm.is_none() {
            return self.search_recorded(space, problem, config, recorder);
        }
        let token = CancelToken::for_budget(&config.budget);
        let _span = span_guard(recorder, "BranchBound");
        let mut sol =
            algorithms::branch_bound::solve_bounded_warm(space, config.conj, problem, &token, warm);
        sol.degraded = token.degraded_info();
        sol.instrument.flush_to(recorder);
        sol
    }

    /// Executes a personalized query on the database, returning the rows
    /// and the metered I/O cost (`blocks, simulated ms`).
    pub fn execute(
        &self,
        pq: &PersonalizedQuery,
        ms_per_block: f64,
    ) -> Result<(ExecOutput, u64, f64), SolverError> {
        let meter = IoMeter::new(ms_per_block);
        let out = execute_personalized(self.db, pq, &meter)?;
        Ok((out, meter.blocks_read(), meter.elapsed_ms()))
    }

    /// [`CqpSystem::execute`] with execution spans and engine/storage
    /// counters: the I/O meter forwards every physical block read to the
    /// recorder, and the executor reports scans, joins, and row counts.
    pub fn execute_recorded(
        &self,
        pq: &PersonalizedQuery,
        ms_per_block: f64,
        recorder: Arc<dyn Recorder>,
    ) -> Result<(ExecOutput, u64, f64), SolverError> {
        let meter = IoMeter::with_recorder(ms_per_block, Arc::clone(&recorder));
        let out = execute_personalized_recorded(self.db, pq, &meter, &*recorder)?;
        Ok((out, meter.blocks_read(), meter.elapsed_ms()))
    }

    /// Computes the full (doi, cost) Pareto frontier for a query/profile
    /// pair — the paper's multi-objective extension (Section 8). Each point
    /// can be turned into a query via [`crate::construct::construct`].
    pub fn pareto_menu(
        &self,
        query: &ConjunctiveQuery,
        profile: &Profile,
        constraints: &crate::problem::Constraints,
        config: &SolverConfig,
    ) -> (PreferenceSpace, Vec<algorithms::pareto::ParetoPoint>) {
        let space = self.preference_space(query, profile, config);
        let mut inst = crate::instrument::Instrument::new();
        let frontier =
            algorithms::pareto::pareto_frontier(&space, config.conj, constraints, &mut inst);
        (space, frontier)
    }

    /// Executes a personalization outcome in *ranked* mode: rows that
    /// satisfy at least `min_satisfied` of the selected preferences,
    /// ordered by the doi of the preferences each row satisfies
    /// (Section 3's ranking requirement).
    pub fn execute_ranked(
        &self,
        outcome: &PersonalizationOutcome,
        space: &PreferenceSpace,
        min_satisfied: usize,
        ms_per_block: f64,
    ) -> Result<Vec<cqp_engine::RankedRow>, SolverError> {
        let dois: Vec<f64> = outcome
            .solution
            .prefs
            .iter()
            .map(|&i| space.doi(i).value())
            .collect();
        let meter = IoMeter::new(ms_per_block);
        let rows = cqp_engine::execute_ranked(
            self.db,
            &outcome.query,
            &dois,
            cqp_engine::Matching::AtLeast(min_satisfied),
            &meter,
        )?;
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_engine::QueryBuilder;
    use cqp_prefs::Doi;
    use cqp_storage::{DataType, RelationSchema, Value};

    fn movie_db() -> Database {
        let mut db = Database::with_block_capacity(4);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        for i in 0..40i64 {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(1980 + i % 20),
                    Value::Int(90),
                    Value::Int(i % 4),
                ],
            )
            .unwrap();
            db.insert_into(
                "GENRE",
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "musical" } else { "drama" }),
                ],
            )
            .unwrap();
        }
        for d in 0..4i64 {
            let name = if d == 0 {
                "W. Allen".to_owned()
            } else {
                format!("dir{d}")
            };
            db.insert_into("DIRECTOR", vec![Value::Int(d), Value::str(name)])
                .unwrap();
        }
        db
    }

    #[test]
    fn end_to_end_personalization() {
        let db = movie_db();
        let system = CqpSystem::new(&db);
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();

        // Generous budget: both Figure 1 preferences fit.
        let outcome = system
            .personalize(
                &base,
                &profile,
                &ProblemSpec::p2(100),
                &SolverConfig::default(),
            )
            .unwrap();
        assert_eq!(outcome.space_k, 2);
        assert_eq!(outcome.solution.prefs.len(), 2);
        assert!(outcome.sql.contains("having count(*) = 2"));

        // Execute: results are W. Allen musicals (movies 0,4,8,... by d0
        // with even mid — mid % 4 == 0).
        let (rows, blocks, ms) = system.execute(&outcome.query, 1.0).unwrap();
        assert!(!rows.is_empty());
        assert!(blocks > 0);
        assert!(ms > 0.0);
    }

    #[test]
    fn tight_budget_prunes_preferences() {
        let db = movie_db();
        let system = CqpSystem::new(&db);
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        // MOVIE has 10 blocks, DIRECTOR 1, GENRE 10: the W. Allen sub-query
        // costs 11, the musical one 20. With cmax=15, only W. Allen fits.
        let outcome = system
            .personalize(
                &base,
                &profile,
                &ProblemSpec::p2(15),
                &SolverConfig::default(),
            )
            .unwrap();
        assert_eq!(outcome.solution.prefs.len(), 1);
        assert!(outcome.solution.cost_blocks <= 15);
    }

    #[test]
    fn all_algorithms_agree_on_doi_here() {
        let db = movie_db();
        let system = CqpSystem::new(&db);
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let mut dois = Vec::new();
        for algo in Algorithm::PAPER {
            let config = SolverConfig {
                algorithm: algo,
                ..Default::default()
            };
            let outcome = system
                .personalize(&base, &profile, &ProblemSpec::p2(100), &config)
                .unwrap();
            dois.push(outcome.solution.doi);
        }
        assert!(dois.windows(2).all(|w| w[0] == w[1]), "{dois:?}");
    }

    #[test]
    fn pareto_menu_and_ranked_execution_via_facade() {
        let db = movie_db();
        let system = CqpSystem::new(&db);
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let config = SolverConfig::default();
        let (space, frontier) = system.pareto_menu(
            &base,
            &profile,
            &crate::problem::Constraints {
                size_min: 0.0,
                ..Default::default()
            },
            &config,
        );
        assert_eq!(space.k(), 2);
        assert!(!frontier.is_empty());
        // Ranked execution of a P2 outcome: soft matching returns at least
        // as many rows as the strict conjunction.
        let outcome = system
            .personalize(&base, &profile, &ProblemSpec::p2(100), &config)
            .unwrap();
        let strict = system.execute(&outcome.query, 1.0).unwrap().0;
        let soft = system.execute_ranked(&outcome, &space, 1, 1.0).unwrap();
        assert!(soft.len() >= strict.len());
        for w in soft.windows(2) {
            assert!(w[0].doi >= w[1].doi);
        }
    }

    #[test]
    fn recorded_pipeline_emits_spans_and_counters() {
        let db = movie_db();
        let obs: Arc<cqp_obs::Obs> = Arc::new(cqp_obs::Obs::new());
        let system = CqpSystem::new_recorded(&db, &*obs);
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let config = SolverConfig {
            algorithm: Algorithm::CBoundaries,
            ..Default::default()
        };
        let outcome = system
            .personalize_recorded(&base, &profile, &ProblemSpec::p2(100), &config, &*obs)
            .unwrap();
        let (_rows, blocks, _ms) = system
            .execute_recorded(&outcome.query, 1.0, obs.clone())
            .unwrap();

        // Solver-phase spans nest under personalize → search → algorithm.
        let spans = obs.with_tracer(|t| t.spans());
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"storage.analyze"), "{paths:?}");
        assert!(paths.contains(&"personalize.search.C_Boundaries.find_boundaries"));
        assert!(paths.contains(&"personalize.search.C_Boundaries.find_max_doi"));
        assert!(paths.contains(&"personalize.construct"));
        assert!(paths.contains(&"engine.execute_personalized"));

        // Counters flowed from all three layers into one registry.
        let reg = obs.registry();
        assert!(reg.counter("solver.states_examined") > 0);
        assert!(reg.counter("engine.scans") > 0);
        assert_eq!(reg.counter("storage.blocks_read"), blocks);
        assert!(blocks > 0);
    }

    #[test]
    fn problem4_via_facade() {
        let db = movie_db();
        let system = CqpSystem::new(&db);
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let outcome = system
            .personalize(
                &base,
                &profile,
                &ProblemSpec::p4(Doi::new(0.5)),
                &SolverConfig::default(),
            )
            .unwrap();
        assert!(outcome.solution.doi >= Doi::new(0.5));
    }
}
