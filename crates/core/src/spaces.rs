//! Space views: a rank vector (`C`, `D`, or `S`) bound to a parameter
//! evaluator.
//!
//! "Transitions are based on transformation rules … Each category creates a
//! different state space (same nodes, different edges)" (paper Section 5.1).
//! A [`SpaceView`] fixes which rank vector the state indices refer to, and
//! therefore which state space the transitions of [`crate::transitions`]
//! generate.

use crate::params::{ParamEval, QueryParams};
use crate::state::State;
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;

/// Which parameter orders the rank vector of a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// The `C` vector: preferences by decreasing `cost(Q ∧ p)`.
    Cost,
    /// The `D` vector: preferences by decreasing doi (identity over `P`).
    Doi,
    /// The `S` vector: preferences by increasing `size(Q ∧ p)`.
    Size,
}

/// A state space: an order vector over `P` plus the parameter evaluator.
#[derive(Debug, Clone, Copy)]
pub struct SpaceView<'a> {
    eval: ParamEval<'a>,
    kind: SpaceKind,
    order: &'a [usize],
}

impl<'a> SpaceView<'a> {
    /// The cost state space (requires the space's `C` vector to be built).
    ///
    /// # Panics
    /// Panics if the preference space was extracted in doi-only mode.
    pub fn cost(space: &'a PreferenceSpace, conj: ConjModel) -> Self {
        assert!(
            space.c.len() == space.k(),
            "cost view requires the C vector (space was built in doi-only mode?)"
        );
        SpaceView {
            eval: ParamEval::new(space, conj),
            kind: SpaceKind::Cost,
            order: &space.c,
        }
    }

    /// The doi state space (`D` is the identity over `P`).
    pub fn doi(space: &'a PreferenceSpace, conj: ConjModel) -> Self {
        assert!(space.d.len() == space.k(), "D vector must be built");
        SpaceView {
            eval: ParamEval::new(space, conj),
            kind: SpaceKind::Doi,
            order: &space.d,
        }
    }

    /// The size state space (requires the space's `S` vector).
    ///
    /// # Panics
    /// Panics if the preference space was extracted in doi-only mode.
    pub fn size(space: &'a PreferenceSpace, conj: ConjModel) -> Self {
        assert!(
            space.s.len() == space.k(),
            "size view requires the S vector (space was built in doi-only mode?)"
        );
        SpaceView {
            eval: ParamEval::new(space, conj),
            kind: SpaceKind::Size,
            order: &space.s,
        }
    }

    /// The parameter evaluator.
    pub fn eval(&self) -> &ParamEval<'a> {
        &self.eval
    }

    /// The order vector of this view.
    pub fn order(&self) -> &'a [usize] {
        self.order
    }

    /// Which parameter orders this view.
    pub fn kind(&self) -> SpaceKind {
        self.kind
    }

    /// Number of preferences `K`.
    pub fn k(&self) -> usize {
        self.order.len()
    }

    /// P-index of the `i`-th entry of the order vector (the paper's `C[i]`).
    pub fn pref_at(&self, i: u16) -> usize {
        self.order[i as usize]
    }

    /// doi of a state in this view.
    pub fn state_doi(&self, s: &State) -> Doi {
        self.eval.doi_of(s.iter().map(|i| self.pref_at(i)))
    }

    /// Cost (blocks) of a state in this view.
    pub fn state_cost(&self, s: &State) -> u64 {
        self.eval.cost_of(s.iter().map(|i| self.pref_at(i)))
    }

    /// Estimated size (rows) of a state in this view.
    pub fn state_size(&self, s: &State) -> f64 {
        self.eval.size_of(s.iter().map(|i| self.pref_at(i)))
    }

    /// All parameters of a state in this view.
    pub fn state_params(&self, s: &State) -> QueryParams {
        let prefs = s.to_pref_indices(self.order);
        self.eval.params_of(&prefs)
    }

    /// The *primary* value of a state: the parameter the order vector sorts
    /// on, signed so that it **decreases** along the vector:
    ///
    /// * cost space  → cost (`C` is sorted by decreasing cost),
    /// * doi space   → doi,
    /// * size space  → `-size` (`S` is sorted by increasing size).
    ///
    /// Horizontal transitions increase it; the Vertical neighbor lists are
    /// ordered by it descending (paper: "Vertical neighbors are ordered in
    /// decreasing cost").
    pub fn primary(&self, s: &State) -> f64 {
        match self.kind {
            SpaceKind::Cost => self.state_cost(s) as f64,
            SpaceKind::Doi => self.state_doi(s).value(),
            SpaceKind::Size => -self.state_size(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_prefspace::PrefParams;

    fn space() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.8),
                    cost_blocks: 5,
                    size_factor: 0.2,
                },
                PrefParams {
                    doi: Doi::new(0.7),
                    cost_blocks: 12,
                    size_factor: 1.0,
                },
                PrefParams {
                    doi: Doi::new(0.5),
                    cost_blocks: 10,
                    size_factor: 0.3,
                },
            ],
            10.0,
            0,
        )
    }

    #[test]
    fn views_map_indices_through_their_vector() {
        let s = space();
        // P (doi-sorted): [.8/5/.2, .7/12/1.0, .5/10/.3]
        // C (cost desc): [1, 2, 0]; S (size asc): [0, 2, 1]
        let cost = SpaceView::cost(&s, ConjModel::NoisyOr);
        assert_eq!(cost.pref_at(0), 1);
        let st = State::singleton(0); // c1 = most expensive = P-index 1
        assert_eq!(cost.state_cost(&st), 12);
        assert!((cost.state_doi(&st).value() - 0.7).abs() < 1e-12);

        let size = SpaceView::size(&s, ConjModel::NoisyOr);
        assert_eq!(size.pref_at(0), 0); // smallest size factor first
        assert!((size.state_size(&State::singleton(0)) - 2.0).abs() < 1e-12);

        let doi = SpaceView::doi(&s, ConjModel::NoisyOr);
        assert_eq!(doi.pref_at(0), 0);
        assert!((doi.state_doi(&State::singleton(0)).value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn primary_decreases_along_each_order_vector() {
        let s = space();
        for view in [
            SpaceView::cost(&s, ConjModel::NoisyOr),
            SpaceView::doi(&s, ConjModel::NoisyOr),
            SpaceView::size(&s, ConjModel::NoisyOr),
        ] {
            let singles: Vec<f64> = (0..view.k() as u16)
                .map(|i| view.primary(&State::singleton(i)))
                .collect();
            for w in singles.windows(2) {
                assert!(w[0] >= w[1], "{:?}: {:?}", view.kind(), singles);
            }
        }
    }

    #[test]
    fn state_params_consistent_with_individual_accessors() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let st = State::from_indices(vec![0, 2]);
        let p = view.state_params(&st);
        assert_eq!(p.cost_blocks, view.state_cost(&st));
        assert_eq!(p.doi, view.state_doi(&st));
        assert!((p.size_rows - view.state_size(&st)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "doi-only mode")]
    fn cost_view_requires_c_vector() {
        let mut s = space();
        s.build_vectors(false);
        let _ = SpaceView::cost(&s, ConjModel::NoisyOr);
    }
}
