//! Search budgets and cooperative cancellation.
//!
//! The paper's heuristics exist because exact search can blow past an
//! interactive latency budget (Section 6, Figures 12–13). This module makes
//! that tradeoff explicit at serving time: a [`Budget`] on
//! [`SolverConfig`](crate::solver::SolverConfig) bounds wall-clock time and
//! states visited, and a [`CancelToken`] threads those bounds cooperatively
//! through every state-space loop. When a bound trips, the algorithm stops
//! expanding and returns its best-so-far incumbent tagged with
//! [`DegradedInfo`] instead of running on (or aborting). Incumbents are
//! feasible by construction, so a degraded solution still satisfies the
//! problem's hard range constraints whenever one was found at all.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource bounds for a single personalization request.
///
/// `Budget::default()` is unlimited: searches run to completion exactly as
/// before. Both bounds may be combined; whichever trips first wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock deadline, measured from the moment the search starts.
    pub deadline: Option<Duration>,
    /// Maximum number of search states to visit.
    pub max_states: Option<u64>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(ms: u64) -> Self {
        Budget {
            deadline: Some(Duration::from_millis(ms)),
            max_states: None,
        }
    }

    /// A bound on visited search states.
    pub fn with_max_states(n: u64) -> Self {
        Budget {
            deadline: None,
            max_states: Some(n),
        }
    }

    /// Whether this budget imposes no bound at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_states.is_none()
    }
}

/// Why a search degraded to its incumbent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The visited-state budget ran out.
    StateLimit,
    /// An external cancellation flag was raised.
    Cancelled,
}

impl DegradeReason {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeReason::DeadlineExceeded => "deadline_exceeded",
            DegradeReason::StateLimit => "state_limit",
            DegradeReason::Cancelled => "cancelled",
        }
    }
}

/// How and when a search gave up, attached to the returned
/// [`Solution`](crate::algorithms::Solution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedInfo {
    /// What tripped.
    pub reason: DegradeReason,
    /// Wall-clock time from search start to the trip.
    pub elapsed: Duration,
    /// States visited (token polls) up to the trip.
    pub states_visited: u64,
}

const FIRED_NONE: u8 = 0;
const FIRED_DEADLINE: u8 = 1;
const FIRED_STATES: u8 = 2;
const FIRED_FLAG: u8 = 3;

/// Cooperative cancellation token polled once per visited search state.
///
/// All interior state is atomic, so partitioned searches can share one token
/// by reference across worker threads; the first worker to observe a tripped
/// bound latches the reason for everyone. The deadline is only checked every
/// 64th poll (starting with the very first, so a zero deadline degrades
/// immediately) to keep `Instant::now()` out of the hot loop.
#[derive(Debug)]
pub struct CancelToken {
    start: Instant,
    deadline: Option<Instant>,
    max_states: Option<u64>,
    flag: Option<Arc<AtomicBool>>,
    states: AtomicU64,
    fired: AtomicU8,
    /// Precomputed: no bound of any kind, polls are a single load.
    passive: bool,
}

impl CancelToken {
    /// A token that never cancels.
    pub fn unlimited() -> Self {
        CancelToken::for_budget(&Budget::unlimited())
    }

    /// A token enforcing `budget`, with the clock starting now.
    pub fn for_budget(budget: &Budget) -> Self {
        let start = Instant::now();
        CancelToken {
            start,
            deadline: budget.deadline.map(|d| start + d),
            max_states: budget.max_states,
            flag: None,
            states: AtomicU64::new(0),
            fired: AtomicU8::new(FIRED_NONE),
            passive: budget.is_unlimited(),
        }
    }

    /// Attaches an external cancellation flag (e.g. a batch-wide shutdown).
    pub fn with_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.passive = false;
        self.flag = Some(flag);
        self
    }

    /// Records one visited state and reports whether the search must stop.
    ///
    /// Once tripped, every subsequent call returns `true` immediately, so
    /// deep recursions unwind quickly.
    #[inline]
    pub fn should_stop(&self) -> bool {
        if self.passive {
            return false;
        }
        if self.fired.load(Ordering::Relaxed) != FIRED_NONE {
            return true;
        }
        let n = self.states.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_states {
            if n > max {
                self.trip(FIRED_STATES);
                return true;
            }
        }
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                self.trip(FIRED_FLAG);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            // First poll (n == 1) always checks, so a ~0 deadline degrades
            // before any real work happens; after that, every 64th.
            if (n & 63) == 1 && Instant::now() >= deadline {
                self.trip(FIRED_DEADLINE);
                return true;
            }
        }
        false
    }

    fn trip(&self, why: u8) {
        let _ = self
            .fired
            .compare_exchange(FIRED_NONE, why, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Whether the token has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Relaxed) != FIRED_NONE
    }

    /// States visited so far (token polls).
    pub fn states_visited(&self) -> u64 {
        self.states.load(Ordering::Relaxed)
    }

    /// If tripped, the reason/elapsed/states snapshot to tag the solution
    /// with; `None` while the search is still within budget.
    pub fn degraded_info(&self) -> Option<DegradedInfo> {
        let reason = match self.fired.load(Ordering::Relaxed) {
            FIRED_DEADLINE => DegradeReason::DeadlineExceeded,
            FIRED_STATES => DegradeReason::StateLimit,
            FIRED_FLAG => DegradeReason::Cancelled,
            _ => return None,
        };
        Some(DegradedInfo {
            reason,
            elapsed: self.start.elapsed(),
            states_visited: self.states_visited(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let t = CancelToken::unlimited();
        for _ in 0..10_000 {
            assert!(!t.should_stop());
        }
        assert!(!t.is_cancelled());
        assert!(t.degraded_info().is_none());
    }

    #[test]
    fn zero_deadline_trips_on_first_poll() {
        let t = CancelToken::for_budget(&Budget::with_deadline_ms(0));
        assert!(t.should_stop());
        assert!(t.is_cancelled());
        let info = t.degraded_info().unwrap();
        assert_eq!(info.reason, DegradeReason::DeadlineExceeded);
        assert_eq!(info.states_visited, 1);
    }

    #[test]
    fn state_limit_trips_exactly() {
        let t = CancelToken::for_budget(&Budget::with_max_states(5));
        for _ in 0..5 {
            assert!(!t.should_stop());
        }
        assert!(t.should_stop());
        let info = t.degraded_info().unwrap();
        assert_eq!(info.reason, DegradeReason::StateLimit);
    }

    #[test]
    fn flag_trips() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::unlimited().with_flag(flag.clone());
        assert!(!t.should_stop());
        flag.store(true, Ordering::Relaxed);
        assert!(t.should_stop());
        assert_eq!(t.degraded_info().unwrap().reason, DegradeReason::Cancelled);
    }

    #[test]
    fn once_tripped_stays_tripped() {
        let t = CancelToken::for_budget(&Budget::with_max_states(1));
        assert!(!t.should_stop());
        assert!(t.should_stop());
        for _ in 0..100 {
            assert!(t.should_stop());
        }
        // The reason does not change after the first trip.
        assert_eq!(t.degraded_info().unwrap().reason, DegradeReason::StateLimit);
    }

    #[test]
    fn token_is_shareable_across_threads() {
        let t = CancelToken::for_budget(&Budget::with_max_states(1000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| while !t.should_stop() {});
            }
        });
        assert!(t.is_cancelled());
        assert_eq!(t.degraded_info().unwrap().reason, DegradeReason::StateLimit);
    }

    #[test]
    fn budget_constructors() {
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::with_deadline_ms(10).is_unlimited());
        assert!(!Budget::with_max_states(10).is_unlimited());
        assert_eq!(
            Budget::with_deadline_ms(10).deadline,
            Some(Duration::from_millis(10))
        );
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(DegradeReason::DeadlineExceeded.name(), "deadline_exceeded");
        assert_eq!(DegradeReason::StateLimit.name(), "state_limit");
        assert_eq!(DegradeReason::Cancelled.name(), "cancelled");
    }
}
