//! The unified error taxonomy for the CQP pipeline.
//!
//! [`CqpError`] folds the layer-specific errors — storage
//! ([`StorageError`]), engine ([`EngineError`]), and query construction
//! ([`ConstructError`]) — into one type the serving facade and batch driver
//! return, plus request-validation and internal-fault variants of their own.
//! The design goal is that a single bad request can never take down a batch:
//! every failure mode in the hot path maps to a variant here instead of a
//! `panic!`/`unwrap()`, and [`CqpError::is_transient`] tells the batch
//! driver's retry loop which failures are worth retrying (injected I/O
//! faults) versus permanent (schema errors, malformed requests).

use crate::construct::ConstructError;
use cqp_engine::EngineError;
use cqp_storage::StorageError;
use std::fmt;

/// Any error the CQP pipeline can surface.
#[derive(Debug)]
pub enum CqpError {
    /// Query construction failed.
    Construct(ConstructError),
    /// Query execution failed.
    Engine(EngineError),
    /// A storage operation failed outside the engine (e.g. loading data).
    Storage(StorageError),
    /// The request itself is malformed (caught before any search runs).
    InvalidRequest(String),
    /// The preference space is too large for the selected algorithm
    /// (exhaustive enumeration is capped at
    /// [`MAX_EXHAUSTIVE_K`](crate::algorithms::exhaustive::MAX_EXHAUSTIVE_K)).
    SpaceTooLarge {
        /// Preferences in the extracted space.
        k: usize,
        /// Algorithm's hard cap.
        max: usize,
    },
    /// A caught panic or other invariant violation; carries the panic
    /// payload's message when one was available.
    Internal(String),
    /// The circuit breaker guarding the dispatch path is open: the request
    /// was shed before any search work ran. Callers should back off for at
    /// least `retry_after_ms` before retrying.
    CircuitOpen {
        /// Suggested client back-off before the next attempt.
        retry_after_ms: u64,
    },
}

impl fmt::Display for CqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqpError::Construct(e) => write!(f, "construction failed: {e}"),
            CqpError::Engine(e) => write!(f, "execution failed: {e}"),
            CqpError::Storage(e) => write!(f, "storage failed: {e}"),
            CqpError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            CqpError::SpaceTooLarge { k, max } => {
                write!(f, "preference space too large: K={k} exceeds cap {max}")
            }
            CqpError::Internal(msg) => write!(f, "internal error: {msg}"),
            CqpError::CircuitOpen { retry_after_ms } => {
                write!(f, "circuit breaker open; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for CqpError {}

impl From<ConstructError> for CqpError {
    fn from(e: ConstructError) -> Self {
        CqpError::Construct(e)
    }
}

impl From<EngineError> for CqpError {
    fn from(e: EngineError) -> Self {
        CqpError::Engine(e)
    }
}

impl From<StorageError> for CqpError {
    fn from(e: StorageError) -> Self {
        CqpError::Storage(e)
    }
}

impl CqpError {
    /// Whether a retry of the failed request could plausibly succeed.
    /// Only injected I/O faults qualify; everything else is a property of
    /// the request or the catalog and will fail identically on retry.
    pub fn is_transient(&self) -> bool {
        match self {
            CqpError::Engine(EngineError::Storage(s)) => s.is_transient(),
            CqpError::Storage(s) => s.is_transient(),
            // Shed-by-breaker is transient by definition: the breaker
            // re-admits traffic once its cooldown elapses.
            CqpError::CircuitOpen { .. } => true,
            _ => false,
        }
    }

    /// Stable lowercase tag for counters and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            CqpError::Construct(_) => "construct",
            CqpError::Engine(_) => "engine",
            CqpError::Storage(_) => "storage",
            CqpError::InvalidRequest(_) => "invalid_request",
            CqpError::SpaceTooLarge { .. } => "space_too_large",
            CqpError::Internal(_) => "internal",
            CqpError::CircuitOpen { .. } => "circuit_open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_only_for_injected_io() {
        let t = CqpError::Engine(EngineError::Storage(StorageError::InjectedIo {
            read_index: 5,
        }));
        assert!(t.is_transient());
        let t = CqpError::Storage(StorageError::InjectedIo { read_index: 0 });
        assert!(t.is_transient());
        assert!(!CqpError::Engine(EngineError::EmptyFrom).is_transient());
        assert!(!CqpError::Construct(ConstructError::NoPreferencePaths).is_transient());
        assert!(!CqpError::InvalidRequest("x".into()).is_transient());
        assert!(!CqpError::SpaceTooLarge { k: 30, max: 25 }.is_transient());
        assert!(!CqpError::Internal("boom".into()).is_transient());
        assert!(CqpError::CircuitOpen {
            retry_after_ms: 100
        }
        .is_transient());
    }

    #[test]
    fn display_and_kind_cover_all_variants() {
        let cases: Vec<(CqpError, &str, &str)> = vec![
            (
                CqpError::Construct(ConstructError::PrefIndexOutOfRange(9)),
                "construct",
                "construction failed",
            ),
            (
                CqpError::Engine(EngineError::EmptyFrom),
                "engine",
                "execution failed",
            ),
            (
                CqpError::Storage(StorageError::UnknownRelation("X".into())),
                "storage",
                "storage failed",
            ),
            (
                CqpError::InvalidRequest("no profile".into()),
                "invalid_request",
                "invalid request",
            ),
            (
                CqpError::SpaceTooLarge { k: 30, max: 25 },
                "space_too_large",
                "too large",
            ),
            (
                CqpError::Internal("boom".into()),
                "internal",
                "internal error",
            ),
            (
                CqpError::CircuitOpen {
                    retry_after_ms: 250,
                },
                "circuit_open",
                "circuit breaker open",
            ),
        ];
        for (e, kind, needle) in cases {
            assert_eq!(e.kind(), kind);
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn from_impls_wrap_layer_errors() {
        let e: CqpError = ConstructError::NoPreferencePaths.into();
        assert!(matches!(e, CqpError::Construct(_)));
        let e: CqpError = EngineError::EmptyFrom.into();
        assert!(matches!(e, CqpError::Engine(_)));
        let e: CqpError = StorageError::RelationIdOutOfRange(3).into();
        assert!(matches!(e, CqpError::Storage(_)));
    }
}
