//! Instrumentation of the search algorithms.
//!
//! The paper's experiments compare algorithms on execution time (Figure 12),
//! **memory requirements** (Figure 13, "the maximum memory used by a CQP
//! algorithm during its execution"), and quality (Figure 14). Time is
//! measured by the harness; memory and work counters are collected here,
//! machine-independently.
//!
//! Hot loops mutate a plain [`Instrument`] (no dynamic dispatch); at phase
//! boundaries the accumulated counters are flushed to a
//! [`cqp_obs::Recorder`] via [`Instrument::flush_to`], so tracing costs
//! nothing when disabled.

use cqp_obs::Recorder;

/// Counters collected during one algorithm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Instrument {
    /// States popped from a work queue and examined.
    pub states_examined: u64,
    /// Parameter evaluations performed (cost/doi/size computations).
    pub param_evals: u64,
    /// Horizontal transitions taken.
    pub horizontal_moves: u64,
    /// Vertical transitions generated.
    pub vertical_moves: u64,
    /// Boundaries (or solution candidates) recorded by the first phase.
    pub boundaries_found: u64,
    /// Cost-cache hits (memoized state-cost lookups that were served).
    pub cache_hits: u64,
    /// Cost-cache misses (state costs actually evaluated).
    pub cache_misses: u64,
    /// Cost-cache evictions (entries dropped by a bounded cache).
    pub cache_evictions: u64,
    /// Peak tracked memory in bytes (queues + boundary lists + visited set),
    /// the quantity Figure 13 reports in KBytes.
    pub peak_bytes: usize,
}

impl Instrument {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Instrument::default()
    }

    /// Records a current-memory observation, keeping the peak.
    pub fn observe_bytes(&mut self, current: usize) {
        if current > self.peak_bytes {
            self.peak_bytes = current;
        }
    }

    /// Peak memory in KBytes (the unit of paper Figure 13).
    pub fn peak_kbytes(&self) -> f64 {
        self.peak_bytes as f64 / 1024.0
    }

    /// Folds a [`crate::cost_cache::CostCache`]'s statistics into these
    /// counters — called once per phase, after the cache is retired.
    pub fn absorb_cache(&mut self, cache: &crate::cost_cache::CostCache) {
        self.cache_hits += cache.hits();
        self.cache_misses += cache.misses();
        self.cache_evictions += cache.evictions();
    }

    /// Accumulates another run's counters into this one (summing work,
    /// taking the max of peaks) — used when a solver runs phases separately.
    pub fn merge(&mut self, other: &Instrument) {
        self.states_examined += other.states_examined;
        self.param_evals += other.param_evals;
        self.horizontal_moves += other.horizontal_moves;
        self.vertical_moves += other.vertical_moves;
        self.boundaries_found += other.boundaries_found;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }

    /// Publishes the counters to a [`Recorder`] under the `solver.*`
    /// namespace. Work counters are monotonic adds; the memory peak goes to
    /// a histogram so its `max` is the overall peak across flushes.
    pub fn flush_to(&self, recorder: &dyn Recorder) {
        if !recorder.is_enabled() {
            return;
        }
        recorder.add("solver.states_examined", self.states_examined);
        recorder.add("solver.param_evals", self.param_evals);
        recorder.add("solver.horizontal_moves", self.horizontal_moves);
        recorder.add("solver.vertical_moves", self.vertical_moves);
        recorder.add("solver.boundaries_found", self.boundaries_found);
        recorder.add("solver.cache_hits", self.cache_hits);
        recorder.add("solver.cache_misses", self.cache_misses);
        recorder.add("solver.cache_evictions", self.cache_evictions);
        recorder.observe("solver.peak_bytes", self.peak_bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracking() {
        let mut i = Instrument::new();
        i.observe_bytes(100);
        i.observe_bytes(50);
        i.observe_bytes(2048);
        i.observe_bytes(1024);
        assert_eq!(i.peak_bytes, 2048);
        assert!((i.peak_kbytes() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_work_and_maxes_peak() {
        let mut a = Instrument {
            states_examined: 5,
            peak_bytes: 10,
            ..Default::default()
        };
        let b = Instrument {
            states_examined: 3,
            param_evals: 7,
            peak_bytes: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.states_examined, 8);
        assert_eq!(a.param_evals, 7);
        assert_eq!(a.peak_bytes, 10);
    }

    #[test]
    fn flush_publishes_solver_counters() {
        let obs = cqp_obs::Obs::new();
        let i = Instrument {
            states_examined: 4,
            cache_hits: 2,
            peak_bytes: 512,
            ..Default::default()
        };
        i.flush_to(&obs);
        let j = Instrument {
            peak_bytes: 256,
            ..Default::default()
        };
        j.flush_to(&obs);
        let reg = obs.registry();
        assert_eq!(reg.counter("solver.states_examined"), 4);
        assert_eq!(reg.counter("solver.cache_hits"), 2);
        let snap = obs.snapshot();
        let peak = &snap.histograms["solver.peak_bytes"];
        assert_eq!(peak.max, 512, "histogram max is the peak across flushes");
        assert_eq!(peak.count, 2);
    }
}
