//! Instrumentation of the search algorithms.
//!
//! The paper's experiments compare algorithms on execution time (Figure 12),
//! **memory requirements** (Figure 13, "the maximum memory used by a CQP
//! algorithm during its execution"), and quality (Figure 14). Time is
//! measured by the harness; memory and work counters are collected here,
//! machine-independently.

/// Counters collected during one algorithm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Instrument {
    /// States popped from a work queue and examined.
    pub states_examined: u64,
    /// Parameter evaluations performed (cost/doi/size computations).
    pub param_evals: u64,
    /// Horizontal transitions taken.
    pub horizontal_moves: u64,
    /// Vertical transitions generated.
    pub vertical_moves: u64,
    /// Boundaries (or solution candidates) recorded by the first phase.
    pub boundaries_found: u64,
    /// Peak tracked memory in bytes (queues + boundary lists + visited set),
    /// the quantity Figure 13 reports in KBytes.
    pub peak_bytes: usize,
}

impl Instrument {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Instrument::default()
    }

    /// Records a current-memory observation, keeping the peak.
    pub fn observe_bytes(&mut self, current: usize) {
        if current > self.peak_bytes {
            self.peak_bytes = current;
        }
    }

    /// Peak memory in KBytes (the unit of paper Figure 13).
    pub fn peak_kbytes(&self) -> f64 {
        self.peak_bytes as f64 / 1024.0
    }

    /// Accumulates another run's counters into this one (summing work,
    /// taking the max of peaks) — used when a solver runs phases separately.
    pub fn merge(&mut self, other: &Instrument) {
        self.states_examined += other.states_examined;
        self.param_evals += other.param_evals;
        self.horizontal_moves += other.horizontal_moves;
        self.vertical_moves += other.vertical_moves;
        self.boundaries_found += other.boundaries_found;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracking() {
        let mut i = Instrument::new();
        i.observe_bytes(100);
        i.observe_bytes(50);
        i.observe_bytes(2048);
        i.observe_bytes(1024);
        assert_eq!(i.peak_bytes, 2048);
        assert!((i.peak_kbytes() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_work_and_maxes_peak() {
        let mut a = Instrument {
            states_examined: 5,
            peak_bytes: 10,
            ..Default::default()
        };
        let b = Instrument {
            states_examined: 3,
            param_evals: 7,
            peak_bytes: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.states_examined, 8);
        assert_eq!(a.param_evals, 7);
        assert_eq!(a.peak_bytes, 10);
    }
}
