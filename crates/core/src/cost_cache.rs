//! Memoized state-cost evaluation.
//!
//! "Each time it computes the cost of a node that is slightly different
//! from a previous one. Since Formula (6) permits incremental cost
//! computation, cost(.) has been implemented in this way. Costs that may be
//! re-used are cached. This technique is used in all algorithms proposed."
//! (paper Section 5.2.1, discussion of `cost(Q, R, C, P)`).
//!
//! States are tiny index sets, so a straight sum is already `O(|R|)`; the
//! cache's value is avoiding the repeated re-derivation when the boundary
//! searches revisit neighborhoods. Its footprint is charged to the
//! Figure 13 memory accounting like every other structure the algorithms
//! keep.

use crate::spaces::SpaceView;
use crate::state::State;
use std::collections::HashMap;

/// A per-run memo of `state → cost` keyed by the state's bit key.
///
/// Unbounded by default (per-run caches die with the search); a capacity
/// can be set to bound the footprint, in which case a full cache drops an
/// arbitrary resident entry per insertion and counts the eviction.
#[derive(Debug)]
pub struct CostCache {
    map: HashMap<u128, u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for CostCache {
    fn default() -> Self {
        CostCache::new()
    }
}

impl CostCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        CostCache::with_capacity(usize::MAX)
    }

    /// Creates an empty cache holding at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        CostCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The cost of `s` in `view`, computed at most once per resident state.
    pub fn cost(&mut self, view: &SpaceView<'_>, s: &State) -> u64 {
        let key = s.bitkey();
        match self.map.get(&key) {
            Some(&c) => {
                self.hits += 1;
                c
            }
            None => {
                self.misses += 1;
                let c = view.state_cost(s);
                if self.map.len() >= self.capacity {
                    // Random-replacement: HashMap iteration order is as good
                    // a victim pick as any without an access-order list.
                    if let Some(&victim) = self.map.keys().next() {
                        self.map.remove(&victim);
                        self.evictions += 1;
                    }
                }
                self.map.insert(key, c);
                c
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (actual evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.map.len() * (std::mem::size_of::<u128>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_prefs::{ConjModel, Doi};
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn space() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.9),
                    cost_blocks: 10,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.5),
                    cost_blocks: 7,
                    size_factor: 0.5,
                },
            ],
            10.0,
            0,
        )
    }

    #[test]
    fn caches_repeated_evaluations() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let mut cache = CostCache::new();
        let st = State::from_indices(vec![0, 1]);
        let a = cache.cost(&view, &st);
        let b = cache.cost(&view, &st);
        assert_eq!(a, b);
        assert_eq!(a, view.state_cost(&st));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn distinct_states_evaluate_separately() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let mut cache = CostCache::new();
        cache.cost(&view, &State::singleton(0));
        cache.cost(&view, &State::singleton(1));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let mut cache = CostCache::with_capacity(1);
        let a = State::singleton(0);
        let b = State::singleton(1);
        cache.cost(&view, &a);
        cache.cost(&view, &b); // evicts a
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        // a was evicted: recomputing it is a miss (and evicts b).
        cache.cost(&view, &a);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.evictions(), 2);
        // Costs stay correct throughout.
        assert_eq!(cache.cost(&view, &a), view.state_cost(&a));
    }
}
