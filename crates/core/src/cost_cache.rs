//! Memoized state-cost evaluation.
//!
//! "Each time it computes the cost of a node that is slightly different
//! from a previous one. Since Formula (6) permits incremental cost
//! computation, cost(.) has been implemented in this way. Costs that may be
//! re-used are cached. This technique is used in all algorithms proposed."
//! (paper Section 5.2.1, discussion of `cost(Q, R, C, P)`).
//!
//! States are tiny index sets, so a straight sum is already `O(|R|)`; the
//! cache's value is avoiding the repeated re-derivation when the boundary
//! searches revisit neighborhoods. Its footprint is charged to the
//! Figure 13 memory accounting like every other structure the algorithms
//! keep.
//!
//! Two implementations share the key type ([`StateKey`]):
//!
//! * [`CostCache`] — the per-run, single-threaded memo with deterministic
//!   eviction ([`EvictionPolicy`]: FIFO by default, LRU for serving);
//! * [`SharedCostCache`] — the N-way sharded, `Mutex`-per-shard cache a
//!   batch personalization run shares across workers, so concurrent
//!   boundary searches over the *same* space reuse each other's cost
//!   evaluations.

use crate::spaces::SpaceView;
use crate::state::{State, StateKey};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Approximate per-entry heap footprint (key + value) in bytes.
const ENTRY_BYTES: usize = std::mem::size_of::<StateKey>() + std::mem::size_of::<u64>();

/// Which resident entry a full cache evicts.
///
/// Both policies are deterministic — a bounded run's hit/miss/eviction
/// trace is a pure function of the lookup sequence — so either choice
/// preserves the bit-for-bit reproducibility the batch tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the oldest *insertion*. Hits never reorder the ring, so the
    /// victim sequence depends only on the miss sequence. The historical
    /// default for offline batch runs.
    #[default]
    Fifo,
    /// Evict the least recently *used* entry: a hit moves the entry to the
    /// back of the ring. The right policy for long-lived serving caches,
    /// where hot spaces should stay resident across request streams.
    Lru,
}

impl EvictionPolicy {
    /// Stable lowercase tag for reports and config parsing.
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::Lru => "lru",
        }
    }
}

/// Moves `key` to the back of the recency ring (LRU touch). `O(n)` in
/// resident entries — acceptable because bounded caches are small by
/// construction and unbounded caches never call this.
fn touch<K: PartialEq + Copy>(order: &mut VecDeque<K>, key: K) {
    if order.back() == Some(&key) {
        return;
    }
    if let Some(pos) = order.iter().position(|k| *k == key) {
        order.remove(pos);
        order.push_back(key);
    }
}

/// A per-run memo of `state → cost` keyed by the state's bit key.
///
/// Unbounded by default (per-run caches die with the search); a capacity
/// can be set to bound the footprint, in which case a full cache evicts
/// per its [`EvictionPolicy`] (FIFO unless configured otherwise), so
/// bounded runs are bit-for-bit reproducible.
#[derive(Debug)]
pub struct CostCache {
    map: HashMap<StateKey, u64>,
    /// Eviction ring of resident keys; front = next victim. Insertion
    /// order under FIFO, recency order under LRU.
    order: VecDeque<StateKey>,
    capacity: usize,
    policy: EvictionPolicy,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for CostCache {
    fn default() -> Self {
        CostCache::new()
    }
}

impl CostCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        CostCache::with_capacity(usize::MAX)
    }

    /// Creates an empty cache holding at most `capacity` entries (FIFO).
    pub fn with_capacity(capacity: usize) -> Self {
        CostCache::with_capacity_policy(capacity, EvictionPolicy::Fifo)
    }

    /// Creates an empty cache holding at most `capacity` entries, evicting
    /// per `policy` when full.
    pub fn with_capacity_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        CostCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            policy,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The eviction policy this cache was built with.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The cost of `s` in `view`, computed at most once per resident state.
    pub fn cost(&mut self, view: &SpaceView<'_>, s: &State) -> u64 {
        let key = s.bitkey();
        match self.map.get(&key) {
            Some(&c) => {
                self.hits += 1;
                // Under LRU a hit refreshes recency; skip the O(n) touch
                // when the cache can never fill (unbounded caches never
                // evict, so the ring order is irrelevant).
                if self.policy == EvictionPolicy::Lru && self.capacity < usize::MAX {
                    touch(&mut self.order, key);
                }
                c
            }
            None => {
                self.misses += 1;
                let c = view.state_cost(s);
                if self.map.len() >= self.capacity {
                    // Evict the ring's front: oldest insertion under FIFO,
                    // least recently used under LRU. Deterministic either
                    // way, so a bounded run's trace is reproducible.
                    if let Some(victim) = self.order.pop_front() {
                        self.map.remove(&victim);
                        self.evictions += 1;
                    }
                }
                self.map.insert(key, c);
                self.order.push_back(key);
                c
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (actual evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate heap footprint in bytes (map entries + order ring).
    pub fn bytes(&self) -> usize {
        self.map.len() * ENTRY_BYTES + self.order.len() * std::mem::size_of::<StateKey>()
    }
}

/// A content fingerprint of the cost function a [`SpaceView`] induces.
///
/// Two views share cost-cache entries only when this matches: the cost of a
/// `State` depends on the base query cost, the order vector, and the mapped
/// per-preference costs — all hashed here (FNV-1a). Doi and size are *not*
/// hashed: the caches memoize cost only.
pub fn cost_fingerprint(view: &SpaceView<'_>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    };
    let space = view.eval().space();
    mix(view.k() as u64);
    mix(space.base_cost_blocks);
    for i in 0..view.k() {
        let p = view.pref_at(i as u16);
        mix(p as u64);
        mix(space.cost_blocks(p));
    }
    h
}

/// One shard: a bounded map keyed by `(cost fingerprint, state key)` with
/// a policy-ordered eviction ring.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<(u64, StateKey), u64>,
    order: VecDeque<(u64, StateKey)>,
}

/// An N-way sharded, `Mutex`-per-shard cost cache for concurrent solvers.
///
/// Keys are `(cost_fingerprint(view), state bitkey)`, so requests over the
/// same preference space share evaluations while different spaces never
/// collide. Shard choice hashes the full key; counters are atomics.
///
/// Sharing is *read-mostly*: a hit is one short lock on one shard; a miss
/// computes the cost outside any lock and then publishes it. Two workers
/// racing on the same miss may both compute it — costs are deterministic,
/// so the double insert is harmless (last write wins with an equal value).
#[derive(Debug)]
pub struct SharedCostCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    policy: EvictionPolicy,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count for [`SharedCostCache::new`].
pub const DEFAULT_SHARDS: usize = 16;

impl Default for SharedCostCache {
    fn default() -> Self {
        SharedCostCache::new(DEFAULT_SHARDS)
    }
}

impl SharedCostCache {
    /// An unbounded cache with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        SharedCostCache::with_capacity(shards, usize::MAX)
    }

    /// A cache with `shards` shards holding at most `total_capacity`
    /// entries overall (split evenly; FIFO eviction per shard).
    pub fn with_capacity(shards: usize, total_capacity: usize) -> Self {
        SharedCostCache::with_capacity_policy(shards, total_capacity, EvictionPolicy::Fifo)
    }

    /// [`SharedCostCache::with_capacity`] with an explicit per-shard
    /// eviction policy. The serving path uses LRU so hot preference spaces
    /// stay resident across a request stream.
    pub fn with_capacity_policy(
        shards: usize,
        total_capacity: usize,
        policy: EvictionPolicy,
    ) -> Self {
        let shards = shards.max(1);
        SharedCostCache {
            capacity_per_shard: (total_capacity / shards).max(1),
            policy,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The eviction policy applied per shard.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    fn shard_of(&self, key: &(u64, StateKey)) -> &Mutex<Shard> {
        let h = key.0 ^ key.1.digest();
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// The cost of `s` in `view`, shared across every worker holding this
    /// cache. `fingerprint` must be `cost_fingerprint(view)` (hoisted by
    /// the caller so the per-state path does not rehash the space).
    pub fn cost(&self, fingerprint: u64, view: &SpaceView<'_>, s: &State) -> u64 {
        let key = (fingerprint, s.bitkey());
        let shard = self.shard_of(&key);
        {
            let mut guard = shard.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(&c) = guard.map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.policy == EvictionPolicy::Lru && self.capacity_per_shard < usize::MAX {
                    touch(&mut guard.order, key);
                }
                return c;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compute outside the lock: evaluation is the expensive part.
        let c = view.state_cost(s);
        let mut guard = shard.lock().unwrap_or_else(|p| p.into_inner());
        if !guard.map.contains_key(&key) {
            if guard.map.len() >= self.capacity_per_shard {
                if let Some(victim) = guard.order.pop_front() {
                    guard.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            guard.map.insert(key, c);
            guard.order.push_back(key);
        }
        c
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache hits so far (all shards).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (all shards).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted so far (all shards).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A solver-side handle over either cache flavor, so the boundary search
/// is written once. `Local` owns a per-run [`CostCache`]; `Shared` borrows
/// a [`SharedCostCache`] plus the hoisted fingerprint.
#[derive(Debug)]
pub enum CacheHandle<'a> {
    /// A private per-run memo.
    Local(CostCache),
    /// A batch-wide shared memo (fingerprint, cache).
    Shared(u64, &'a SharedCostCache),
}

impl CacheHandle<'_> {
    /// A fresh private memo.
    pub fn local() -> Self {
        CacheHandle::Local(CostCache::new())
    }

    /// A handle onto `cache` for `view`'s cost function.
    pub fn shared<'a>(cache: &'a SharedCostCache, view: &SpaceView<'_>) -> CacheHandle<'a> {
        CacheHandle::Shared(cost_fingerprint(view), cache)
    }

    /// The (memoized) cost of `s` in `view`.
    pub fn cost(&mut self, view: &SpaceView<'_>, s: &State) -> u64 {
        match self {
            CacheHandle::Local(c) => c.cost(view, s),
            CacheHandle::Shared(fp, c) => c.cost(*fp, view, s),
        }
    }

    /// Bytes attributable to *this run* (shared residency is global, not
    /// charged to any single run's Figure 13 accounting).
    pub fn bytes(&self) -> usize {
        match self {
            CacheHandle::Local(c) => c.bytes(),
            CacheHandle::Shared(..) => 0,
        }
    }

    /// Folds hit/miss/eviction counts into `inst`. For a shared cache the
    /// global counters are not attributable per-run, so nothing is folded
    /// (the batch driver reports them separately).
    pub fn absorb_into(&self, inst: &mut crate::instrument::Instrument) {
        if let CacheHandle::Local(c) = self {
            inst.absorb_cache(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_prefs::{ConjModel, Doi};
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn space() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.9),
                    cost_blocks: 10,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.5),
                    cost_blocks: 7,
                    size_factor: 0.5,
                },
            ],
            10.0,
            0,
        )
    }

    fn wide_space(k: usize) -> PreferenceSpace {
        PreferenceSpace::synthetic(
            (0..k)
                .map(|i| PrefParams {
                    doi: Doi::new(0.9 - 0.8 * (i as f64) / (k as f64)),
                    cost_blocks: (k - i) as u64,
                    size_factor: 0.5,
                })
                .collect(),
            10.0,
            0,
        )
    }

    #[test]
    fn caches_repeated_evaluations() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let mut cache = CostCache::new();
        let st = State::from_indices(vec![0, 1]);
        let a = cache.cost(&view, &st);
        let b = cache.cost(&view, &st);
        assert_eq!(a, b);
        assert_eq!(a, view.state_cost(&st));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn distinct_states_evaluate_separately() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let mut cache = CostCache::new();
        cache.cost(&view, &State::singleton(0));
        cache.cost(&view, &State::singleton(1));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn bounded_cache_evicts_fifo_and_counts_exactly() {
        let s = wide_space(4);
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let mut cache = CostCache::with_capacity(2);
        let states: Vec<State> = (0..4u16).map(State::singleton).collect();

        cache.cost(&view, &states[0]); // resident: [0]
        cache.cost(&view, &states[1]); // resident: [0, 1]
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 2, 0));

        cache.cost(&view, &states[2]); // FIFO evicts 0 → [1, 2]
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 3, 1));
        assert_eq!(cache.len(), 2);

        // 1 and 2 are resident — hits, no eviction.
        cache.cost(&view, &states[1]);
        cache.cost(&view, &states[2]);
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 3, 1));

        // 0 was the FIFO victim — a miss, evicting 1 (oldest resident).
        cache.cost(&view, &states[0]);
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 4, 2));
        cache.cost(&view, &states[1]);
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 5, 3));

        // Costs stay correct throughout.
        for st in &states {
            assert_eq!(cache.cost(&view, st), view.state_cost(st));
        }
    }

    #[test]
    fn bounded_cache_evicts_lru_and_counts_exactly() {
        let s = wide_space(4);
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let mut cache = CostCache::with_capacity_policy(2, EvictionPolicy::Lru);
        assert_eq!(cache.policy(), EvictionPolicy::Lru);
        let states: Vec<State> = (0..4u16).map(State::singleton).collect();

        cache.cost(&view, &states[0]); // resident: [0]
        cache.cost(&view, &states[1]); // resident: [0, 1]
        cache.cost(&view, &states[0]); // hit — refreshes 0 → ring [1, 0]
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (1, 2, 0));

        // Under LRU the victim is 1 (least recently used), NOT 0 (oldest
        // inserted) — this is exactly where the two policies diverge.
        cache.cost(&view, &states[2]); // evicts 1 → [0, 2]
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (1, 3, 1));
        cache.cost(&view, &states[0]); // hit: 0 survived its FIFO slot
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 3, 1));
        cache.cost(&view, &states[1]); // miss: 1 was evicted; evicts 2
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 4, 2));
        assert_eq!(cache.len(), 2);

        // Costs stay correct throughout.
        for st in &states {
            assert_eq!(cache.cost(&view, st), view.state_cost(st));
        }
    }

    #[test]
    fn fifo_and_lru_policies_diverge_on_the_same_trace() {
        let s = wide_space(3);
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let trace: Vec<State> = [0u16, 1, 0, 2, 0]
            .iter()
            .map(|&i| State::singleton(i))
            .collect();
        let mut fifo = CostCache::with_capacity_policy(2, EvictionPolicy::Fifo);
        let mut lru = CostCache::with_capacity_policy(2, EvictionPolicy::Lru);
        for st in &trace {
            assert_eq!(fifo.cost(&view, st), lru.cost(&view, st));
        }
        // FIFO evicted 0 when 2 arrived → final lookup of 0 misses.
        assert_eq!((fifo.hits(), fifo.misses()), (1, 4));
        // LRU refreshed 0 on its hit → evicted 1 instead → final 0 hits.
        assert_eq!((lru.hits(), lru.misses()), (2, 3));
    }

    #[test]
    fn shared_cache_bounded_lru_keeps_hot_entries() {
        let s = wide_space(4);
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let fp = cost_fingerprint(&view);
        // One shard, two entries, LRU.
        let cache = SharedCostCache::with_capacity_policy(1, 2, EvictionPolicy::Lru);
        assert_eq!(cache.policy(), EvictionPolicy::Lru);
        let st: Vec<State> = (0..4u16).map(State::singleton).collect();
        cache.cost(fp, &view, &st[0]);
        cache.cost(fp, &view, &st[1]);
        cache.cost(fp, &view, &st[0]); // hit refreshes 0
        cache.cost(fp, &view, &st[2]); // evicts 1, not 0
        cache.cost(fp, &view, &st[0]); // still a hit
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 3, 1));
        cache.cost(fp, &view, &st[1]); // 1 was the LRU victim → miss
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_hits_across_callers_same_space_only() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let fp = cost_fingerprint(&view);
        let cache = SharedCostCache::new(4);
        let st = State::from_indices(vec![0, 1]);
        assert_eq!(cache.cost(fp, &view, &st), view.state_cost(&st));
        assert_eq!(cache.cost(fp, &view, &st), view.state_cost(&st));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // A different space: same state key, different fingerprint — no
        // cross-space pollution.
        let s2 = wide_space(2);
        let view2 = SpaceView::cost(&s2, ConjModel::NoisyOr);
        let fp2 = cost_fingerprint(&view2);
        assert_ne!(fp, fp2);
        assert_eq!(cache.cost(fp2, &view2, &st), view2.state_cost(&st));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_is_safe_and_correct_under_threads() {
        let s = wide_space(12);
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let fp = cost_fingerprint(&view);
        let cache = SharedCostCache::new(8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                let view = &view;
                scope.spawn(move || {
                    for round in 0..3 {
                        for i in 0..12u16 {
                            let st = State::from_indices(vec![i, (i + 1) % 12]);
                            assert_eq!(cache.cost(fp, view, &st), view.state_cost(&st), "{round}");
                        }
                    }
                });
            }
        });
        // 12 distinct states; every extra lookup is a hit.
        assert_eq!(cache.hits() + cache.misses(), 4 * 3 * 12);
        assert!(cache.len() <= 12);
        assert!(cache.misses() >= 12);
    }

    #[test]
    fn shared_cache_bounded_eviction_counts() {
        let s = wide_space(8);
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let fp = cost_fingerprint(&view);
        let cache = SharedCostCache::with_capacity(1, 2);
        for i in 0..8u16 {
            cache.cost(fp, &view, &State::singleton(i));
        }
        assert_eq!(cache.misses(), 8);
        assert_eq!(cache.evictions(), 6);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_handle_unifies_both_flavors() {
        let s = space();
        let view = SpaceView::cost(&s, ConjModel::NoisyOr);
        let shared = SharedCostCache::default();
        let st = State::singleton(0);
        let mut local = CacheHandle::local();
        let mut remote = CacheHandle::shared(&shared, &view);
        assert_eq!(local.cost(&view, &st), remote.cost(&view, &st));
        assert!(local.bytes() > 0);
        assert_eq!(remote.bytes(), 0);
        let mut inst = crate::instrument::Instrument::new();
        local.absorb_into(&mut inst);
        remote.absorb_into(&mut inst);
        assert_eq!(inst.cache_misses, 1);
    }
}
