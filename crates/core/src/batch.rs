//! Batch personalization: N concurrent requests over one shared database.
//!
//! The paper evaluates personalization per request; a deployed system
//! (Section 7's discussion of integration into a DBMS) faces *streams* of
//! requests from many users over the same database. [`BatchDriver`] serves
//! such a batch on a work-stealing pool ([`cqp_par::ThreadPool`]):
//!
//! * the [`Database`] and its [`DbStats`] are shared (`Arc`), analyzed
//!   once — not per request;
//! * each request runs the full pipeline (preference space → search →
//!   construction) on whichever worker claims it, under a per-worker
//!   tracer span so `\trace` output keeps one subtree per worker;
//! * cost evaluations of the boundary search flow through one
//!   [`SharedCostCache`] (sharded, `Mutex`-per-shard), so concurrent
//!   requests over the same preference space reuse each other's work — the
//!   batch-level generalization of the paper's Section 5.2.1 cost memo;
//! * per-request latencies land in a [`Histogram`], reported as
//!   p50/p95/p99 plus throughput in [`BatchStats`].
//!
//! Results are deterministic: the pool returns results in request order,
//! every algorithm is deterministic, and shared-cache hits return exactly
//! the cost a private evaluation would compute — so `threads = N` is
//! bit-identical to `threads = 1` (verified in `tests/parallel.rs`).

use crate::algorithms::{exhaustive, solve_p2_budgeted, Algorithm, Solution};
use crate::answer_cache::{AnswerCache, CachedAnswer, FamilyKey, Lookup, VariantKey};
use crate::budget::CancelToken;
use crate::construct::construct;
use crate::cost_cache::{EvictionPolicy, SharedCostCache};
use crate::error::CqpError;
use crate::problem::{ProblemKind, ProblemSpec};
use crate::solver::{CqpSystem, SolverConfig, SolverError};
use cqp_engine::{execute_personalized, ConjunctiveQuery};
use cqp_obs::metrics::Histogram;
use cqp_obs::record::span_guard;
use cqp_obs::{NoopRecorder, Recorder};
use cqp_par::ThreadPool;
use cqp_prefs::Profile;
use cqp_storage::{Database, DbStats, FaultPlan, IoMeter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry behavior for transient (injected I/O) execution failures.
///
/// The default retries nothing; `backoff` doubles per attempt
/// (`backoff << attempt`), so `backoff = 0` retries immediately —
/// deterministic and fast, the right setting for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional execution attempts after the first failure.
    pub max_retries: u32,
    /// Sleep before retry `i` is `backoff * 2^i`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Retry up to `max_retries` times with no backoff.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            backoff: Duration::ZERO,
        }
    }
}

/// One personalization request in a batch.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The user's base query.
    pub query: ConjunctiveQuery,
    /// The user's profile.
    pub profile: Profile,
    /// Which CQP problem to solve.
    pub problem: ProblemSpec,
    /// Per-request solver configuration (algorithm, conjunction model, …).
    pub config: SolverConfig,
}

/// The per-request output of a batch run.
#[derive(Debug, Clone)]
pub struct BatchItemResult {
    /// The search outcome.
    pub solution: Solution,
    /// The constructed personalized query `Q ∧ PU`.
    pub query: cqp_engine::PersonalizedQuery,
    /// The personalized query rendered as SQL.
    pub sql: String,
    /// `K` of the extracted preference space.
    pub space_k: usize,
    /// Dois of the selected preferences, in [`Solution::prefs`] order —
    /// what ranked execution (`execute_ranked`) scores rows against, kept
    /// here so callers need not re-extract the preference space.
    pub pref_dois: Vec<f64>,
    /// Wall-clock latency of this request, microseconds.
    pub latency_us: u64,
    /// Result rows when the driver executed the query
    /// ([`BatchDriver::with_execution`]); `None` when the batch stops at
    /// construction.
    pub exec_rows: Option<usize>,
    /// Execution attempts that failed transiently before this request
    /// succeeded (0 when execution is off or succeeded first try).
    pub exec_retries: u32,
}

/// Aggregate figures for one batch run.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Requests served.
    pub requests: usize,
    /// Pool width used.
    pub threads: usize,
    /// Wall-clock for the whole batch, seconds.
    pub wall_secs: f64,
    /// Requests per second of wall-clock.
    pub requests_per_sec: f64,
    /// Latency quantiles, microseconds (bucketed; ≤ 25 % relative error).
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Shared cost-cache hits across the batch.
    pub cache_hits: u64,
    /// Shared cost-cache misses (actual evaluations).
    pub cache_misses: u64,
    /// Tasks migrated between workers by stealing.
    pub steals: u64,
    /// Execution retries across the batch (transient failures that were
    /// retried under the [`RetryPolicy`]).
    pub retries: u64,
    /// Requests whose search hit its budget and returned a degraded
    /// incumbent.
    pub degraded: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Worker panics converted to [`CqpError::Internal`] results.
    pub panics_caught: u64,
}

/// Serves batches of personalization requests over one shared database.
#[derive(Debug)]
pub struct BatchDriver {
    db: Arc<Database>,
    stats: Arc<DbStats>,
    threads: usize,
    cache_shards: usize,
    /// `Some(ms_per_block)` executes each personalized query after
    /// construction, metering its I/O.
    execution_ms_per_block: Option<f64>,
    /// Fault injection applied to execution reads (shared across the batch
    /// so its schedule is global, like a flaky disk would be).
    fault_plan: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    /// Breaker guarding the `submit` path; `None` admits everything.
    /// Shared with the serving layer so `/metrics` and readiness can see
    /// the same state the driver sheds on.
    breaker: Option<Arc<crate::breaker::CircuitBreaker>>,
    /// The cache [`BatchDriver::submit`] routes cost evaluations through.
    /// Unlike `run`'s per-batch cache this one is *persistent*: a serving
    /// front-end submits requests one at a time over a long lifetime, and
    /// hot preference spaces should stay warm across them. LRU-bounded so
    /// the footprint cannot grow without bound.
    submit_cache: SharedCostCache,
    /// Panics caught (and converted to [`CqpError::Internal`]) on the
    /// `submit` path, across the driver's lifetime.
    submit_panics: AtomicU64,
    /// Transient-failure retries performed on the `submit` path.
    submit_retries: AtomicU64,
    /// Cross-request answer cache for `submit_cached`; `None` solves every
    /// request cold.
    answer_cache: Option<Arc<AnswerCache>>,
}

/// Cache identity of one `submit_cached` request: which template/profile
/// family it belongs to and at which profile version it must be answered.
/// The caller (the serving tier) owns canonicalization and versioning;
/// the driver trusts `profile_version` to change whenever `profile` does.
#[derive(Debug, Clone)]
pub struct CacheRequest {
    /// Hash of the canonicalized query template.
    pub template_hash: u64,
    /// Identity of the profile (the user id at the serving tier).
    pub profile_key: String,
    /// Version the profile was read at; answers cached under any other
    /// version are never served as exact/warm hits.
    pub profile_version: u64,
}

/// Which reuse tier served a `submit_cached` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Identical key: the stored answer was returned with zero search.
    Exact,
    /// Cached preference space reused; branch-and-bound seeded with a
    /// feasible cached bound where one existed.
    Warm,
    /// Profile version moved: the space was delta-repaired, then searched.
    Repair,
    /// Nothing cached; full pipeline (and the result was recorded).
    Miss,
    /// The answer cache is disabled (or execution is on); full pipeline.
    Off,
}

impl CacheTier {
    /// Wire/metrics label.
    pub fn name(self) -> &'static str {
        match self {
            CacheTier::Exact => "exact",
            CacheTier::Warm => "warm",
            CacheTier::Repair => "repair",
            CacheTier::Miss => "miss",
            CacheTier::Off => "off",
        }
    }
}

/// Default total capacity of the persistent `submit` cost cache.
pub const SUBMIT_CACHE_CAPACITY: usize = 64 * 1024;

impl BatchDriver {
    /// A driver over `db` with `threads` workers; analyzes the database
    /// once, up front.
    pub fn new(db: Arc<Database>, threads: usize) -> Self {
        let stats = Arc::new(db.analyze());
        BatchDriver::with_stats(db, stats, threads)
    }

    /// [`BatchDriver::new`] with precomputed statistics.
    pub fn with_stats(db: Arc<Database>, stats: Arc<DbStats>, threads: usize) -> Self {
        let shards = crate::cost_cache::DEFAULT_SHARDS;
        BatchDriver {
            db,
            stats,
            threads: threads.max(1),
            cache_shards: shards,
            execution_ms_per_block: None,
            fault_plan: None,
            retry: RetryPolicy::default(),
            breaker: None,
            submit_cache: SharedCostCache::with_capacity_policy(
                shards,
                SUBMIT_CACHE_CAPACITY,
                EvictionPolicy::Lru,
            ),
            submit_panics: AtomicU64::new(0),
            submit_retries: AtomicU64::new(0),
            answer_cache: None,
        }
    }

    /// Installs a cross-request answer cache on the `submit_cached` path.
    pub fn with_answer_cache(mut self, cache: Arc<AnswerCache>) -> Self {
        self.answer_cache = Some(cache);
        self
    }

    /// The installed answer cache, when one exists.
    pub fn answer_cache(&self) -> Option<&Arc<AnswerCache>> {
        self.answer_cache.as_ref()
    }

    /// Replaces the persistent `submit`-path cost cache with one of
    /// `capacity` total entries under `policy`.
    pub fn with_submit_cache(mut self, policy: EvictionPolicy, capacity: usize) -> Self {
        self.submit_cache =
            SharedCostCache::with_capacity_policy(self.cache_shards, capacity, policy);
        self
    }

    /// Execute each personalized query after construction, metering I/O at
    /// `ms_per_block` simulated milliseconds per block.
    pub fn with_execution(mut self, ms_per_block: f64) -> Self {
        self.execution_ms_per_block = Some(ms_per_block);
        self
    }

    /// Inject faults into execution reads according to `plan`. The plan is
    /// shared batch-wide: its read counter advances across all requests and
    /// workers, so the fault schedule is a property of the batch, not of
    /// any one request.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Retry transient execution failures under `policy`.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Guard the `submit` path with `breaker`: requests arriving while it
    /// is open are shed as [`CqpError::CircuitOpen`] before any search
    /// work, and every admitted request's outcome (transient failure vs.
    /// anything else) feeds the breaker's failure window. Composes with
    /// the retry policy — a request only counts as a failure after its
    /// retries are exhausted.
    pub fn with_breaker(mut self, breaker: Arc<crate::breaker::CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// The breaker guarding `submit`, when one is installed.
    pub fn breaker(&self) -> Option<&Arc<crate::breaker::CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// The worker count this driver fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serves every request, returning per-request results **in request
    /// order** plus aggregate throughput/latency figures.
    pub fn run(
        &self,
        requests: Vec<BatchRequest>,
    ) -> (Vec<Result<BatchItemResult, SolverError>>, BatchStats) {
        self.run_recorded(requests, &NoopRecorder)
    }

    /// [`BatchDriver::run`] with observability: each request's pipeline
    /// spans nest under its worker's span (`worker00`, `worker01`, …), and
    /// the batch totals are published as `batch.*` metrics — including the
    /// latency histogram `batch.latency_us` the run report renders
    /// quantiles from.
    pub fn run_recorded(
        &self,
        requests: Vec<BatchRequest>,
        recorder: &dyn Recorder,
    ) -> (Vec<Result<BatchItemResult, SolverError>>, BatchStats) {
        let n = requests.len();
        let pool = ThreadPool::new(self.threads);
        let cache = SharedCostCache::new(self.cache_shards);
        let db = &self.db;
        let stats = &self.stats;
        let retries = AtomicU64::new(0);
        let panics = AtomicU64::new(0);

        let t0 = Instant::now();
        let results = pool.run(requests, |ctx, _i, req| {
            let t = Instant::now();
            let _worker = span_guard(recorder, ctx.span_name);
            // A panicking request must not take the batch down: convert it
            // to an Internal error and keep serving. The pipeline holds no
            // locks or shared mutable state across the catch boundary (the
            // cost cache recovers poisoned shards itself), so resuming is
            // sound.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                serve_one(db, stats, &cache, &req, recorder, self, &retries)
            }))
            .unwrap_or_else(|payload| {
                panics.fetch_add(1, Ordering::Relaxed);
                recorder.add("batch.panics_caught", 1);
                Err(CqpError::Internal(panic_message(payload.as_ref())))
            });
            let latency_us = t.elapsed().as_micros() as u64;
            recorder.observe("batch.latency_us", latency_us);
            r.map(|mut item| {
                item.latency_us = latency_us;
                item
            })
        });
        let wall_secs = t0.elapsed().as_secs_f64();

        let mut latencies = Histogram::default();
        let mut degraded = 0u64;
        let mut errors = 0u64;
        for r in &results {
            match r {
                Ok(item) => {
                    latencies.observe(item.latency_us);
                    if item.solution.degraded.is_some() {
                        degraded += 1;
                    }
                }
                Err(_) => errors += 1,
            }
        }
        let stats = BatchStats {
            requests: n,
            threads: pool.threads(),
            wall_secs,
            requests_per_sec: if wall_secs > 0.0 {
                n as f64 / wall_secs
            } else {
                0.0
            },
            p50_us: latencies.quantile(0.50),
            p95_us: latencies.quantile(0.95),
            p99_us: latencies.quantile(0.99),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            steals: pool.steals(),
            retries: retries.load(Ordering::Relaxed),
            degraded,
            errors,
            panics_caught: panics.load(Ordering::Relaxed),
        };
        recorder.add("batch.requests", n as u64);
        recorder.add("batch.cache_hits", stats.cache_hits);
        recorder.add("batch.cache_misses", stats.cache_misses);
        recorder.add("batch.steals", stats.steals);
        recorder.add("batch.degraded", stats.degraded);
        recorder.add("batch.errors", stats.errors);
        recorder.set_gauge("batch.requests_per_sec", stats.requests_per_sec);
        (results, stats)
    }
}

impl BatchDriver {
    /// Serves a single request on the calling thread — the serving
    /// front-end's path. Reuses the whole-batch resilience machinery:
    /// the request's [`Budget`](crate::budget::Budget) (deadline /
    /// state cap) bounds the search, panics are caught and converted to
    /// [`CqpError::Internal`], and transient execution failures retry
    /// under the driver's [`RetryPolicy`]. Cost evaluations flow through
    /// the driver's *persistent* submit cache (LRU by default), so a
    /// stream of requests over hot preference spaces keeps reusing work.
    pub fn submit(&self, req: BatchRequest) -> Result<BatchItemResult, SolverError> {
        self.submit_recorded(req, &NoopRecorder)
    }

    /// [`BatchDriver::submit`] with observability: pipeline spans nest
    /// under the caller's current span and the request lands in the
    /// `batch.latency_us` histogram like batch-served requests do.
    pub fn submit_recorded(
        &self,
        req: BatchRequest,
        recorder: &dyn Recorder,
    ) -> Result<BatchItemResult, SolverError> {
        // The dispatch span covers breaker gating plus pipeline execution,
        // so a per-request trace can separate "time inside the driver" from
        // the serving tier's own queueing and session work.
        let _dispatch = span_guard(recorder, "dispatch");
        if let Some(breaker) = &self.breaker {
            if let Err(retry_after_ms) = breaker.try_acquire() {
                recorder.add("batch.breaker_shed", 1);
                if recorder.is_enabled() {
                    recorder.event(&format!(
                        "breaker open: shed before dispatch (retry after {retry_after_ms} ms)"
                    ));
                }
                return Err(CqpError::CircuitOpen { retry_after_ms });
            }
        }
        let t = Instant::now();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_one(
                &self.db,
                &self.stats,
                &self.submit_cache,
                &req,
                recorder,
                self,
                &self.submit_retries,
            )
        }))
        .unwrap_or_else(|payload| {
            self.submit_panics.fetch_add(1, Ordering::Relaxed);
            recorder.add("batch.panics_caught", 1);
            Err(CqpError::Internal(panic_message(payload.as_ref())))
        });
        let latency_us = t.elapsed().as_micros() as u64;
        recorder.observe("batch.latency_us", latency_us);
        if r.is_err() {
            recorder.add("batch.errors", 1);
        }
        if let Some(breaker) = &self.breaker {
            // Only transient faults indict downstream health; client
            // faults and successes both count as "healthy".
            let failed_transiently = matches!(&r, Err(e) if e.is_transient());
            breaker.record(!failed_transiently, recorder);
        }
        r.map(|mut item| {
            item.latency_us = latency_us;
            if let Some(d) = &item.solution.degraded {
                recorder.add("batch.degraded", 1);
                if recorder.is_enabled() {
                    recorder.event(&format!(
                        "degraded: {} after {} states in {:?}",
                        d.reason.name(),
                        d.states_visited,
                        d.elapsed
                    ));
                }
            }
            item
        })
    }

    /// [`BatchDriver::submit_recorded`] through the cross-request answer
    /// cache, returning which reuse tier served the request.
    ///
    /// * **exact** — the stored answer is returned before the breaker gate
    ///   (it touches neither the search machinery nor the database, which
    ///   is what the breaker protects) with zero pipeline work;
    /// * **warm** — the cached preference space skips extraction, and a
    ///   cached solution still feasible under the new constraints bounds
    ///   the branch-and-bound search (strictly — the answer cannot change);
    /// * **repair** — the profile version moved: the space is delta-repaired
    ///   (cost/size estimates reused, rank vectors merged) and searched
    ///   fresh;
    /// * **miss** — full cold pipeline; the result seeds the cache.
    ///
    /// Falls back to the plain path (tier `off`) when no cache is installed
    /// or when execution is enabled — cached answers stop at construction,
    /// so a driver that must execute queries cannot serve them.
    pub fn submit_cached_recorded(
        &self,
        req: BatchRequest,
        cache_req: &CacheRequest,
        recorder: &dyn Recorder,
    ) -> Result<(BatchItemResult, CacheTier), SolverError> {
        let cache = match &self.answer_cache {
            Some(cache) if self.execution_ms_per_block.is_none() => Arc::clone(cache),
            _ => {
                return self
                    .submit_recorded(req, recorder)
                    .map(|item| (item, CacheTier::Off));
            }
        };
        let _dispatch = span_guard(recorder, "dispatch");
        let key = FamilyKey::new(cache_req.template_hash, &cache_req.profile_key, &req.config);
        let variant = VariantKey::of(&req.problem);
        let t = Instant::now();
        let lookup = cache.lookup(&key, cache_req.profile_version, &variant, &req.problem);
        if recorder.is_enabled() {
            recorder.event(&format!("answer cache: {}", lookup.tier()));
        }
        if let Lookup::Exact(hit) = lookup {
            let latency_us = t.elapsed().as_micros() as u64;
            recorder.observe("batch.latency_us", latency_us);
            return Ok((
                BatchItemResult {
                    solution: hit.solution,
                    query: hit.query,
                    sql: hit.sql,
                    space_k: hit.space_k,
                    pref_dois: hit.pref_dois,
                    latency_us,
                    exec_rows: None,
                    exec_retries: 0,
                },
                CacheTier::Exact,
            ));
        }
        let tier = match &lookup {
            Lookup::Warm { .. } => CacheTier::Warm,
            Lookup::Repair { .. } => CacheTier::Repair,
            _ => CacheTier::Miss,
        };
        if let Some(breaker) = &self.breaker {
            if let Err(retry_after_ms) = breaker.try_acquire() {
                recorder.add("batch.breaker_shed", 1);
                if recorder.is_enabled() {
                    recorder.event(&format!(
                        "breaker open: shed before dispatch (retry after {retry_after_ms} ms)"
                    ));
                }
                return Err(CqpError::CircuitOpen { retry_after_ms });
            }
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = span_guard(recorder, "personalize");
            let system = CqpSystem::from_parts(&self.db, (*self.stats).clone());
            let (space, seed) = match lookup {
                Lookup::Warm { space, seed } => (space, seed),
                Lookup::Repair { space, .. } => {
                    let _s = span_guard(recorder, "prefspace");
                    let delta = system.preference_space_delta(
                        &req.query,
                        &req.profile,
                        &req.config,
                        &space,
                    );
                    if recorder.is_enabled() {
                        recorder.event(&format!(
                            "delta repair: {} params reused, {} estimated, +{} -{} prefs",
                            delta.params_reused,
                            delta.params_estimated,
                            delta.prefs_added,
                            delta.prefs_removed
                        ));
                    }
                    (delta.space, None)
                }
                _ => {
                    let _s = span_guard(recorder, "prefspace");
                    (
                        system.preference_space(&req.query, &req.profile, &req.config),
                        None,
                    )
                }
            };
            let item = finish_on_space(
                &self.db,
                &self.submit_cache,
                &req,
                recorder,
                self,
                &self.submit_retries,
                &system,
                &space,
                seed,
            )?;
            // Seed the cache (degraded solutions are rejected inside).
            cache.insert(
                &key,
                cache_req.profile_version,
                variant,
                &space,
                CachedAnswer {
                    solution: item.solution.clone(),
                    query: item.query.clone(),
                    sql: item.sql.clone(),
                    pref_dois: item.pref_dois.clone(),
                    space_k: item.space_k,
                },
            );
            Ok(item)
        }))
        .unwrap_or_else(|payload| {
            self.submit_panics.fetch_add(1, Ordering::Relaxed);
            recorder.add("batch.panics_caught", 1);
            Err(CqpError::Internal(panic_message(payload.as_ref())))
        });
        let latency_us = t.elapsed().as_micros() as u64;
        recorder.observe("batch.latency_us", latency_us);
        if r.is_err() {
            recorder.add("batch.errors", 1);
        }
        if let Some(breaker) = &self.breaker {
            let failed_transiently = matches!(&r, Err(e) if e.is_transient());
            breaker.record(!failed_transiently, recorder);
        }
        r.map(|mut item| {
            item.latency_us = latency_us;
            if let Some(d) = &item.solution.degraded {
                recorder.add("batch.degraded", 1);
                if recorder.is_enabled() {
                    recorder.event(&format!(
                        "degraded: {} after {} states in {:?}",
                        d.reason.name(),
                        d.states_visited,
                        d.elapsed
                    ));
                }
            }
            (item, tier)
        })
    }

    /// Panics caught on the `submit` path over the driver's lifetime.
    pub fn submit_panics(&self) -> u64 {
        self.submit_panics.load(Ordering::Relaxed)
    }

    /// Transient-failure retries performed on the `submit` path.
    pub fn submit_retries(&self) -> u64 {
        self.submit_retries.load(Ordering::Relaxed)
    }

    /// Hit/miss/eviction totals of the persistent `submit` cache.
    pub fn submit_cache_counters(&self) -> (u64, u64, u64) {
        (
            self.submit_cache.hits(),
            self.submit_cache.misses(),
            self.submit_cache.evictions(),
        )
    }
}

/// Renders a panic payload into the human-readable part of
/// [`CqpError::Internal`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_owned()
    }
}

/// One request's pipeline: preference space → search (through the shared
/// cost cache where the algorithm supports it, under the request's budget)
/// → query construction → optional metered execution with
/// retry-on-transient-failure. The returned item's `latency_us` is 0; the
/// caller stamps it (latency includes the catch_unwind wrapper).
fn serve_one(
    db: &Database,
    stats: &DbStats,
    cache: &SharedCostCache,
    req: &BatchRequest,
    recorder: &dyn Recorder,
    driver: &BatchDriver,
    batch_retries: &AtomicU64,
) -> Result<BatchItemResult, SolverError> {
    let _span = span_guard(recorder, "personalize");
    let system = CqpSystem::from_parts(db, stats.clone());
    let space = {
        let _s = span_guard(recorder, "prefspace");
        system.preference_space(&req.query, &req.profile, &req.config)
    };
    finish_on_space(
        db,
        cache,
        req,
        recorder,
        driver,
        batch_retries,
        &system,
        &space,
        None,
    )
}

/// The pipeline tail shared by cold serving and the cache tiers: search
/// over an already-built preference space (optionally warm-started) →
/// construction → SQL → optional metered execution. `warm` is a strict
/// pruning bound — it can only shrink the branch-and-bound search, never
/// change its answer.
#[allow(clippy::too_many_arguments)]
fn finish_on_space(
    db: &Database,
    cache: &SharedCostCache,
    req: &BatchRequest,
    recorder: &dyn Recorder,
    driver: &BatchDriver,
    batch_retries: &AtomicU64,
    system: &CqpSystem<'_>,
    space: &cqp_prefspace::PreferenceSpace,
    warm: Option<crate::params::QueryParams>,
) -> Result<BatchItemResult, SolverError> {
    if req.config.algorithm == Algorithm::Exhaustive && space.k() > exhaustive::MAX_EXHAUSTIVE_K {
        return Err(CqpError::SpaceTooLarge {
            k: space.k(),
            max: exhaustive::MAX_EXHAUSTIVE_K,
        });
    }
    let solution = {
        let _s = span_guard(recorder, "search");
        // P2 through the cache-aware dispatcher: C-BOUNDARIES shares cost
        // evaluations batch-wide, everything else is unchanged. A P2-shaped
        // spec missing its cost bound takes the facade path like any other
        // problem.
        let cached_p2 = (req.problem.kind() == Some(ProblemKind::P2)
            && req.config.algorithm != Algorithm::BranchBound)
            .then_some(req.problem.constraints.cost_max_blocks)
            .flatten();
        match cached_p2 {
            Some(cmax) => {
                let token = CancelToken::for_budget(&req.config.budget);
                solve_p2_budgeted(
                    space,
                    req.config.conj,
                    cmax,
                    req.config.algorithm,
                    recorder,
                    Some(cache),
                    &token,
                )
            }
            None => system.search_warm_recorded(space, &req.problem, &req.config, warm, recorder),
        }
    };
    let pq = {
        let _s = span_guard(recorder, "construct");
        construct(&req.query, space, &solution.prefs)?
    };
    let sql = cqp_engine::sql::personalized_sql(db.catalog(), &pq);

    let mut exec_rows = None;
    let mut exec_retries = 0u32;
    if let Some(ms_per_block) = driver.execution_ms_per_block {
        let _s = span_guard(recorder, "execute");
        loop {
            let mut meter = IoMeter::new(ms_per_block);
            if let Some(plan) = &driver.fault_plan {
                meter = meter.with_fault_plan(Arc::clone(plan));
            }
            match execute_personalized(db, &pq, &meter) {
                Ok(out) => {
                    exec_rows = Some(out.len());
                    break;
                }
                Err(e) => {
                    let e = CqpError::from(e);
                    if e.is_transient() {
                        recorder.add(cqp_storage::FAULTS_INJECTED_COUNTER, 1);
                    }
                    if e.is_transient() && exec_retries < driver.retry.max_retries {
                        recorder.add("batch.retries", 1);
                        batch_retries.fetch_add(1, Ordering::Relaxed);
                        let backoff = driver.retry.backoff * 2u32.saturating_pow(exec_retries);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        exec_retries += 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }
    let pref_dois = solution
        .prefs
        .iter()
        .map(|&i| space.doi(i).value())
        .collect();
    let space_k = space.k();
    Ok(BatchItemResult {
        solution,
        query: pq,
        sql,
        space_k,
        pref_dois,
        latency_us: 0,
        exec_rows,
        exec_retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_engine::QueryBuilder;
    use cqp_storage::{DataType, RelationSchema, Value};

    fn movie_db() -> Database {
        let mut db = Database::with_block_capacity(4);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        for i in 0..40i64 {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(1980 + i % 20),
                    Value::Int(90),
                    Value::Int(i % 4),
                ],
            )
            .unwrap();
            db.insert_into(
                "GENRE",
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "musical" } else { "drama" }),
                ],
            )
            .unwrap();
        }
        for d in 0..4i64 {
            let name = if d == 0 {
                "W. Allen".to_owned()
            } else {
                format!("dir{d}")
            };
            db.insert_into("DIRECTOR", vec![Value::Int(d), Value::str(name)])
                .unwrap();
        }
        db
    }

    fn paper_requests(db: &Database, n: usize) -> Vec<BatchRequest> {
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        (0..n)
            .map(|i| BatchRequest {
                query: base.clone(),
                profile: profile.clone(),
                problem: ProblemSpec::p2(if i % 2 == 0 { 100 } else { 15 }),
                config: SolverConfig {
                    algorithm: Algorithm::PAPER[i % Algorithm::PAPER.len()],
                    ..Default::default()
                },
            })
            .collect()
    }

    #[test]
    fn batch_serves_requests_in_order_and_reports_stats() {
        let db = Arc::new(movie_db());
        let driver = BatchDriver::new(Arc::clone(&db), 2);
        let (results, stats) = driver.run(paper_requests(&db, 10));
        assert_eq!(results.len(), 10);
        assert_eq!(stats.requests, 10);
        assert!(stats.requests_per_sec > 0.0);
        assert!(stats.p50_us <= stats.p95_us && stats.p95_us <= stats.p99_us);
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert!(r.space_k >= 1, "request {i}");
            assert!(r.solution.cost_blocks <= if i % 2 == 0 { 100 } else { 15 });
        }
        // C-BOUNDARIES requests repeat the same space: the shared cache
        // must serve hits across requests.
        assert!(stats.cache_hits + stats.cache_misses > 0);
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_sequential() {
        let db = Arc::new(movie_db());
        let reqs = paper_requests(&db, 15);
        let seq = BatchDriver::new(Arc::clone(&db), 1).run(reqs.clone()).0;
        let par = BatchDriver::new(Arc::clone(&db), 4).run(reqs).0;
        for (s, p) in seq.iter().zip(&par) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.solution.prefs, p.solution.prefs);
            assert_eq!(s.solution.doi, p.solution.doi);
            assert_eq!(s.solution.cost_blocks, p.solution.cost_blocks);
            assert_eq!(s.solution.size_rows, p.solution.size_rows);
            assert_eq!(s.sql, p.sql);
        }
    }

    #[test]
    fn submit_matches_batch_run_bit_for_bit() {
        let db = Arc::new(movie_db());
        let reqs = paper_requests(&db, 6);
        let driver = BatchDriver::new(Arc::clone(&db), 2);
        let batch = BatchDriver::new(Arc::clone(&db), 1).run(reqs.clone()).0;
        for (req, expected) in reqs.into_iter().zip(batch) {
            let expected = expected.unwrap();
            let got = driver.submit(req).unwrap();
            assert_eq!(got.solution.prefs, expected.solution.prefs);
            assert_eq!(got.solution.doi, expected.solution.doi);
            assert_eq!(got.solution.cost_blocks, expected.solution.cost_blocks);
            assert_eq!(got.sql, expected.sql);
            assert_eq!(got.pref_dois, expected.pref_dois);
            assert_eq!(got.pref_dois.len(), got.solution.prefs.len());
        }
        // The persistent submit cache saw traffic; the repeated spaces of
        // the paper workload must produce hits across submits.
        let (hits, misses, _) = driver.submit_cache_counters();
        assert!(hits + misses > 0);
        assert_eq!(driver.submit_panics(), 0);
    }

    #[test]
    fn submit_respects_deadline_budget() {
        use crate::budget::Budget;
        let db = Arc::new(movie_db());
        let driver = BatchDriver::new(Arc::clone(&db), 1);
        let mut reqs = paper_requests(&db, 1);
        let mut req = reqs.remove(0);
        req.config.budget = Budget::with_deadline_ms(0);
        let item = driver.submit(req).unwrap();
        let degraded = item.solution.degraded.expect("0 ms deadline must degrade");
        assert_eq!(degraded.reason.name(), "deadline_exceeded");
        // The incumbent is still feasible for the request's constraint.
        assert!(item.solution.cost_blocks <= 100);
    }

    #[test]
    fn breaker_trips_on_transient_failures_and_sheds_submits() {
        use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
        use cqp_storage::{FaultMode, FaultPlan};
        let db = Arc::new(movie_db());
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 2,
            cooldown_ms: 60_000,
            half_open_probes: 1,
        }));
        // Every execution read fails and retries are off: each submit is a
        // transient failure that feeds the breaker.
        let driver = BatchDriver::new(Arc::clone(&db), 1)
            .with_execution(0.0)
            .with_fault_plan(Arc::new(FaultPlan::new(7, FaultMode::FirstK { k: 1_000 })))
            .with_breaker(Arc::clone(&breaker));
        let mut shed = 0;
        for req in paper_requests(&db, 6) {
            match driver.submit(req) {
                Err(CqpError::CircuitOpen { retry_after_ms }) => {
                    assert!(retry_after_ms > 0);
                    shed += 1;
                }
                Err(e) => assert!(e.is_transient(), "unexpected error: {e}"),
                Ok(_) => panic!("every execution read is faulted"),
            }
        }
        // Two transient failures trip the breaker; the remaining submits
        // are shed without touching the database.
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(shed, 4);
        assert_eq!(breaker.counters().0, 1);
    }

    #[test]
    fn submit_cached_walks_exact_warm_repair_tiers_bit_identically() {
        use crate::answer_cache::AnswerCache;
        let db = Arc::new(movie_db());
        let cold_driver = BatchDriver::new(Arc::clone(&db), 1);
        let driver =
            BatchDriver::new(Arc::clone(&db), 1).with_answer_cache(Arc::new(AnswerCache::new()));
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let req = |cmax: u64| BatchRequest {
            query: base.clone(),
            profile: profile.clone(),
            problem: ProblemSpec::p2(cmax),
            config: SolverConfig {
                algorithm: Algorithm::BranchBound,
                ..Default::default()
            },
        };
        let cache_req = |version: u64| CacheRequest {
            template_hash: 7,
            profile_key: "u1".into(),
            profile_version: version,
        };
        let assert_same = |a: &BatchItemResult, b: &BatchItemResult| {
            assert_eq!(a.solution.prefs, b.solution.prefs);
            assert_eq!(a.solution.doi, b.solution.doi);
            assert_eq!(a.solution.cost_blocks, b.solution.cost_blocks);
            assert_eq!(a.solution.size_rows, b.solution.size_rows);
            assert_eq!(a.sql, b.sql);
            assert_eq!(a.pref_dois, b.pref_dois);
        };

        // Cold → miss; identical key → exact, bit-identical to a cold solve.
        let (miss, t1) = driver
            .submit_cached_recorded(req(100), &cache_req(1), &NoopRecorder)
            .unwrap();
        assert_eq!(t1, CacheTier::Miss);
        let (exact, t2) = driver
            .submit_cached_recorded(req(100), &cache_req(1), &NoopRecorder)
            .unwrap();
        assert_eq!(t2, CacheTier::Exact);
        assert_same(&exact, &miss);
        let cold = cold_driver.submit(req(100)).unwrap();
        assert_same(&exact, &cold);

        // Moved budget, same version → warm; identical to a cold solve.
        let (warm, t3) = driver
            .submit_cached_recorded(req(15), &cache_req(1), &NoopRecorder)
            .unwrap();
        assert_eq!(t3, CacheTier::Warm);
        assert_same(&warm, &cold_driver.submit(req(15)).unwrap());

        // Version bump → repair; still identical to a cold solve.
        let (repair, t4) = driver
            .submit_cached_recorded(req(100), &cache_req(2), &NoopRecorder)
            .unwrap();
        assert_eq!(t4, CacheTier::Repair);
        assert_same(&repair, &cold);

        // And the repaired family now serves exact hits at the new version.
        let (_, t5) = driver
            .submit_cached_recorded(req(100), &cache_req(2), &NoopRecorder)
            .unwrap();
        assert_eq!(t5, CacheTier::Exact);

        let c = driver.answer_cache().unwrap().counters();
        assert_eq!(c.hits_exact, 2);
        assert_eq!(c.hits_warm, 1);
        assert_eq!(c.hits_repair, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn submit_cached_without_cache_reports_off_tier() {
        let db = Arc::new(movie_db());
        let driver = BatchDriver::new(Arc::clone(&db), 1);
        let mut reqs = paper_requests(&db, 1);
        let (item, tier) = driver
            .submit_cached_recorded(
                reqs.remove(0),
                &CacheRequest {
                    template_hash: 1,
                    profile_key: "u".into(),
                    profile_version: 1,
                },
                &NoopRecorder,
            )
            .unwrap();
        assert_eq!(tier, CacheTier::Off);
        assert!(item.space_k >= 1);
    }

    #[test]
    fn submit_cached_never_caches_degraded_answers() {
        use crate::answer_cache::AnswerCache;
        use crate::budget::Budget;
        let db = Arc::new(movie_db());
        let driver =
            BatchDriver::new(Arc::clone(&db), 1).with_answer_cache(Arc::new(AnswerCache::new()));
        let mut reqs = paper_requests(&db, 1);
        let mut req = reqs.remove(0);
        req.config.algorithm = Algorithm::BranchBound;
        req.config.budget = Budget::with_deadline_ms(0);
        let cache_req = CacheRequest {
            template_hash: 3,
            profile_key: "u".into(),
            profile_version: 1,
        };
        let (item, tier) = driver
            .submit_cached_recorded(req.clone(), &cache_req, &NoopRecorder)
            .unwrap();
        assert_eq!(tier, CacheTier::Miss);
        assert!(item.solution.degraded.is_some());
        assert_eq!(driver.answer_cache().unwrap().entries(), 0);
        // The degraded answer must not be served to the next request.
        req.config.budget = Budget::default();
        let (full, tier) = driver
            .submit_cached_recorded(req, &cache_req, &NoopRecorder)
            .unwrap();
        assert_eq!(tier, CacheTier::Miss);
        assert!(full.solution.degraded.is_none());
    }

    #[test]
    fn recorded_batch_publishes_metrics_and_worker_spans() {
        let db = Arc::new(movie_db());
        let obs = cqp_obs::Obs::new();
        let driver = BatchDriver::new(Arc::clone(&db), 2);
        let (results, _stats) = driver.run_recorded(paper_requests(&db, 6), &obs);
        assert!(results.iter().all(|r| r.is_ok()));
        let reg = obs.registry();
        assert_eq!(reg.counter("batch.requests"), 6);
        let h = reg.histogram("batch.latency_us").unwrap();
        assert_eq!(h.count(), 6);
        // Worker spans are roots; request pipelines nest under them.
        let spans = obs.with_tracer(|t| t.spans());
        assert!(spans
            .iter()
            .any(|s| s.path.starts_with("worker0") && s.path.contains("personalize")));
    }
}
