//! Personalized Query Construction (paper Section 4.2).
//!
//! "After 'CQP State Space Search' has selected the optimal subset of
//! preferences to be integrated into Q, this module does the actual
//! modification of the query": one sub-query per preference, combined with
//! `UNION ALL … GROUP BY … HAVING COUNT(*) = L`.

use cqp_engine::{ConjunctiveQuery, PersonalizedQuery};
use cqp_prefspace::PreferenceSpace;
use std::fmt;

/// Errors from query construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstructError {
    /// A selected P-index is out of range for the space.
    PrefIndexOutOfRange(usize),
    /// The preference space carries no preference paths (synthetic spaces
    /// built from raw parameters cannot be turned into SQL).
    NoPreferencePaths,
}

impl fmt::Display for ConstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructError::PrefIndexOutOfRange(i) => {
                write!(f, "preference index {i} out of range")
            }
            ConstructError::NoPreferencePaths => {
                write!(f, "preference space has no paths (synthetic space?)")
            }
        }
    }
}

impl std::error::Error for ConstructError {}

/// Builds the personalized query integrating the selected preferences
/// (P-indices) into the base query.
pub fn construct(
    base: &ConjunctiveQuery,
    space: &PreferenceSpace,
    prefs: &[usize],
) -> Result<PersonalizedQuery, ConstructError> {
    if !prefs.is_empty() && space.prefs.is_empty() {
        return Err(ConstructError::NoPreferencePaths);
    }
    let mut paths = Vec::with_capacity(prefs.len());
    for &i in prefs {
        let pref = space
            .prefs
            .get(i)
            .ok_or(ConstructError::PrefIndexOutOfRange(i))?;
        paths.push(pref.predicates());
    }
    Ok(PersonalizedQuery::compose(base.clone(), paths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_engine::QueryBuilder;
    use cqp_prefs::Profile;
    use cqp_prefspace::{extract, ExtractConfig};
    use cqp_storage::{DataType, Database, RelationSchema, Value};

    fn db() -> Database {
        let mut db = Database::with_block_capacity(4);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        for i in 0..20i64 {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(1990),
                    Value::Int(100),
                    Value::Int(i % 3),
                ],
            )
            .unwrap();
            db.insert_into("GENRE", vec![Value::Int(i), Value::str("musical")])
                .unwrap();
        }
        for d in 0..3i64 {
            db.insert_into("DIRECTOR", vec![Value::Int(d), Value::str("W. Allen")])
                .unwrap();
        }
        db
    }

    #[test]
    fn constructs_paper_rewriting() {
        let db = db();
        let stats = db.analyze();
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let ex = extract(&base, &profile, &stats, &ExtractConfig::default());
        assert_eq!(ex.space.k(), 2);

        let pq = construct(&base, &ex.space, &[0, 1]).unwrap();
        assert_eq!(pq.num_preferences(), 2);
        let sql = cqp_engine::sql::personalized_sql(db.catalog(), &pq);
        assert!(sql.contains("union all"));
        assert!(sql.contains("having count(*) = 2"));
        assert!(sql.contains("DIRECTOR.name = 'W. Allen'"));
        assert!(sql.contains("GENRE.genre = 'musical'"));
    }

    #[test]
    fn empty_selection_builds_trivial_query() {
        let db = db();
        let stats = db.analyze();
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let ex = extract(&base, &profile, &stats, &ExtractConfig::default());
        let pq = construct(&base, &ex.space, &[]).unwrap();
        assert!(pq.is_trivial());
    }

    #[test]
    fn errors_on_bad_index_and_synthetic_space() {
        let db = db();
        let stats = db.analyze();
        let base = QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build();
        let profile = Profile::paper_figure1(db.catalog()).unwrap();
        let ex = extract(&base, &profile, &stats, &ExtractConfig::default());
        assert_eq!(
            construct(&base, &ex.space, &[99]),
            Err(ConstructError::PrefIndexOutOfRange(99))
        );
        let synthetic = cqp_prefspace::PreferenceSpace::synthetic(
            vec![cqp_prefspace::PrefParams {
                doi: cqp_prefs::Doi::new(0.5),
                cost_blocks: 1,
                size_factor: 0.5,
            }],
            10.0,
            0,
        );
        assert_eq!(
            construct(&base, &synthetic, &[0]),
            Err(ConstructError::NoPreferencePaths)
        );
    }
}
