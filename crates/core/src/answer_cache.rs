//! Cross-request answer/incumbent cache — incremental personalization.
//!
//! Every `/personalize` request used to run the full pipeline (preference
//! space → search → construction) even though profiles change rarely and
//! the paper's transitions have *known* monotone effects on doi, cost, and
//! size (Formulas 4, 7, 8). A solved `(query template, profile version,
//! problem variant, constraint values)` instance therefore bounds nearby
//! instances, in the spirit of Chomicki's semantic optimization of
//! preference queries. This module caches solved instances and classifies
//! each lookup into one of three reuse tiers:
//!
//! * **exact** — identical key: the stored [`Solution`] (plus constructed
//!   query and SQL) is returned with zero search work, bit-identical to a
//!   cold solve because it *is* the cold solve's output;
//! * **warm** — same template/profile/config, different constraint values:
//!   the cached preference space is reused (extraction skipped) and, for
//!   branch-and-bound, a cached solution that is still feasible under the
//!   new constraints seeds a *strict pruning bound*
//!   ([`crate::algorithms::branch_bound::solve_bounded_warm`]). The answer
//!   never changes — only the states visited;
//! * **repair** — the profile version moved: the cached space is repaired
//!   incrementally (`cqp_prefspace::extract_delta` re-ranks the D/C/S
//!   vectors instead of rebuilding) and a fresh search runs on the repaired
//!   space.
//!
//! Staleness safety is structural: the profile version is part of the
//! lookup, so an entry recorded under version `v` can never satisfy an
//! exact or warm lookup at version `v' > v`. Session-store writes
//! additionally push invalidations ([`AnswerCache::invalidate_profile`])
//! so stale variants are dropped eagerly and the entries gauge stays
//! honest. Degraded (budget-tripped) solutions are never inserted — a
//! cache must only ever serve full-fidelity optima.

use crate::algorithms::{Algorithm, Solution};
use crate::params::QueryParams;
use crate::problem::{Objective, ProblemSpec};
use crate::solver::SolverConfig;
use cqp_prefspace::PreferenceSpace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shard count of the cache (FNV of the family key picks the shard).
pub const DEFAULT_SHARDS: usize = 16;

/// Default bound on cached families (template × profile × config keys).
pub const DEFAULT_FAMILY_CAPACITY: usize = 4096;

/// FNV-1a over `bytes`, continuing from `seed` (use [`FNV_OFFSET`] to
/// start a fresh hash). Chaining calls hashes the concatenation.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Separator between a profile key's base identity and an optional scope
/// qualifier. The serving tier keys families as `user` or
/// `user␁k<top_k>` — the personalization depth truncates the profile, so
/// it must be part of the family identity — while a session write for
/// `user` must drop *every* scope. [`AnswerCache::invalidate_profile`]
/// therefore matches on the base segment before this separator.
pub const PROFILE_SCOPE_SEP: char = '\u{1}';

/// The base identity of a (possibly scoped) profile key.
fn profile_base(profile_key: &str) -> &str {
    profile_key
        .split(PROFILE_SCOPE_SEP)
        .next()
        .unwrap_or(profile_key)
}

/// Everything that identifies a *family* of cacheable instances: one
/// canonicalized query template for one profile under one solver
/// configuration. Families share a preference space (extraction does not
/// depend on the problem's constraint values); the constraint values key
/// the variants *within* a family.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FamilyKey {
    /// Hash of the canonicalized SQL template (plus, at the serving tier,
    /// the parsed query as a semantic backstop).
    pub template_hash: u64,
    /// Identity of the profile (the user id at the serving tier).
    pub profile_key: String,
    /// The search algorithm — part of the key because it decides which
    /// rank vectors extraction builds.
    pub algorithm: Algorithm,
    /// Fingerprint of the rest of the solver configuration
    /// ([`config_fingerprint`]).
    pub config_hash: u64,
}

impl FamilyKey {
    /// Builds the family key for one request.
    pub fn new(template_hash: u64, profile_key: &str, config: &SolverConfig) -> Self {
        FamilyKey {
            template_hash,
            profile_key: profile_key.to_owned(),
            algorithm: config.algorithm,
            config_hash: config_fingerprint(config),
        }
    }

    fn shard_hash(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.template_hash.to_le_bytes());
        h = fnv1a(h, self.profile_key.as_bytes());
        fnv1a(h, &self.config_hash.to_le_bytes())
    }
}

/// Hashes the answer-relevant parts of a [`SolverConfig`]: the conjunction
/// model and the extraction parameters. Parallelism and budget are
/// deliberately excluded — neither changes the answer (partitioned search
/// is bit-identical to sequential, and budget-degraded answers are never
/// cached).
pub fn config_fingerprint(config: &SolverConfig) -> u64 {
    fnv1a(
        FNV_OFFSET,
        format!("{:?}|{:?}", config.conj, config.extract).as_bytes(),
    )
}

/// The constraint values of one problem variant, bit-exact. `u64::MAX`
/// marks an absent optional bound (no finite `f64` and no valid block
/// count collides with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VariantKey {
    objective: u8,
    cost_max_blocks: u64,
    doi_min_bits: u64,
    size_min_bits: u64,
    size_max_bits: u64,
}

impl VariantKey {
    /// The variant key of a problem spec.
    pub fn of(problem: &ProblemSpec) -> Self {
        let c = &problem.constraints;
        VariantKey {
            objective: match problem.objective {
                Objective::MaxDoi => 0,
                Objective::MinCost => 1,
            },
            cost_max_blocks: c.cost_max_blocks.unwrap_or(u64::MAX),
            doi_min_bits: c.doi_min.map_or(u64::MAX, |d| d.value().to_bits()),
            size_min_bits: c.size_min.to_bits(),
            size_max_bits: c.size_max.map_or(u64::MAX, f64::to_bits),
        }
    }

    fn objective(&self) -> Objective {
        if self.objective == 0 {
            Objective::MaxDoi
        } else {
            Objective::MinCost
        }
    }
}

/// One cached answer: everything `BatchItemResult` needs except latency.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The search outcome (never degraded — degraded solves are not
    /// inserted).
    pub solution: Solution,
    /// The constructed personalized query.
    pub query: cqp_engine::PersonalizedQuery,
    /// The personalized query rendered as SQL.
    pub sql: String,
    /// Dois of the selected preferences, in `solution.prefs` order.
    pub pref_dois: Vec<f64>,
    /// `K` of the preference space the solve ran on.
    pub space_k: usize,
}

#[derive(Debug)]
struct Family {
    version: u64,
    space: PreferenceSpace,
    variants: HashMap<VariantKey, CachedAnswer>,
    last_used: u64,
}

/// The outcome of a cache lookup, one per reuse tier.
#[derive(Debug)]
pub enum Lookup {
    /// Identical key: serve the stored answer, zero search work.
    Exact(CachedAnswer),
    /// Same family and version, new constraint values: reuse the space;
    /// `seed` (when present) is a cached solution proven feasible under
    /// the new constraints, usable as a branch-and-bound pruning bound.
    Warm {
        /// The cached preference space (extraction can be skipped).
        space: PreferenceSpace,
        /// Strongest feasible warm-start bound among cached variants.
        seed: Option<QueryParams>,
    },
    /// The profile moved past the cached version: repair the space
    /// incrementally, then search fresh.
    Repair {
        /// The preference space cached at the older profile version.
        space: PreferenceSpace,
        /// The version the cached space was built at.
        old_version: u64,
    },
    /// Nothing cached for this family.
    Miss,
}

impl Lookup {
    /// The wire/metrics label of this tier.
    pub fn tier(&self) -> &'static str {
        match self {
            Lookup::Exact(_) => "exact",
            Lookup::Warm { .. } => "warm",
            Lookup::Repair { .. } => "repair",
            Lookup::Miss => "miss",
        }
    }
}

/// Monotonic counter snapshot of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Exact-tier hits (stored answer served, zero search).
    pub hits_exact: u64,
    /// Warm-tier hits (space reused; branch-and-bound also seeded).
    pub hits_warm: u64,
    /// Repair-tier hits (space delta-repaired, fresh search).
    pub hits_repair: u64,
    /// Lookups that found nothing reusable.
    pub misses: u64,
    /// Variants dropped by session-write invalidation.
    pub invalidations: u64,
}

/// The sharded cross-request answer cache. See the module docs for the
/// tier semantics and the staleness argument.
#[derive(Debug)]
pub struct AnswerCache {
    shards: Vec<Mutex<HashMap<FamilyKey, Family>>>,
    families_per_shard: usize,
    touch: AtomicU64,
    hits_exact: AtomicU64,
    hits_warm: AtomicU64,
    hits_repair: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for AnswerCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AnswerCache {
    /// A cache bounded at [`DEFAULT_FAMILY_CAPACITY`] families.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FAMILY_CAPACITY)
    }

    /// A cache bounded at `family_capacity` families total (least-recently
    /// used families are evicted per shard once the bound is exceeded).
    pub fn with_capacity(family_capacity: usize) -> Self {
        let per_shard = family_capacity.div_ceil(DEFAULT_SHARDS).max(1);
        AnswerCache {
            shards: (0..DEFAULT_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            families_per_shard: per_shard,
            touch: AtomicU64::new(0),
            hits_exact: AtomicU64::new(0),
            hits_warm: AtomicU64::new(0),
            hits_repair: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &FamilyKey) -> &Mutex<HashMap<FamilyKey, Family>> {
        &self.shards[(key.shard_hash() as usize) % self.shards.len()]
    }

    /// Classifies one request against the cache and bumps the matching
    /// tier counter. `problem` supplies the new constraint values used to
    /// vet warm-start seeds for feasibility.
    pub fn lookup(
        &self,
        key: &FamilyKey,
        version: u64,
        variant: &VariantKey,
        problem: &ProblemSpec,
    ) -> Lookup {
        let stamp = self.touch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard(key).lock().unwrap_or_else(|p| p.into_inner());
        let outcome = match shard.get_mut(key) {
            Some(family) if family.version == version => {
                family.last_used = stamp;
                if let Some(hit) = family.variants.get(variant) {
                    Lookup::Exact(hit.clone())
                } else {
                    Lookup::Warm {
                        space: family.space.clone(),
                        seed: best_seed(family, variant, problem),
                    }
                }
            }
            Some(family) if family.version < version => {
                family.last_used = stamp;
                Lookup::Repair {
                    space: family.space.clone(),
                    old_version: family.version,
                }
            }
            // A *newer* family than the requested version means the caller
            // raced a concurrent write and read the store first; serving
            // from the newer entry would not match what it asked for.
            _ => Lookup::Miss,
        };
        drop(shard);
        match &outcome {
            Lookup::Exact(_) => self.hits_exact.fetch_add(1, Ordering::Relaxed),
            Lookup::Warm { .. } => self.hits_warm.fetch_add(1, Ordering::Relaxed),
            Lookup::Repair { .. } => self.hits_repair.fetch_add(1, Ordering::Relaxed),
            Lookup::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    /// Records a solved instance. Never inserts degraded solutions, never
    /// lets an older profile version clobber a newer family, and replaces
    /// the whole family (space included) when the version advances.
    pub fn insert(
        &self,
        key: &FamilyKey,
        version: u64,
        variant: VariantKey,
        space: &PreferenceSpace,
        answer: CachedAnswer,
    ) {
        if answer.solution.degraded.is_some() {
            return;
        }
        let stamp = self.touch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard(key).lock().unwrap_or_else(|p| p.into_inner());
        match shard.get_mut(key) {
            Some(family) if family.version > version => {}
            Some(family) if family.version == version => {
                family.variants.insert(variant, answer);
                family.last_used = stamp;
            }
            _ => {
                let mut variants = HashMap::new();
                variants.insert(variant, answer);
                shard.insert(
                    key.clone(),
                    Family {
                        version,
                        space: space.clone(),
                        variants,
                        last_used: stamp,
                    },
                );
                if shard.len() > self.families_per_shard {
                    if let Some(oldest) = shard
                        .iter()
                        .min_by_key(|(_, f)| f.last_used)
                        .map(|(k, _)| k.clone())
                    {
                        shard.remove(&oldest);
                    }
                }
            }
        }
    }

    /// Session-write invalidation: drops every variant cached for
    /// `profile_key` at a version older than `new_version`. Scoped keys
    /// (`base␁scope`, see [`PROFILE_SCOPE_SEP`]) match on their base, so
    /// one write drops every personalization depth of the profile. The
    /// spaces are kept so the next request can take the repair tier
    /// instead of a cold rebuild. Version keying already guarantees stale
    /// variants can never satisfy a lookup; this keeps memory and the
    /// entries gauge honest.
    pub fn invalidate_profile(&self, profile_key: &str, new_version: u64) {
        let base = profile_base(profile_key);
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            for (key, family) in shard.iter_mut() {
                if profile_base(&key.profile_key) == base && family.version < new_version {
                    dropped += family.variants.len() as u64;
                    family.variants.clear();
                }
            }
        }
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Snapshot of the tier counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits_exact: self.hits_exact.load(Ordering::Relaxed),
            hits_warm: self.hits_warm.load(Ordering::Relaxed),
            hits_repair: self.hits_repair.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Cached variants across all families (the entries gauge).
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .values()
                    .map(|f| f.variants.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Cached families (template × profile × config keys).
    pub fn families(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }
}

/// The strongest warm-start bound available for `problem`: among cached
/// variants with the same objective whose solutions are found, non-empty,
/// and *feasible under the new constraints*, the one the problem's own
/// `better` ordering prefers. Feasibility is what makes the strict prune
/// sound — an infeasible seed could bound the optimum from the wrong side.
fn best_seed(family: &Family, variant: &VariantKey, problem: &ProblemSpec) -> Option<QueryParams> {
    let mut best: Option<QueryParams> = None;
    for (vk, ans) in &family.variants {
        if vk.objective() != variant.objective() || !ans.solution.found {
            continue;
        }
        if ans.solution.prefs.is_empty() {
            continue;
        }
        let params = QueryParams {
            doi: ans.solution.doi,
            cost_blocks: ans.solution.cost_blocks,
            size_rows: ans.solution.size_rows,
        };
        if !problem.feasible(&params) {
            continue;
        }
        let replace = match &best {
            None => true,
            Some(b) => problem.better(&params, b),
        };
        if replace {
            best = Some(params);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::branch_bound;
    use cqp_prefs::{ConjModel, Doi};
    use cqp_prefspace::PrefParams;

    fn space() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.9),
                    cost_blocks: 120,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.8),
                    cost_blocks: 80,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.7),
                    cost_blocks: 60,
                    size_factor: 0.5,
                },
            ],
            1000.0,
            0,
        )
    }

    fn answer_for(problem: &ProblemSpec, sp: &PreferenceSpace) -> CachedAnswer {
        let solution = branch_bound::solve(sp, ConjModel::NoisyOr, problem);
        let base = cqp_engine::ConjunctiveQuery::scan(cqp_storage::RelationId(0), Vec::new());
        let pq = crate::construct::construct(&base, sp, &[]).expect("empty construction");
        CachedAnswer {
            pref_dois: solution.prefs.iter().map(|&i| sp.doi(i).value()).collect(),
            space_k: sp.k(),
            solution,
            query: pq,
            sql: "select 1".into(),
        }
    }

    fn key(config: &SolverConfig) -> FamilyKey {
        FamilyKey::new(42, "user1", config)
    }

    #[test]
    fn exact_warm_repair_miss_tiers() {
        let cache = AnswerCache::new();
        let sp = space();
        let config = SolverConfig {
            algorithm: Algorithm::BranchBound,
            ..Default::default()
        };
        let k = key(&config);
        let p_200 = ProblemSpec::p2(200);
        let v_200 = VariantKey::of(&p_200);

        // Cold cache: miss.
        assert!(matches!(cache.lookup(&k, 1, &v_200, &p_200), Lookup::Miss));
        cache.insert(&k, 1, v_200, &sp, answer_for(&p_200, &sp));
        assert_eq!(cache.entries(), 1);

        // Same key, same version: exact.
        match cache.lookup(&k, 1, &v_200, &p_200) {
            Lookup::Exact(hit) => assert!(hit.solution.cost_blocks <= 200),
            other => panic!("expected exact, got {other:?}"),
        }

        // Same version, moved budget: warm with a feasible seed (the
        // cached cost-200 answer fits the 260 budget).
        let p_260 = ProblemSpec::p2(260);
        match cache.lookup(&k, 1, &VariantKey::of(&p_260), &p_260) {
            Lookup::Warm { space, seed } => {
                assert_eq!(space.k(), sp.k());
                assert!(seed.expect("seed").cost_blocks <= 200);
            }
            other => panic!("expected warm, got {other:?}"),
        }

        // A tighter budget the cached answer busts: warm, but no seed.
        let p_50 = ProblemSpec::p2(50);
        match cache.lookup(&k, 1, &VariantKey::of(&p_50), &p_50) {
            Lookup::Warm { seed, .. } => assert!(seed.is_none()),
            other => panic!("expected warm, got {other:?}"),
        }

        // Version moved: repair, carrying the old space.
        match cache.lookup(&k, 2, &v_200, &p_200) {
            Lookup::Repair { old_version, .. } => assert_eq!(old_version, 1),
            other => panic!("expected repair, got {other:?}"),
        }

        let c = cache.counters();
        assert_eq!(c.hits_exact, 1);
        assert_eq!(c.hits_warm, 2);
        assert_eq!(c.hits_repair, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn invalidation_drops_variants_keeps_space_for_repair() {
        let cache = AnswerCache::new();
        let sp = space();
        let config = SolverConfig {
            algorithm: Algorithm::BranchBound,
            ..Default::default()
        };
        let k = key(&config);
        let p = ProblemSpec::p2(200);
        cache.insert(&k, 1, VariantKey::of(&p), &sp, answer_for(&p, &sp));
        assert_eq!(cache.entries(), 1);

        cache.invalidate_profile("user1", 2);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.counters().invalidations, 1);
        // The family survives at the old version so the next request can
        // take the repair tier.
        assert!(matches!(
            cache.lookup(&k, 2, &VariantKey::of(&p), &p),
            Lookup::Repair { .. }
        ));
        // Other profiles are untouched.
        cache.invalidate_profile("someone-else", 99);
        assert_eq!(cache.counters().invalidations, 1);
    }

    #[test]
    fn invalidation_matches_every_scope_of_a_profile() {
        let cache = AnswerCache::new();
        let sp = space();
        let config = SolverConfig {
            algorithm: Algorithm::BranchBound,
            ..Default::default()
        };
        let p = ProblemSpec::p2(200);
        let v = VariantKey::of(&p);
        // The same user cached at full depth and at top_k = 3.
        let full = FamilyKey::new(42, "user1", &config);
        let scoped = FamilyKey::new(42, &format!("user1{PROFILE_SCOPE_SEP}k3"), &config);
        cache.insert(&full, 1, v, &sp, answer_for(&p, &sp));
        cache.insert(&scoped, 1, v, &sp, answer_for(&p, &sp));
        assert_eq!(cache.entries(), 2);
        // A write to user1 drops both; "user10" is a different base.
        let other = FamilyKey::new(42, "user10", &config);
        cache.insert(&other, 1, v, &sp, answer_for(&p, &sp));
        cache.invalidate_profile("user1", 2);
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.counters().invalidations, 2);
    }

    #[test]
    fn newer_family_never_clobbered_and_stale_insert_ignored() {
        let cache = AnswerCache::new();
        let sp = space();
        let config = SolverConfig {
            algorithm: Algorithm::BranchBound,
            ..Default::default()
        };
        let k = key(&config);
        let p = ProblemSpec::p2(200);
        let v = VariantKey::of(&p);
        cache.insert(&k, 5, v, &sp, answer_for(&p, &sp));
        // A racing slow request finishing late at version 3 must not win.
        cache.insert(&k, 3, v, &sp, answer_for(&p, &sp));
        assert!(matches!(cache.lookup(&k, 5, &v, &p), Lookup::Exact(_)));
        // And a lookup at the stale version must not serve version 5's
        // answer as exact.
        assert!(matches!(cache.lookup(&k, 3, &v, &p), Lookup::Miss));
    }

    #[test]
    fn degraded_solutions_are_never_cached() {
        let cache = AnswerCache::new();
        let sp = space();
        let config = SolverConfig {
            algorithm: Algorithm::BranchBound,
            ..Default::default()
        };
        let k = key(&config);
        let p = ProblemSpec::p2(200);
        let mut ans = answer_for(&p, &sp);
        ans.solution.degraded = Some(crate::budget::DegradedInfo {
            reason: crate::budget::DegradeReason::DeadlineExceeded,
            states_visited: 1,
            elapsed: std::time::Duration::ZERO,
        });
        cache.insert(&k, 1, VariantKey::of(&p), &sp, ans);
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used_family() {
        let cache = AnswerCache::with_capacity(DEFAULT_SHARDS); // 1 per shard
        let sp = space();
        let config = SolverConfig {
            algorithm: Algorithm::BranchBound,
            ..Default::default()
        };
        let p = ProblemSpec::p2(200);
        let v = VariantKey::of(&p);
        // Far more families than capacity: the cache must stay bounded.
        for i in 0..200 {
            let k = FamilyKey::new(i, "user1", &config);
            cache.insert(&k, 1, v, &sp, answer_for(&p, &sp));
        }
        assert!(cache.families() <= DEFAULT_SHARDS);
    }

    #[test]
    fn variant_key_distinguishes_constraints_bit_exactly() {
        assert_ne!(
            VariantKey::of(&ProblemSpec::p2(200)),
            VariantKey::of(&ProblemSpec::p2(201))
        );
        assert_ne!(
            VariantKey::of(&ProblemSpec::p4(Doi::new(0.9))),
            VariantKey::of(&ProblemSpec::p4(Doi::new(0.90000000001)))
        );
        assert_eq!(
            VariantKey::of(&ProblemSpec::p2(200)),
            VariantKey::of(&ProblemSpec::p2(200))
        );
        // Different problems over the same bound stay distinct.
        assert_ne!(
            VariantKey::of(&ProblemSpec::p1(50.0, 600.0)),
            VariantKey::of(&ProblemSpec::p6(50.0, 600.0))
        );
    }
}
