//! Section 6 — adapting the state-space machinery to all Table 1 problems.
//!
//! "For all problems in Table 1, it is essentially the same kind of state
//! spaces that are available for search … The only adaptation that is
//! required in each case is making the appropriate choice of the direction
//! of Horizontal and Vertical transitions."
//!
//! Every constraint is monotone along the subset lattice, so it is either
//! **down-closed** (adding preferences can only break it: `cost ≤ cmax`,
//! `size ≥ smin`) or **up-closed** (adding preferences can only help:
//! `doi ≥ dmin`, `size ≤ smax`). The two search shapes are then:
//!
//! * **MaxDoi problems (1–3)** — boundary enumeration wrt the down-closed
//!   constraints (exactly `FINDBOUNDARY`, with the feasibility predicate
//!   swapped), followed by a refinement that replaces boundary members by
//!   *later* positions of the order vector — which preserves the
//!   down-closed constraints by construction — and a full-constraint check.
//! * **MinCost problems (4–6)** — the mirrored search: climb `Horizontal`
//!   until the up-closed constraints are first satisfied (minimal feasible
//!   nodes), then refine by replacing members with *earlier* positions —
//!   which preserves the up-closed constraints — minimizing cost.
//!
//! Both refinements are greedy transversals of nested (suffix/prefix)
//! families and hence optimal for their additive weight; when a refinement
//! breaks one of the *other* constraints, the unrefined candidate is kept —
//! this is where the composite problems (3 and 5) become heuristic, exactly
//! as the paper's description suggests ("the algorithm keeps track of the
//! solution with the currently maximum degree of interest that also
//! satisfies the cost constraint"). Problem 2 is exact (Theorem 2);
//! Problem 4's shape is validated against branch-and-bound in the tests.

use super::prune::Pruner;
use super::{c_boundaries, Solution};
use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::problem::{Constraints, Objective, ProblemKind, ProblemSpec};
use crate::spaces::SpaceView;
use crate::state::State;
use crate::transitions::{horizontal, vertical};
use cqp_prefs::ConjModel;
use cqp_prefspace::PreferenceSpace;
use std::collections::VecDeque;

/// Solves any Table 1 problem with the paper-style state-space machinery.
///
/// Problem 2 dispatches to the exact C-BOUNDARIES; the other problems use
/// the band/mirror searches described in the module docs. For a provably
/// exact answer on Problems 1, 3, 5, 6 use
/// [`super::branch_bound::solve`].
pub fn solve(space: &PreferenceSpace, conj: ConjModel, problem: &ProblemSpec) -> Solution {
    solve_bounded(space, conj, problem, &CancelToken::unlimited())
}

/// [`solve`] polling `token` in every search loop; on a trip the best
/// feasible candidate found so far is returned (the caller tags it
/// degraded).
pub fn solve_bounded(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    token: &CancelToken,
) -> Solution {
    // P2 dispatches to the exact C-BOUNDARIES when its cost bound is
    // present (always true for specs built via `ProblemSpec::p2`, but a
    // hand-rolled spec without one falls through to the band search
    // instead of panicking).
    if problem.kind() == Some(ProblemKind::P2) {
        if let Some(cmax) = problem.constraints.cost_max_blocks {
            return c_boundaries::solve_budgeted(
                space,
                conj,
                cmax,
                &cqp_obs::NoopRecorder,
                None,
                token,
            );
        }
    }
    match problem.objective {
        Objective::MaxDoi => max_doi_band(space, conj, problem, token),
        Objective::MinCost => min_cost_mirror(space, conj, problem, token),
    }
}

/// MaxDoi under a constraint band (Problems 1 and 3).
fn max_doi_band(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    token: &CancelToken,
) -> Solution {
    // Primary space: cost when a cost bound exists (P3), else size (P1).
    let view = if problem.constraints.cost_max_blocks.is_some() {
        SpaceView::cost(space, conj)
    } else {
        SpaceView::size(space, conj)
    };
    let eval = view.eval();
    let mut inst = Instrument::new();
    let boundaries = find_band_boundaries_bounded(&view, &problem.constraints, &mut inst, token);
    inst.boundaries_found = boundaries.len() as u64;

    let mut best: Option<(Vec<usize>, crate::params::QueryParams)> = None;
    for b in &boundaries {
        if token.should_stop() {
            break;
        }
        // Candidate 1: the boundary itself.
        // Candidate 2: suffix-refined for max doi (keeps down-closed).
        // Candidate 3: suffix-refined for min size (helps reach smax).
        let refined_doi = refine_suffix(&view, b, |p| eval.space().doi(p).value(), true);
        let refined_size = refine_suffix(&view, b, |p| eval.space().size_factor(p), false);
        for cand in [b.to_pref_indices(view.order()), refined_doi, refined_size] {
            let params = eval.params_of(&cand);
            inst.param_evals += 1;
            if !problem.feasible(&params) {
                continue;
            }
            let replace = match &best {
                None => true,
                Some((_, bp)) => problem.better(&params, bp),
            };
            if replace {
                best = Some((cand, params));
            }
        }
    }
    match best {
        Some((prefs, _)) => Solution::from_prefs(eval, prefs, inst),
        None => Solution {
            instrument: inst,
            ..Solution::empty(eval)
        },
    }
}

/// MinCost with up-closed requirements (Problems 4, 5, 6).
fn min_cost_mirror(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    token: &CancelToken,
) -> Solution {
    // Primary space: doi when a doi bound exists (P4/P5), else size (P6).
    let view = if problem.constraints.doi_min.is_some() {
        SpaceView::doi(space, conj)
    } else {
        SpaceView::size(space, conj)
    };
    let eval = view.eval();
    let mut inst = Instrument::new();
    let minimal = find_minimal_up_bounded(&view, &problem.constraints, &mut inst, token);
    inst.boundaries_found = minimal.len() as u64;

    let mut best: Option<(Vec<usize>, crate::params::QueryParams)> = None;
    for m in &minimal {
        if token.should_stop() {
            break;
        }
        let refined = refine_prefix(&view, m, |p| eval.space().cost_blocks(p) as f64, false);
        for cand in [m.to_pref_indices(view.order()), refined] {
            let params = eval.params_of(&cand);
            inst.param_evals += 1;
            if !problem.feasible(&params) {
                continue;
            }
            let replace = match &best {
                None => true,
                Some((_, bp)) => problem.better(&params, bp),
            };
            if replace {
                best = Some((cand, params));
            }
        }
    }
    match best {
        Some((prefs, _)) => Solution::from_prefs(eval, prefs, inst),
        None => Solution {
            instrument: inst,
            ..Solution::empty(eval)
        },
    }
}

/// `FINDBOUNDARY` generalized to an arbitrary down-closed predicate:
/// boundaries are the deepest states (per chain) whose down-closed
/// constraints still hold.
pub fn find_band_boundaries(
    view: &SpaceView<'_>,
    constraints: &Constraints,
    inst: &mut Instrument,
) -> Vec<State> {
    find_band_boundaries_bounded(view, constraints, inst, &CancelToken::unlimited())
}

/// [`find_band_boundaries`] polling `token` once per dequeued state; on a
/// trip the boundaries recorded so far are returned.
pub fn find_band_boundaries_bounded(
    view: &SpaceView<'_>,
    constraints: &Constraints,
    inst: &mut Instrument,
    token: &CancelToken,
) -> Vec<State> {
    let mut boundaries: Vec<State> = Vec::new();
    if view.k() == 0 {
        return boundaries;
    }
    let mut rq: VecDeque<State> = VecDeque::new();
    let mut pruner = Pruner::new();
    let start = State::singleton(0);
    pruner.mark_visited(&start);
    let mut rq_bytes = start.heap_bytes();
    rq.push_back(start);

    while let Some(r) = rq.pop_front() {
        if token.should_stop() {
            break;
        }
        rq_bytes -= r.heap_bytes();
        inst.states_examined += 1;
        let params = view.state_params(&r);
        inst.param_evals += 1;
        if constraints.down_closed_ok(&params) {
            pruner.add_boundary(&r);
            boundaries.push(r.clone());
            if let Some(h) = horizontal(view, &r) {
                inst.horizontal_moves += 1;
                if pruner.mark_visited(&h) {
                    rq_bytes += h.heap_bytes();
                    rq.push_back(h);
                }
            }
        } else {
            for n in vertical(view, &r) {
                inst.vertical_moves += 1;
                if !pruner.prune(&n) {
                    pruner.mark_visited(&n);
                    rq_bytes += n.heap_bytes();
                    rq.push_front(n);
                }
            }
        }
        inst.observe_bytes(rq_bytes + pruner.bytes());
    }
    boundaries
}

/// The mirrored first phase: per chain, climb `Horizontal` until the
/// up-closed constraints first hold; record those minimal feasible nodes
/// and branch through their Vertical neighbors.
pub fn find_minimal_up(
    view: &SpaceView<'_>,
    constraints: &Constraints,
    inst: &mut Instrument,
) -> Vec<State> {
    find_minimal_up_bounded(view, constraints, inst, &CancelToken::unlimited())
}

/// [`find_minimal_up`] polling `token` once per dequeued state; on a trip
/// the minimal feasible nodes recorded so far are returned.
pub fn find_minimal_up_bounded(
    view: &SpaceView<'_>,
    constraints: &Constraints,
    inst: &mut Instrument,
    token: &CancelToken,
) -> Vec<State> {
    let mut minimal: Vec<State> = Vec::new();
    if view.k() == 0 {
        return minimal;
    }
    let mut rq: VecDeque<State> = VecDeque::new();
    let mut pruner = Pruner::new();
    let start = State::singleton(0);
    pruner.mark_visited(&start);
    let mut rq_bytes = start.heap_bytes();
    rq.push_back(start);

    while let Some(mut r) = rq.pop_front() {
        if token.should_stop() {
            break;
        }
        rq_bytes -= r.heap_bytes();
        inst.states_examined += 1;
        // Climb until the up-closed constraints hold.
        let mut ok = {
            inst.param_evals += 1;
            constraints.up_closed_ok(&view.state_params(&r))
        };
        while !ok {
            match horizontal(view, &r) {
                Some(h) => {
                    inst.horizontal_moves += 1;
                    r = h;
                    inst.param_evals += 1;
                    ok = constraints.up_closed_ok(&view.state_params(&r));
                }
                None => break, // chain exhausted without satisfying
            }
        }
        if ok {
            minimal.push(r.clone());
            for n in vertical(view, &r) {
                inst.vertical_moves += 1;
                if !pruner.was_visited(&n) {
                    pruner.mark_visited(&n);
                    rq_bytes += n.heap_bytes();
                    rq.push_back(n);
                }
            }
        }
        inst.observe_bytes(rq_bytes + pruner.bytes());
    }
    minimal
}

/// Greedy transversal over the *suffix* family `{j ≥ slot}`: for each slot
/// (largest first) pick the unused P-index optimizing `key`. Replacing
/// members by later positions preserves the down-closed constraints of the
/// view's parameter (cost space: cheaper; size space: larger result).
pub fn refine_suffix(
    view: &SpaceView<'_>,
    r: &State,
    key: impl Fn(usize) -> f64,
    maximize: bool,
) -> Vec<usize> {
    let k_total = view.k();
    let mut used = vec![false; k_total];
    let mut out = Vec::with_capacity(r.len());
    for i in (0..r.len()).rev() {
        let slot = r.indices()[i] as usize;
        let mut best_p: Option<usize> = None;
        for j in slot..k_total {
            let p = view.pref_at(j as u16);
            if used[p] {
                continue;
            }
            let better = match best_p {
                None => true,
                Some(bp) => {
                    if maximize {
                        key(p) > key(bp)
                    } else {
                        key(p) < key(bp)
                    }
                }
            };
            if better {
                best_p = Some(p);
            }
        }
        let p = best_p.expect("suffix always has enough unused positions");
        used[p] = true;
        out.push(p);
    }
    out.sort_unstable();
    out
}

/// Greedy transversal over the *prefix* family `{j ≤ slot}`: for each slot
/// (smallest first) pick the unused P-index optimizing `key`. Replacing
/// members by earlier positions preserves the up-closed constraints of the
/// view's parameter (doi space: higher doi; size space: smaller result).
pub fn refine_prefix(
    view: &SpaceView<'_>,
    r: &State,
    key: impl Fn(usize) -> f64,
    maximize: bool,
) -> Vec<usize> {
    let mut used = vec![false; view.k()];
    let mut out = Vec::with_capacity(r.len());
    for i in 0..r.len() {
        let slot = r.indices()[i] as usize;
        let mut best_p: Option<usize> = None;
        for j in 0..=slot {
            let p = view.pref_at(j as u16);
            if used[p] {
                continue;
            }
            let better = match best_p {
                None => true,
                Some(bp) => {
                    if maximize {
                        key(p) > key(bp)
                    } else {
                        key(p) < key(bp)
                    }
                }
            };
            if better {
                best_p = Some(p);
            }
        }
        let p = best_p.expect("prefix always has enough unused positions");
        used[p] = true;
        out.push(p);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{branch_bound, exhaustive};
    use cqp_prefs::Doi;
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn space6() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.95),
                    cost_blocks: 50,
                    size_factor: 0.9,
                },
                PrefParams {
                    doi: Doi::new(0.8),
                    cost_blocks: 40,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.6),
                    cost_blocks: 30,
                    size_factor: 0.7,
                },
                PrefParams {
                    doi: Doi::new(0.55),
                    cost_blocks: 20,
                    size_factor: 0.3,
                },
                PrefParams {
                    doi: Doi::new(0.3),
                    cost_blocks: 10,
                    size_factor: 0.8,
                },
                PrefParams {
                    doi: Doi::new(0.2),
                    cost_blocks: 5,
                    size_factor: 0.6,
                },
            ],
            1000.0,
            0,
        )
    }

    #[test]
    fn p2_dispatches_to_exact() {
        let s = space6();
        let sol = solve(&s, ConjModel::NoisyOr, &ProblemSpec::p2(70));
        let oracle = exhaustive::solve_p2(&s, ConjModel::NoisyOr, 70);
        assert_eq!(sol.doi, oracle.doi);
    }

    #[test]
    fn p4_matches_branch_and_bound() {
        let s = space6();
        for dmin in [0.3, 0.5, 0.7, 0.9, 0.96, 0.99] {
            let p = ProblemSpec::p4(Doi::new(dmin));
            let sol = solve(&s, ConjModel::NoisyOr, &p);
            let oracle = branch_bound::solve(&s, ConjModel::NoisyOr, &p);
            assert_eq!(sol.found, oracle.found, "dmin={dmin}");
            if sol.found {
                assert!(sol.doi >= Doi::new(dmin), "dmin={dmin}");
                assert_eq!(sol.cost_blocks, oracle.cost_blocks, "dmin={dmin}");
            }
        }
    }

    #[test]
    fn p1_feasible_and_competitive() {
        let s = space6();
        for (smin, smax) in [(1.0, 500.0), (50.0, 300.0), (100.0, 900.0)] {
            let p = ProblemSpec::p1(smin, smax);
            let sol = solve(&s, ConjModel::NoisyOr, &p);
            let oracle = exhaustive::solve(&s, ConjModel::NoisyOr, &p);
            if sol.found {
                assert!(sol.size_rows >= smin && sol.size_rows <= smax);
                assert!(sol.doi <= oracle.doi);
            }
            if oracle.found {
                assert!(
                    sol.found,
                    "band search missed a feasible region ({smin},{smax})"
                );
            }
        }
    }

    #[test]
    fn p3_feasible_and_competitive() {
        let s = space6();
        let p = ProblemSpec::p3(100, 50.0, 600.0);
        let sol = solve(&s, ConjModel::NoisyOr, &p);
        let oracle = exhaustive::solve(&s, ConjModel::NoisyOr, &p);
        if sol.found {
            let params = sol.params();
            assert!(p.feasible(&params));
            assert!(sol.doi <= oracle.doi);
        }
        assert_eq!(sol.found, oracle.found);
    }

    #[test]
    fn p5_and_p6_feasible() {
        let s = space6();
        let p5 = ProblemSpec::p5(Doi::new(0.6), 50.0, 800.0);
        let sol5 = solve(&s, ConjModel::NoisyOr, &p5);
        if sol5.found {
            assert!(p5.feasible(&sol5.params()));
            let oracle = exhaustive::solve(&s, ConjModel::NoisyOr, &p5);
            assert!(sol5.cost_blocks >= oracle.cost_blocks);
        }
        let p6 = ProblemSpec::p6(50.0, 800.0);
        let sol6 = solve(&s, ConjModel::NoisyOr, &p6);
        if sol6.found {
            assert!(p6.feasible(&sol6.params()));
            let oracle = exhaustive::solve(&s, ConjModel::NoisyOr, &p6);
            assert!(sol6.cost_blocks >= oracle.cost_blocks);
        }
    }

    #[test]
    fn infeasible_band_returns_empty() {
        let s = space6();
        // Impossible: size must be both >= 900 and <= 10.
        let p = ProblemSpec::p1(900.0, 910.0);
        // With one pref the best size is 0.9*1000=900 — actually feasible!
        let sol = solve(&s, ConjModel::NoisyOr, &p);
        assert!(sol.found);
        assert!((sol.size_rows - 900.0).abs() < 1e-9);
        // Now a truly impossible band.
        let p = ProblemSpec::p1(990.0, 995.0);
        let sol = solve(&s, ConjModel::NoisyOr, &p);
        assert!(!sol.found);
    }
}
