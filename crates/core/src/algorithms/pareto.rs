//! Multi-objective CQP: the Pareto frontier over (doi, cost).
//!
//! The paper closes with: "we are interested in studying query
//! personalization as a multi-objective constrained optimization problem,
//! where more than one query parameter may be optimized simultaneously"
//! (Section 8). This module implements that extension: instead of fixing
//! one parameter as the objective and bounding the others, it enumerates
//! every **Pareto-optimal** preference subset — no other subset has both
//! higher doi and lower cost — optionally under a size band.
//!
//! The whole Table 1 family falls out of the frontier: Problem 2's answer
//! is the highest-doi frontier point with cost ≤ cmax; Problem 4's is the
//! cheapest point with doi ≥ dmin. Computing the frontier once therefore
//! answers every budget the search context might pose — useful when the
//! context (bandwidth, patience) is uncertain.
//!
//! The search is an exact branch-and-bound: a subtree is pruned when its
//! optimistic (doi upper bound, cost lower bound) pair is already dominated
//! by a frontier point.

use super::Solution;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use crate::problem::Constraints;
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;

/// One Pareto-optimal personalization.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Selected preferences (sorted P-indices).
    pub prefs: Vec<usize>,
    /// Degree of interest.
    pub doi: Doi,
    /// Cost in blocks.
    pub cost_blocks: u64,
    /// Estimated result size in rows.
    pub size_rows: f64,
}

impl ParetoPoint {
    /// True if `self` dominates `other`: at least as good on both axes and
    /// strictly better on one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        (self.doi >= other.doi && self.cost_blocks <= other.cost_blocks)
            && (self.doi > other.doi || self.cost_blocks < other.cost_blocks)
    }
}

/// Computes the exact Pareto frontier over (doi ↑, cost ↓) for all
/// non-empty preference subsets satisfying the (size-band part of the)
/// constraints. Returned sorted by increasing cost (hence increasing doi).
pub fn pareto_frontier(
    space: &PreferenceSpace,
    conj: ConjModel,
    constraints: &Constraints,
    inst: &mut Instrument,
) -> Vec<ParetoPoint> {
    let eval = ParamEval::new(space, conj);
    let k = space.k();
    let mut frontier: Vec<ParetoPoint> = Vec::new();
    if k == 0 {
        return frontier;
    }
    let mut chosen: Vec<usize> = Vec::new();
    recurse(
        &eval,
        constraints,
        0,
        0,
        Vec::new(),
        space.base_rows,
        &mut chosen,
        &mut frontier,
        inst,
    );
    frontier.sort_by(|a, b| {
        a.cost_blocks
            .cmp(&b.cost_blocks)
            .then_with(|| b.doi.cmp(&a.doi))
    });
    // A final sweep removes points dominated across equal-cost groups.
    let mut clean: Vec<ParetoPoint> = Vec::new();
    for p in frontier {
        if !clean
            .iter()
            .any(|q| q.dominates(&p) || (q.doi == p.doi && q.cost_blocks == p.cost_blocks))
        {
            clean.push(p);
        }
    }
    clean
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    eval: &ParamEval<'_>,
    constraints: &Constraints,
    i: usize,
    cost: u64,
    dois: Vec<Doi>,
    size: f64,
    chosen: &mut Vec<usize>,
    frontier: &mut Vec<ParetoPoint>,
    inst: &mut Instrument,
) {
    inst.states_examined += 1;
    let k = eval.k();
    if !chosen.is_empty() {
        let doi = eval.conj_model().conj(&dois);
        inst.param_evals += 1;
        let in_band = size >= constraints.size_min
            && constraints.size_max.is_none_or(|smax| size <= smax)
            && constraints.cost_max_blocks.is_none_or(|cmax| cost <= cmax)
            && constraints.doi_min.is_none_or(|dmin| doi >= dmin);
        if in_band {
            let point = ParetoPoint {
                prefs: chosen.clone(),
                doi,
                cost_blocks: cost,
                size_rows: size,
            };
            if !frontier.iter().any(|q| q.dominates(&point)) {
                frontier.retain(|q| !point.dominates(q));
                frontier.push(point);
            }
        }
    }
    if i >= k {
        return;
    }

    // Optimistic bound: cost can stay as-is (exclude everything), doi can
    // at best include every remaining preference.
    let doi_bound = {
        let mut all = dois.clone();
        all.extend((i..k).map(|j| eval.space().doi(j)));
        eval.conj_model().conj(&all)
    };
    if frontier
        .iter()
        .any(|q| q.cost_blocks <= cost && q.doi >= doi_bound)
    {
        // Everything this subtree can reach is dominated.
        return;
    }
    // Size feasibility: taking every remaining preference gives the
    // smallest reachable size; taking none the largest.
    if let Some(smax) = constraints.size_max {
        let min_size = (i..k).fold(size, |s, j| s * eval.space().size_factor(j));
        if min_size > smax {
            return;
        }
    }
    if size < constraints.size_min {
        return; // size only shrinks from here
    }
    if let Some(cmax) = constraints.cost_max_blocks {
        if cost > cmax {
            return;
        }
    }

    // Include i.
    chosen.push(i);
    let mut with = dois.clone();
    with.push(eval.space().doi(i));
    recurse(
        eval,
        constraints,
        i + 1,
        cost + eval.space().cost_blocks(i),
        with,
        size * eval.space().size_factor(i),
        chosen,
        frontier,
        inst,
    );
    chosen.pop();
    // Exclude i.
    recurse(
        eval,
        constraints,
        i + 1,
        cost,
        dois,
        size,
        chosen,
        frontier,
        inst,
    );
}

/// Reads a Table 1 answer off a precomputed frontier: the best point for
/// Problem 2 (`cost ≤ cmax`).
pub fn p2_from_frontier(frontier: &[ParetoPoint], cmax_blocks: u64) -> Option<&ParetoPoint> {
    frontier
        .iter()
        .filter(|p| p.cost_blocks <= cmax_blocks)
        .max_by(|a, b| {
            a.doi
                .cmp(&b.doi)
                .then_with(|| b.cost_blocks.cmp(&a.cost_blocks))
        })
}

/// Reads a Table 1 answer off a precomputed frontier: the best point for
/// Problem 4 (`doi ≥ dmin`).
pub fn p4_from_frontier(frontier: &[ParetoPoint], dmin: Doi) -> Option<&ParetoPoint> {
    frontier.iter().filter(|p| p.doi >= dmin).min_by(|a, b| {
        a.cost_blocks
            .cmp(&b.cost_blocks)
            .then_with(|| b.doi.cmp(&a.doi))
    })
}

/// Converts a frontier point into a [`Solution`].
pub fn to_solution(
    space: &PreferenceSpace,
    conj: ConjModel,
    point: &ParetoPoint,
    instrument: Instrument,
) -> Solution {
    let eval = ParamEval::new(space, conj);
    Solution::from_prefs(&eval, point.prefs.clone(), instrument)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use crate::problem::ProblemSpec;
    use cqp_prefspace::PrefParams;

    fn space() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.9),
                    cost_blocks: 50,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.7),
                    cost_blocks: 20,
                    size_factor: 0.6,
                },
                PrefParams {
                    doi: Doi::new(0.5),
                    cost_blocks: 10,
                    size_factor: 0.7,
                },
                PrefParams {
                    doi: Doi::new(0.3),
                    cost_blocks: 5,
                    size_factor: 0.8,
                },
            ],
            1000.0,
            0,
        )
    }

    #[test]
    fn frontier_is_mutually_nondominated_and_sorted() {
        let s = space();
        let mut inst = Instrument::new();
        let f = pareto_frontier(&s, ConjModel::NoisyOr, &Constraints::default(), &mut inst);
        assert!(!f.is_empty());
        for (i, a) in f.iter().enumerate() {
            for (j, b) in f.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "{a:?} dominates {b:?}");
                }
            }
        }
        for w in f.windows(2) {
            assert!(w[0].cost_blocks < w[1].cost_blocks);
            assert!(w[0].doi < w[1].doi);
        }
    }

    #[test]
    fn frontier_contains_every_p2_optimum() {
        let s = space();
        let mut inst = Instrument::new();
        let f = pareto_frontier(&s, ConjModel::NoisyOr, &Constraints::default(), &mut inst);
        for cmax in [5u64, 15, 30, 50, 85, 200] {
            let oracle = exhaustive::solve(
                &s,
                ConjModel::NoisyOr,
                &ProblemSpec {
                    objective: crate::problem::Objective::MaxDoi,
                    constraints: Constraints {
                        cost_max_blocks: Some(cmax),
                        ..Constraints::default()
                    },
                },
            );
            let from_frontier = p2_from_frontier(&f, cmax);
            match from_frontier {
                Some(p) => assert_eq!(p.doi, oracle.doi, "cmax={cmax}"),
                None => assert!(!oracle.found, "cmax={cmax}"),
            }
        }
    }

    #[test]
    fn frontier_contains_every_p4_optimum() {
        let s = space();
        let mut inst = Instrument::new();
        let f = pareto_frontier(&s, ConjModel::NoisyOr, &Constraints::default(), &mut inst);
        for dmin in [0.3, 0.5, 0.8, 0.95] {
            let dmin = Doi::new(dmin);
            let oracle = exhaustive::solve(&s, ConjModel::NoisyOr, &ProblemSpec::p4(dmin));
            match p4_from_frontier(&f, dmin) {
                Some(p) => {
                    assert_eq!(p.cost_blocks, oracle.cost_blocks, "dmin={dmin}")
                }
                None => assert!(!oracle.found, "dmin={dmin}"),
            }
        }
    }

    #[test]
    fn size_band_filters_frontier() {
        let s = space();
        let mut inst = Instrument::new();
        let band = Constraints {
            size_min: 100.0,
            size_max: Some(400.0),
            ..Default::default()
        };
        let f = pareto_frontier(&s, ConjModel::NoisyOr, &band, &mut inst);
        assert!(!f.is_empty());
        for p in &f {
            assert!(p.size_rows >= 100.0 && p.size_rows <= 400.0, "{p:?}");
        }
    }

    #[test]
    fn empty_space_yields_empty_frontier() {
        let s = PreferenceSpace::synthetic(vec![], 10.0, 0);
        let mut inst = Instrument::new();
        assert!(
            pareto_frontier(&s, ConjModel::NoisyOr, &Constraints::default(), &mut inst).is_empty()
        );
    }

    #[test]
    fn to_solution_roundtrip() {
        let s = space();
        let mut inst = Instrument::new();
        let f = pareto_frontier(&s, ConjModel::NoisyOr, &Constraints::default(), &mut inst);
        let sol = to_solution(&s, ConjModel::NoisyOr, &f[0], Instrument::default());
        assert_eq!(sol.prefs, f[0].prefs);
        assert_eq!(sol.doi, f[0].doi);
    }
}
