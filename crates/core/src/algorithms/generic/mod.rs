//! Generic search baselines (paper Section 2, Related Work).
//!
//! "Given the formulation of CQP as state-space optimization several
//! well-known algorithms are potentially applicable: genetic algorithms,
//! simulated annealing, tabu search, etc. These are generic approaches,
//! however, that do not take into account the problem's particularities or
//! special properties." These implementations exist to *quantify* that
//! claim in the ablation benchmarks: they treat a state as a plain bit
//! vector over `P` and learn nothing from the syntax-based partial orders.
//!
//! All three are deterministic given a seed, penalize constraint violations
//! (so they can traverse infeasible regions), and only ever *return*
//! feasible solutions.

pub mod annealing;
pub mod genetic;
pub mod tabu;

use crate::instrument::Instrument;
use crate::params::ParamEval;
use cqp_prefs::Doi;

/// A bit-vector state over `P` with cached parameters, shared by the
/// generic searchers.
#[derive(Debug, Clone)]
pub(crate) struct BitState {
    pub bits: Vec<bool>,
}

impl BitState {
    pub fn empty(k: usize) -> Self {
        BitState {
            bits: vec![false; k],
        }
    }

    pub fn prefs(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    pub fn flip(&mut self, i: usize) {
        self.bits[i] = !self.bits[i];
    }
}

/// Energy of a state for Problem 2: negative doi plus a steep penalty for
/// exceeding the cost budget (lower is better).
pub(crate) fn p2_energy(eval: &ParamEval<'_>, s: &BitState, cmax: u64) -> f64 {
    let prefs = s.prefs();
    if prefs.is_empty() {
        return 0.0; // doi 0, always feasible
    }
    let doi = eval.doi_of(prefs.iter().copied()).value();
    let cost = eval.cost_of(prefs.iter().copied());
    let penalty = if cost > cmax {
        // Proportional overshoot keeps the landscape informative.
        1.0 + (cost - cmax) as f64 / cmax.max(1) as f64
    } else {
        0.0
    };
    -doi + penalty
}

/// True when the state satisfies the Problem 2 constraint.
pub(crate) fn p2_feasible(eval: &ParamEval<'_>, s: &BitState, cmax: u64) -> bool {
    let prefs = s.prefs();
    prefs.is_empty() || eval.cost_of(prefs.iter().copied()) <= cmax
}

/// Tracks the best feasible state seen by a generic search.
#[derive(Debug, Clone)]
pub(crate) struct BestTracker {
    pub prefs: Vec<usize>,
    pub doi: Doi,
}

impl BestTracker {
    pub fn new() -> Self {
        BestTracker {
            prefs: Vec::new(),
            doi: Doi::ZERO,
        }
    }

    pub fn offer(&mut self, eval: &ParamEval<'_>, s: &BitState, cmax: u64, inst: &mut Instrument) {
        // The feasibility check is a cost evaluation in its own right.
        inst.param_evals += 1;
        if !p2_feasible(eval, s, cmax) {
            return;
        }
        let prefs = s.prefs();
        if prefs.is_empty() {
            return;
        }
        inst.param_evals += 1;
        let doi = eval.doi_of(prefs.iter().copied());
        if doi > self.doi {
            self.doi = doi;
            self.prefs = prefs;
        }
    }

    /// Heap footprint of the tracked best, for Figure 13 accounting.
    pub fn bytes(&self) -> usize {
        self.prefs.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_prefs::ConjModel;
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn space() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.8),
                    cost_blocks: 50,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.6),
                    cost_blocks: 30,
                    size_factor: 0.5,
                },
            ],
            100.0,
            0,
        )
    }

    #[test]
    fn energy_penalizes_violations() {
        let sp = space();
        let eval = ParamEval::new(&sp, ConjModel::NoisyOr);
        let mut s = BitState::empty(2);
        assert_eq!(p2_energy(&eval, &s, 40), 0.0);
        s.flip(1); // cost 30 <= 40
        assert!(p2_energy(&eval, &s, 40) < 0.0);
        s.flip(0); // cost 80 > 40
        assert!(p2_energy(&eval, &s, 40) > 0.0);
        assert!(!p2_feasible(&eval, &s, 40));
    }

    #[test]
    fn tracker_keeps_best_feasible_only() {
        let sp = space();
        let eval = ParamEval::new(&sp, ConjModel::NoisyOr);
        let mut t = BestTracker::new();
        let mut inst = Instrument::new();
        let mut s = BitState::empty(2);
        s.flip(0);
        t.offer(&eval, &s, 100, &mut inst);
        assert_eq!(t.prefs, vec![0]);
        s.flip(1); // cost 80 > 60: infeasible under cmax 60
        t.offer(&eval, &s, 60, &mut inst);
        assert_eq!(t.prefs, vec![0], "infeasible offers are ignored");
        t.offer(&eval, &s, 100, &mut inst);
        assert_eq!(t.prefs, vec![0, 1]);
        // Every offer costs a feasibility eval; feasible non-empty ones a
        // doi eval on top: 2 + 1 + 2.
        assert_eq!(inst.param_evals, 5);
        assert_eq!(t.bytes(), 2 * std::mem::size_of::<usize>());
    }
}
