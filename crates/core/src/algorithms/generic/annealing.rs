//! Simulated annealing baseline [Kirkpatrick et al., 1983].

use super::{p2_energy, BestTracker, BitState};
use crate::algorithms::Solution;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use cqp_prefs::ConjModel;
use cqp_prefspace::PreferenceSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingConfig {
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Total proposal steps.
    pub steps: usize,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            t0: 1.0,
            cooling: 0.995,
            steps: 4000,
        }
    }
}

/// Solves Problem 2 by simulated annealing with the default schedule.
pub fn solve_p2(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64, seed: u64) -> Solution {
    solve_p2_with(space, conj, cmax_blocks, seed, AnnealingConfig::default())
}

/// Solves Problem 2 by simulated annealing with an explicit schedule.
pub fn solve_p2_with(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    seed: u64,
    config: AnnealingConfig,
) -> Solution {
    let eval = ParamEval::new(space, conj);
    let k = space.k();
    let mut inst = Instrument::new();
    if k == 0 {
        return Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = BitState::empty(k);
    let mut energy = p2_energy(&eval, &state, cmax_blocks);
    let mut best = BestTracker::new();
    let mut temperature = config.t0;

    for _ in 0..config.steps {
        inst.states_examined += 1;
        let i = rng.gen_range(0..k);
        state.flip(i);
        let candidate = p2_energy(&eval, &state, cmax_blocks);
        inst.param_evals += 1;
        let accept = candidate <= energy || {
            let delta = candidate - energy;
            rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp()
        };
        if accept {
            energy = candidate;
            best.offer(&eval, &state, cmax_blocks, &mut inst);
        } else {
            state.flip(i); // revert
        }
        temperature *= config.cooling;
        // Current bit vector + tracked best.
        inst.observe_bytes(k + best.bytes());
    }

    if best.prefs.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        }
    } else {
        Solution::from_prefs(&eval, best.prefs, inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefs::Doi;
    use cqp_prefspace::PrefParams;

    fn fig6() -> PreferenceSpace {
        let costs = [120u64, 80, 60, 40, 30];
        let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
        PreferenceSpace::synthetic(
            (0..5)
                .map(|i| PrefParams {
                    doi: Doi::new(dois[i]),
                    cost_blocks: costs[i],
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    #[test]
    fn always_feasible_and_deterministic() {
        let space = fig6();
        let a = solve_p2(&space, ConjModel::NoisyOr, 185, 42);
        let b = solve_p2(&space, ConjModel::NoisyOr, 185, 42);
        assert_eq!(a.prefs, b.prefs);
        assert!(a.cost_blocks <= 185 || !a.found);
    }

    #[test]
    fn close_to_oracle_on_small_instance() {
        let space = fig6();
        let sa = solve_p2(&space, ConjModel::NoisyOr, 185, 7);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 185);
        assert!(sa.doi <= oracle.doi);
        // With 4000 steps on a 32-state feasible region, annealing should
        // land close to the optimum.
        assert!(oracle.doi.value() - sa.doi.value() < 0.1);
    }

    #[test]
    fn infeasible_budget_returns_empty() {
        let space = fig6();
        let sol = solve_p2(&space, ConjModel::NoisyOr, 5, 1);
        assert!(!sol.found);
    }
}
