//! Genetic algorithm baseline [Goldberg, 1989].

use super::{p2_energy, BestTracker, BitState};
use crate::algorithms::Solution;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use cqp_prefs::ConjModel;
use cqp_prefspace::PreferenceSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Genetic algorithm parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation: f64,
    /// Tournament size for selection.
    pub tournament: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 32,
            generations: 60,
            mutation: 0.05,
            tournament: 3,
        }
    }
}

/// Solves Problem 2 with a genetic algorithm and default parameters.
pub fn solve_p2(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64, seed: u64) -> Solution {
    solve_p2_with(space, conj, cmax_blocks, seed, GeneticConfig::default())
}

/// Solves Problem 2 with a genetic algorithm and explicit parameters.
pub fn solve_p2_with(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    seed: u64,
    config: GeneticConfig,
) -> Solution {
    let eval = ParamEval::new(space, conj);
    let k = space.k();
    let mut inst = Instrument::new();
    if k == 0 {
        return Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = BestTracker::new();

    // Initial population: sparse random subsets (dense ones are mostly
    // infeasible under tight budgets).
    let mut population: Vec<BitState> = (0..config.population)
        .map(|_| {
            let mut s = BitState::empty(k);
            for i in 0..k {
                if rng.gen::<f64>() < 0.25 {
                    s.flip(i);
                }
            }
            s
        })
        .collect();

    for _ in 0..config.generations {
        let fitness: Vec<f64> = population
            .iter()
            .map(|s| {
                inst.param_evals += 1;
                -p2_energy(&eval, s, cmax_blocks)
            })
            .collect();
        for s in &population {
            best.offer(&eval, s, cmax_blocks, &mut inst);
        }
        inst.states_examined += population.len() as u64;

        let mut next: Vec<BitState> = Vec::with_capacity(config.population);
        while next.len() < config.population {
            let a = tournament(&mut rng, &fitness, config.tournament);
            let b = tournament(&mut rng, &fitness, config.tournament);
            // Uniform crossover.
            let mut child = BitState::empty(k);
            for i in 0..k {
                let source = if rng.gen::<bool>() {
                    &population[a]
                } else {
                    &population[b]
                };
                child.bits[i] = source.bits[i];
                if rng.gen::<f64>() < config.mutation {
                    child.bits[i] = !child.bits[i];
                }
            }
            next.push(child);
        }
        // Peak: parents and offspring coexist until the swap below.
        inst.observe_bytes((population.len() + next.len()) * k + best.bytes());
        population = next;
    }
    for s in &population {
        best.offer(&eval, s, cmax_blocks, &mut inst);
    }

    if best.prefs.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        }
    } else {
        Solution::from_prefs(&eval, best.prefs, inst)
    }
}

/// Tournament selection: the fittest of `t` random picks.
fn tournament(rng: &mut StdRng, fitness: &[f64], t: usize) -> usize {
    let mut best = rng.gen_range(0..fitness.len());
    for _ in 1..t {
        let c = rng.gen_range(0..fitness.len());
        if fitness[c] > fitness[best] {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefs::Doi;
    use cqp_prefspace::PrefParams;

    fn fig6() -> PreferenceSpace {
        let costs = [120u64, 80, 60, 40, 30];
        let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
        PreferenceSpace::synthetic(
            (0..5)
                .map(|i| PrefParams {
                    doi: Doi::new(dois[i]),
                    cost_blocks: costs[i],
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    #[test]
    fn feasible_deterministic_and_competitive() {
        let space = fig6();
        let a = solve_p2(&space, ConjModel::NoisyOr, 185, 11);
        let b = solve_p2(&space, ConjModel::NoisyOr, 185, 11);
        assert_eq!(a.prefs, b.prefs);
        assert!(a.cost_blocks <= 185 || !a.found);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 185);
        assert!(a.doi <= oracle.doi);
        assert!(oracle.doi.value() - a.doi.value() < 0.1);
    }

    #[test]
    fn empty_space() {
        let space = PreferenceSpace::synthetic(vec![], 10.0, 0);
        assert!(!solve_p2(&space, ConjModel::NoisyOr, 10, 0).found);
    }
}
