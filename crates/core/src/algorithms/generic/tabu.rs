//! Tabu search baseline [Glover, 1989].

use super::{p2_energy, BestTracker, BitState};
use crate::algorithms::Solution;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use cqp_prefs::ConjModel;
use cqp_prefspace::PreferenceSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Tabu search parameters.
#[derive(Debug, Clone, Copy)]
pub struct TabuConfig {
    /// Length of the tabu list (recently flipped bits).
    pub tenure: usize,
    /// Total iterations.
    pub iterations: usize,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            tenure: 7,
            iterations: 600,
        }
    }
}

/// Solves Problem 2 by tabu search with the default parameters.
pub fn solve_p2(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64, seed: u64) -> Solution {
    solve_p2_with(space, conj, cmax_blocks, seed, TabuConfig::default())
}

/// Solves Problem 2 by tabu search with explicit parameters.
pub fn solve_p2_with(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    seed: u64,
    config: TabuConfig,
) -> Solution {
    let eval = ParamEval::new(space, conj);
    let k = space.k();
    let mut inst = Instrument::new();
    if k == 0 {
        return Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    // Random restart-free single trajectory from a random feasible-ish point.
    let mut state = BitState::empty(k);
    if k > 1 {
        state.flip(rng.gen_range(0..k));
    }
    let mut best = BestTracker::new();
    best.offer(&eval, &state, cmax_blocks, &mut inst);
    let mut tabu: VecDeque<usize> = VecDeque::new();

    for _ in 0..config.iterations {
        inst.states_examined += 1;
        // Full neighborhood scan: flip each bit, pick the best non-tabu
        // move (aspiration: tabu moves are allowed if they improve the
        // global best energy seen so far).
        let mut best_move: Option<(usize, f64)> = None;
        for i in 0..k {
            state.flip(i);
            let e = p2_energy(&eval, &state, cmax_blocks);
            inst.param_evals += 1;
            state.flip(i);
            let is_tabu = tabu.contains(&i);
            let improves_best = -e > best.doi.value()
                && p2_feasible_after_flip(&eval, &mut state, i, cmax_blocks, &mut inst);
            if is_tabu && !improves_best {
                continue;
            }
            if best_move.is_none_or(|(_, be)| e < be) {
                best_move = Some((i, e));
            }
        }
        let Some((i, _)) = best_move else { break };
        state.flip(i);
        best.offer(&eval, &state, cmax_blocks, &mut inst);
        tabu.push_back(i);
        if tabu.len() > config.tenure {
            tabu.pop_front();
        }
        inst.observe_bytes(k + (tabu.len() * std::mem::size_of::<usize>()) + best.bytes());
    }

    if best.prefs.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        }
    } else {
        Solution::from_prefs(&eval, best.prefs, inst)
    }
}

fn p2_feasible_after_flip(
    eval: &ParamEval<'_>,
    state: &mut BitState,
    i: usize,
    cmax: u64,
    inst: &mut Instrument,
) -> bool {
    inst.param_evals += 1;
    state.flip(i);
    let ok = super::p2_feasible(eval, state, cmax);
    state.flip(i);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefs::Doi;
    use cqp_prefspace::PrefParams;

    fn fig6() -> PreferenceSpace {
        let costs = [120u64, 80, 60, 40, 30];
        let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
        PreferenceSpace::synthetic(
            (0..5)
                .map(|i| PrefParams {
                    doi: Doi::new(dois[i]),
                    cost_blocks: costs[i],
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    #[test]
    fn feasible_deterministic_and_competitive() {
        let space = fig6();
        let a = solve_p2(&space, ConjModel::NoisyOr, 185, 3);
        let b = solve_p2(&space, ConjModel::NoisyOr, 185, 3);
        assert_eq!(a.prefs, b.prefs);
        assert!(a.cost_blocks <= 185 || !a.found);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 185);
        assert!(a.doi <= oracle.doi);
        assert!(oracle.doi.value() - a.doi.value() < 0.1);
    }

    #[test]
    fn empty_space_and_tiny_budget() {
        let space = PreferenceSpace::synthetic(vec![], 10.0, 0);
        assert!(!solve_p2(&space, ConjModel::NoisyOr, 10, 0).found);
        let space = fig6();
        assert!(!solve_p2(&space, ConjModel::NoisyOr, 5, 0).found);
    }
}
