//! Algorithm **D-HEURDOI** (paper Figure 11) — the fastest heuristic.
//!
//! Built on the same greedy growth as D-SINGLEMAXDOI but without a work
//! queue: each round grows its seed maximally, then tries to reach better
//! solutions by shrinking the grown node to each of its prefixes and
//! regrowing (step 2.5: `R' := {R[j] | ∀j < k}`), banning the element that
//! was just dropped from being re-inserted first (otherwise the regrow
//! would trivially recreate the node it started from — the pseudocode's
//! `R'' ≠ R` guard).

use super::d_singlemaxdoi::greedy_grow;
use super::Solution;
use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::spaces::SpaceView;
use crate::state::State;
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;

/// Runs D-HEURDOI for Problem 2.
pub fn solve(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64) -> Solution {
    solve_budgeted(space, conj, cmax_blocks, &CancelToken::unlimited())
}

/// [`solve`] polling `token` between rounds; on a trip the best grown node
/// found so far is returned (the dispatcher tags it degraded).
pub fn solve_budgeted(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    token: &CancelToken,
) -> Solution {
    let view = SpaceView::doi(space, conj);
    let eval = view.eval();
    let k_total = view.k();
    let mut inst = Instrument::new();

    let mut max_doi = Doi::ZERO;
    let mut best: Vec<usize> = Vec::new();
    let mut best_expected = eval.best_doi_for_group(k_total);

    let mut k = 0usize;
    while k < k_total && max_doi <= best_expected {
        if token.should_stop() {
            break;
        }
        let seed = State::singleton(k as u16);
        inst.param_evals += 1;
        if view.state_cost(&seed) <= cmax_blocks {
            inst.states_examined += 1;
            let grown = greedy_grow(&view, seed, cmax_blocks, None, &mut inst);
            inst.observe_bytes(grown.heap_bytes());
            let doi = view.state_doi(&grown);
            inst.param_evals += 1;
            if doi > max_doi {
                max_doi = doi;
                best = grown.to_pref_indices(view.order());
            }

            // Heuristic improvement: drop the tail of the grown node one
            // slot at a time and regrow each prefix (Figure 11, step 2.5).
            let kr = grown.len();
            for t in (1..kr).rev() {
                let dropped = grown.indices()[t];
                let prefix = grown.prefix(t);
                inst.states_examined += 1;
                let regrown = greedy_grow(&view, prefix, cmax_blocks, Some(dropped), &mut inst);
                inst.observe_bytes(regrown.heap_bytes());
                let doi = view.state_doi(&regrown);
                inst.param_evals += 1;
                if doi > max_doi {
                    max_doi = doi;
                    best = regrown.to_pref_indices(view.order());
                }
            }
        }
        best_expected = eval.best_expected_doi((k + 1)..k_total);
        inst.param_evals += 1;
        k += 1;
    }

    if best.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(eval)
        }
    } else {
        Solution::from_prefs(eval, best, inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{d_singlemaxdoi, exhaustive};
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn space_with(costs: &[u64], dois: &[f64]) -> PreferenceSpace {
        PreferenceSpace::synthetic(
            costs
                .iter()
                .zip(dois)
                .map(|(&c, &d)| PrefParams {
                    doi: Doi::new(d),
                    cost_blocks: c,
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    #[test]
    fn feasible_and_never_better_than_oracle() {
        let space = space_with(&[120, 80, 60, 40, 30], &[0.9, 0.8, 0.7, 0.6, 0.5]);
        for cmax in (0..=340).step_by(5) {
            let sol = solve(&space, ConjModel::NoisyOr, cmax);
            let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
            if sol.found {
                assert!(sol.cost_blocks <= cmax, "cmax={cmax}");
            }
            assert!(sol.doi <= oracle.doi, "cmax={cmax}");
        }
    }

    #[test]
    fn regrow_recovers_swaps_the_pure_greedy_misses() {
        // Greedy from p0: {p0} (cost 60), can't add p1 (60+50 > 100) but
        // adds p2 (60+10=70): doi 1-0.1*0.5 = 0.95.
        // Better: {p1, p2} cost 60: doi 1-0.2*0.5 = 0.9? No — lower.
        // Make the seed round k=1 matter instead: D-HEURDOI's round 1
        // starts from {p1} and grows {p1,p2}; the regrow of round 0
        // prefixes also explores alternates. The heuristic must match the
        // oracle here.
        let space = space_with(&[60, 50, 10], &[0.9, 0.8, 0.5]);
        let sol = solve(&space, ConjModel::NoisyOr, 100);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 100);
        assert_eq!(sol.doi, oracle.doi);
    }

    #[test]
    fn examines_fewer_states_than_singlemaxdoi() {
        // Figure 12: D-HEURDOI is the cheapest algorithm by far.
        let costs: Vec<u64> = (1..=14).map(|i| 5 * i as u64).collect();
        let dois: Vec<f64> = (1..=14).map(|i| 0.2 + 0.05 * i as f64).collect();
        let space = space_with(&costs, &dois);
        let h = solve(&space, ConjModel::NoisyOr, 200);
        let s = d_singlemaxdoi::solve(&space, ConjModel::NoisyOr, 200);
        assert!(
            h.instrument.states_examined <= s.instrument.states_examined,
            "heur={} single={}",
            h.instrument.states_examined,
            s.instrument.states_examined
        );
        assert!(h.doi.value() >= 0.0 && s.doi.value() >= 0.0);
        assert!(h.cost_blocks <= 200);
    }

    #[test]
    fn infeasible_and_empty() {
        let space = space_with(&[100], &[0.9]);
        assert!(!solve(&space, ConjModel::NoisyOr, 50).found);
        let space = space_with(&[], &[]);
        assert!(!solve(&space, ConjModel::NoisyOr, 50).found);
    }
}
