//! The CQP search algorithms (paper Section 5.2) and baselines.
//!
//! Exact for Problem 2 (`MAX doi` s.t. `cost ≤ cmax`):
//!
//! * [`c_boundaries`] — Theorem 2,
//! * [`d_maxdoi`] — Theorem 3,
//! * [`exhaustive`] — `O(2^K)` reference oracle,
//! * [`branch_bound`] — exact branch-and-bound over the additive
//!   reformulation (doubles as the knapsack-style baseline the Related Work
//!   section discusses).
//!
//! Heuristic:
//!
//! * [`c_maxbounds`], [`d_singlemaxdoi`], [`d_heurdoi`] — the paper's fast
//!   heuristics, evaluated for quality in Figure 14,
//! * [`generic`] — simulated annealing / tabu / genetic baselines.

pub mod branch_bound;
pub mod c_boundaries;
pub mod c_maxbounds;
pub mod d_heurdoi;
pub mod d_maxdoi;
pub mod d_singlemaxdoi;
pub mod exhaustive;
pub mod find_max_doi;
pub mod general;
pub mod generic;
pub mod pareto;
pub mod prune;

use crate::budget::{CancelToken, DegradedInfo};
use crate::instrument::Instrument;
use crate::params::{ParamEval, QueryParams};
use cqp_obs::record::span_guard;
use cqp_obs::{NoopRecorder, Recorder};
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;

/// The result of a CQP search: the preferences to integrate plus the
/// estimated parameters of the personalized query they induce.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Selected preferences as sorted P-indices (`PU` in the paper).
    pub prefs: Vec<usize>,
    /// `doi(Q ∧ PU)` (`MaxDoi` in the paper's pseudocode).
    pub doi: Doi,
    /// `cost(Q ∧ PU)` in blocks.
    pub cost_blocks: u64,
    /// Estimated result size in rows.
    pub size_rows: f64,
    /// True when a non-empty feasible personalization was found; false
    /// means "run the query unpersonalized".
    pub found: bool,
    /// Work and memory counters, blended over the whole run.
    pub instrument: Instrument,
    /// Per-phase counters for multi-phase algorithms (empty for
    /// single-phase ones). `instrument` remains the merged total; this
    /// preserves the attribution that `Instrument::merge` erases.
    pub phases: Vec<(&'static str, Instrument)>,
    /// `Some` when the search gave up before completion (deadline, state
    /// budget, or external cancellation) and this is the best-so-far
    /// incumbent rather than the algorithm's full answer. Incumbents are
    /// feasible by construction, so a degraded solution with `found == true`
    /// still satisfies the problem's hard range constraints.
    pub degraded: Option<DegradedInfo>,
}

impl Solution {
    /// The "no personalization" solution: empty preference set.
    pub fn empty(eval: &ParamEval<'_>) -> Self {
        Solution {
            prefs: Vec::new(),
            doi: Doi::ZERO,
            cost_blocks: eval.cost_of([]),
            size_rows: eval.size_of([]),
            found: false,
            instrument: Instrument::default(),
            phases: Vec::new(),
            degraded: None,
        }
    }

    /// Builds a solution from P-indices, evaluating its parameters.
    pub fn from_prefs(eval: &ParamEval<'_>, mut prefs: Vec<usize>, instrument: Instrument) -> Self {
        prefs.sort_unstable();
        let params = eval.params_of(&prefs);
        Solution {
            found: !prefs.is_empty(),
            prefs,
            doi: params.doi,
            cost_blocks: params.cost_blocks,
            size_rows: params.size_rows,
            instrument,
            phases: Vec::new(),
            degraded: None,
        }
    }

    /// The solution's parameters as a [`QueryParams`].
    pub fn params(&self) -> QueryParams {
        QueryParams {
            doi: self.doi,
            cost_blocks: self.cost_blocks,
            size_rows: self.size_rows,
        }
    }
}

/// Algorithm selector for [`solve_p2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// `O(2^K)` enumeration (exact; small `K` only).
    Exhaustive,
    /// Paper Figure 5 (exact — Theorem 2).
    CBoundaries,
    /// Paper Figure 7 (heuristic).
    CMaxBounds,
    /// Paper Figure 9 (exact — Theorem 3).
    DMaxDoi,
    /// Paper Figure 10 (heuristic).
    DSingleMaxDoi,
    /// Paper Figure 11 (heuristic).
    DHeurDoi,
    /// Exact branch-and-bound (knapsack-style baseline).
    BranchBound,
    /// Simulated annealing (generic baseline, Related Work).
    Annealing,
    /// Tabu search (generic baseline).
    Tabu,
    /// Genetic algorithm (generic baseline).
    Genetic,
}

impl Algorithm {
    /// The five algorithms proposed by the paper, in its presentation order.
    pub const PAPER: [Algorithm; 5] = [
        Algorithm::DMaxDoi,
        Algorithm::DSingleMaxDoi,
        Algorithm::CBoundaries,
        Algorithm::CMaxBounds,
        Algorithm::DHeurDoi,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Exhaustive => "Exhaustive",
            Algorithm::CBoundaries => "C_Boundaries",
            Algorithm::CMaxBounds => "C_MaxBounds",
            Algorithm::DMaxDoi => "D_MaxDoi",
            Algorithm::DSingleMaxDoi => "D_SingleMaxDoi",
            Algorithm::DHeurDoi => "D_HeurDoi",
            Algorithm::BranchBound => "BranchBound",
            Algorithm::Annealing => "SimAnnealing",
            Algorithm::Tabu => "TabuSearch",
            Algorithm::Genetic => "Genetic",
        }
    }

    /// Parses an algorithm name: the display form ([`Algorithm::name`])
    /// or its lowercase token (`c_maxbounds`, `branch_bound`, …), case
    /// insensitively. The single parser the shell and the HTTP API share.
    /// The canonical lowercase wire spelling, as accepted by
    /// [`by_name`](Self::by_name). Used wherever the algorithm becomes a
    /// machine-read label (metrics, trace metadata) rather than prose.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Algorithm::Exhaustive => "exhaustive",
            Algorithm::CBoundaries => "c_boundaries",
            Algorithm::CMaxBounds => "c_maxbounds",
            Algorithm::DMaxDoi => "d_maxdoi",
            Algorithm::DSingleMaxDoi => "d_singlemaxdoi",
            Algorithm::DHeurDoi => "d_heurdoi",
            Algorithm::BranchBound => "branch_bound",
            Algorithm::Annealing => "annealing",
            Algorithm::Tabu => "tabu",
            Algorithm::Genetic => "genetic",
        }
    }

    pub fn by_name(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "exhaustive" => Some(Algorithm::Exhaustive),
            "c_boundaries" => Some(Algorithm::CBoundaries),
            "c_maxbounds" => Some(Algorithm::CMaxBounds),
            "d_maxdoi" => Some(Algorithm::DMaxDoi),
            "d_singlemaxdoi" => Some(Algorithm::DSingleMaxDoi),
            "d_heurdoi" => Some(Algorithm::DHeurDoi),
            "branch_bound" | "branchbound" => Some(Algorithm::BranchBound),
            "annealing" | "simannealing" => Some(Algorithm::Annealing),
            "tabu" | "tabusearch" => Some(Algorithm::Tabu),
            "genetic" => Some(Algorithm::Genetic),
            _ => None,
        }
    }

    /// True for algorithms that provably return the optimum of Problem 2.
    pub fn is_exact(&self) -> bool {
        matches!(
            self,
            Algorithm::Exhaustive
                | Algorithm::CBoundaries
                | Algorithm::DMaxDoi
                | Algorithm::BranchBound
        )
    }

    /// True for algorithms that need the `C`/`S` vectors of the preference
    /// space (doi-based ones can work with a doi-only extraction,
    /// cf. paper Figure 12(b)).
    pub fn needs_cost_vectors(&self) -> bool {
        matches!(self, Algorithm::CBoundaries | Algorithm::CMaxBounds)
    }
}

/// Solves Problem 2 — `MAX doi(Q ∧ Px)` subject to
/// `cost(Q ∧ Px) ≤ cmax_blocks` — with the chosen algorithm.
///
/// The generic baselines use a fixed internal seed; use their module
/// functions directly for seed control.
pub fn solve_p2(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    algorithm: Algorithm,
) -> Solution {
    solve_p2_recorded(space, conj, cmax_blocks, algorithm, &NoopRecorder)
}

/// [`solve_p2`] with observability: the run is wrapped in a span named
/// after the algorithm, two-phase algorithms nest one span per phase, and
/// the work counters are flushed to the recorder under `solver.*`. With
/// [`NoopRecorder`] this is exactly `solve_p2` (counters stay local).
pub fn solve_p2_recorded(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    algorithm: Algorithm,
    recorder: &dyn Recorder,
) -> Solution {
    solve_p2_cached(space, conj, cmax_blocks, algorithm, recorder, None)
}

/// [`solve_p2_recorded`] with an optional batch-wide
/// [`SharedCostCache`](crate::cost_cache::SharedCostCache). Only
/// C-BOUNDARIES evaluates state costs through a cache, so it alone consults
/// it; every other algorithm ignores the argument. Cached costs are exact —
/// the answer is identical with or without sharing.
pub fn solve_p2_cached(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    algorithm: Algorithm,
    recorder: &dyn Recorder,
    shared: Option<&crate::cost_cache::SharedCostCache>,
) -> Solution {
    solve_p2_budgeted(
        space,
        conj,
        cmax_blocks,
        algorithm,
        recorder,
        shared,
        &CancelToken::unlimited(),
    )
}

/// [`solve_p2_cached`] under a [`CancelToken`]: every state-space loop polls
/// the token, and if it trips the solution returned is the best-so-far
/// incumbent tagged [`Solution::degraded`]. The generic baselines
/// (annealing/tabu/genetic) run a fixed iteration budget of their own and
/// ignore the token.
pub fn solve_p2_budgeted(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    algorithm: Algorithm,
    recorder: &dyn Recorder,
    shared: Option<&crate::cost_cache::SharedCostCache>,
    token: &CancelToken,
) -> Solution {
    let span = span_guard(recorder, algorithm.name());
    let mut sol = match algorithm {
        Algorithm::Exhaustive => exhaustive::solve_bounded(
            space,
            conj,
            &crate::problem::ProblemSpec::p2(cmax_blocks),
            token,
        ),
        Algorithm::CBoundaries => {
            c_boundaries::solve_budgeted(space, conj, cmax_blocks, recorder, shared, token)
        }
        Algorithm::CMaxBounds => {
            c_maxbounds::solve_budgeted(space, conj, cmax_blocks, recorder, token)
        }
        Algorithm::DMaxDoi => d_maxdoi::solve_budgeted(space, conj, cmax_blocks, recorder, token),
        Algorithm::DSingleMaxDoi => d_singlemaxdoi::solve_budgeted(space, conj, cmax_blocks, token),
        Algorithm::DHeurDoi => d_heurdoi::solve_budgeted(space, conj, cmax_blocks, token),
        Algorithm::BranchBound => branch_bound::solve_bounded(
            space,
            conj,
            &crate::problem::ProblemSpec::p2(cmax_blocks),
            token,
        ),
        Algorithm::Annealing => generic::annealing::solve_p2(space, conj, cmax_blocks, 0xC0FFEE),
        Algorithm::Tabu => generic::tabu::solve_p2(space, conj, cmax_blocks, 0xC0FFEE),
        Algorithm::Genetic => generic::genetic::solve_p2(space, conj, cmax_blocks, 0xC0FFEE),
    };
    sol.degraded = token.degraded_info();
    // Two-phase algorithms flush per phase; everything else flushes its
    // blended total here, inside the algorithm span.
    if sol.phases.is_empty() {
        sol.instrument.flush_to(recorder);
    }
    if let Some(d) = &sol.degraded {
        recorder.add("solver.degraded", 1);
        if recorder.is_enabled() {
            recorder.event(&format!(
                "{}: degraded ({}) after {} states",
                algorithm.name(),
                d.reason.name(),
                d.states_visited,
            ));
        }
    }
    if recorder.is_enabled() {
        recorder.event(&format!(
            "{}: doi={:.4} cost={} states={}",
            algorithm.name(),
            sol.doi.value(),
            sol.cost_blocks,
            sol.instrument.states_examined,
        ));
    }
    drop(span);
    sol
}
