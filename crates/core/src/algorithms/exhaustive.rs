//! Exhaustive `O(2^K)` enumeration — the reference oracle.
//!
//! "The complexity of an exhaustive CQP algorithm is O(2^K)" (paper Section
//! 5.2). This solver enumerates every subset of `P`, so it is only usable
//! for small `K`, but it is *obviously correct* for every problem of Table 1
//! and therefore anchors all correctness tests.

use super::Solution;
use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use crate::problem::ProblemSpec;
use cqp_par::ThreadPool;
use cqp_prefs::ConjModel;
use cqp_prefspace::PreferenceSpace;

/// Largest `K` the exhaustive solver accepts (2^25 ≈ 33M states).
pub const MAX_EXHAUSTIVE_K: usize = 25;

/// Solves any CQP problem by enumerating all subsets of `P`.
///
/// # Panics
/// Panics if `K` exceeds [`MAX_EXHAUSTIVE_K`].
pub fn solve(space: &PreferenceSpace, conj: ConjModel, problem: &ProblemSpec) -> Solution {
    solve_bounded(space, conj, problem, &CancelToken::unlimited())
}

/// [`solve`] polling `token` once per enumerated subset; on a trip the scan
/// stops and the best incumbent so far is returned (the caller tags it
/// degraded).
///
/// # Panics
/// Panics if `K` exceeds [`MAX_EXHAUSTIVE_K`].
pub fn solve_bounded(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    token: &CancelToken,
) -> Solution {
    let eval = ParamEval::new(space, conj);
    let k = space.k();
    assert!(
        k <= MAX_EXHAUSTIVE_K,
        "exhaustive search over K={k} is infeasible (max {MAX_EXHAUSTIVE_K})"
    );
    let mut inst = Instrument::new();
    let mut best: Option<(Vec<usize>, crate::params::QueryParams)> = None;

    // Subset 0 is the empty personalization; skipped as a "solution" (the
    // paper's algorithms return PU = {} only when nothing is feasible).
    for mask in 1u64..(1u64 << k) {
        if token.should_stop() {
            break;
        }
        inst.states_examined += 1;
        let prefs: Vec<usize> = (0..k).filter(|i| mask & (1 << i) != 0).collect();
        let params = eval.params_of(&prefs);
        inst.param_evals += 1;
        if !problem.feasible(&params) {
            continue;
        }
        let replace = match &best {
            None => true,
            Some((_, bp)) => problem.better(&params, bp),
        };
        if replace {
            best = Some((prefs, params));
        }
    }

    match best {
        Some((prefs, _)) => Solution::from_prefs(&eval, prefs, inst),
        None => Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        },
    }
}

/// Convenience wrapper for Problem 2.
pub fn solve_p2(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64) -> Solution {
    solve(space, conj, &ProblemSpec::p2(cmax_blocks))
}

/// [`solve`] with the `2^K` subset enumeration split across `pool`'s
/// workers into contiguous mask ranges (fixed high-order prefix bits).
///
/// Each range is scanned in ascending mask order keeping its first
/// strictly-better optimum, and the per-range optima are merged in
/// ascending range order under the same `problem.better` predicate — the
/// exact tie-breaking the sequential scan applies — so the returned
/// solution is bit-identical to [`solve`]'s at any worker count.
///
/// # Panics
/// Panics if `K` exceeds [`MAX_EXHAUSTIVE_K`].
pub fn solve_partitioned(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    pool: &ThreadPool,
) -> Solution {
    solve_partitioned_bounded(space, conj, problem, pool, &CancelToken::unlimited())
}

/// [`solve_partitioned`] sharing one [`CancelToken`] across all workers:
/// each range scan polls it per subset, so the whole pool stops within one
/// state of the trip. A degraded partitioned scan keeps bit-identical
/// *merging* but may have covered a different prefix of the mask space than
/// the sequential scan at the same trip point.
pub fn solve_partitioned_bounded(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    pool: &ThreadPool,
    token: &CancelToken,
) -> Solution {
    let k = space.k();
    assert!(
        k <= MAX_EXHAUSTIVE_K,
        "exhaustive search over K={k} is infeasible (max {MAX_EXHAUSTIVE_K})"
    );
    let eval = ParamEval::new(space, conj);
    let total: u64 = 1u64 << k;
    // Over-partition ~4 tasks per worker: feasibility density varies across
    // the range, and stealing re-balances only if there is slack to steal.
    let chunks = ((pool.threads() * 4) as u64).clamp(1, (total - 1).max(1));
    let ranges: Vec<(u64, u64)> = (0..chunks)
        .map(|c| {
            (
                1 + c * (total - 1) / chunks,
                1 + (c + 1) * (total - 1) / chunks,
            )
        })
        .collect();

    let per_range = pool.map(ranges, |_, (lo, hi)| {
        let mut inst = Instrument::new();
        let mut best: Option<(Vec<usize>, crate::params::QueryParams)> = None;
        for mask in lo..hi {
            if token.should_stop() {
                break;
            }
            inst.states_examined += 1;
            let prefs: Vec<usize> = (0..k).filter(|i| mask & (1 << i) != 0).collect();
            let params = eval.params_of(&prefs);
            inst.param_evals += 1;
            if !problem.feasible(&params) {
                continue;
            }
            let replace = match &best {
                None => true,
                Some((_, bp)) => problem.better(&params, bp),
            };
            if replace {
                best = Some((prefs, params));
            }
        }
        (best, inst)
    });

    let mut inst = Instrument::new();
    let mut best: Option<(Vec<usize>, crate::params::QueryParams)> = None;
    for (cand, range_inst) in per_range {
        inst.merge(&range_inst);
        if let Some((prefs, params)) = cand {
            let replace = match &best {
                None => true,
                Some((_, bp)) => problem.better(&params, bp),
            };
            if replace {
                best = Some((prefs, params));
            }
        }
    }
    match best {
        Some((prefs, _)) => Solution::from_prefs(&eval, prefs, inst),
        None => Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_prefs::Doi;
    use cqp_prefspace::PrefParams;

    fn fig6_space() -> PreferenceSpace {
        let costs = [120u64, 80, 60, 40, 30];
        let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
        PreferenceSpace::synthetic(
            (0..5)
                .map(|i| PrefParams {
                    doi: Doi::new(dois[i]),
                    cost_blocks: costs[i],
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    #[test]
    fn fig6_optimum_at_cmax_185() {
        // Feasible 3-sets: c2c3c4 (180), c2c4c5 (150), c2c3c5 (170),
        // c3c4c5 (130). Best doi is the one with the highest dois:
        // {p2,p3,p4} = 1-(0.2)(0.3)(0.4) = 0.976.
        let s = fig6_space();
        let sol = solve_p2(&s, ConjModel::NoisyOr, 185);
        assert!(sol.found);
        assert_eq!(sol.prefs, vec![1, 2, 3]);
        assert_eq!(sol.cost_blocks, 180);
        assert!((sol.doi.value() - 0.976).abs() < 1e-12);
    }

    #[test]
    fn infeasible_returns_empty() {
        let s = fig6_space();
        let sol = solve_p2(&s, ConjModel::NoisyOr, 10);
        assert!(!sol.found);
        assert!(sol.prefs.is_empty());
        assert_eq!(sol.doi, Doi::ZERO);
    }

    #[test]
    fn generous_budget_takes_everything() {
        let s = fig6_space();
        let sol = solve_p2(&s, ConjModel::NoisyOr, 10_000);
        assert_eq!(sol.prefs, vec![0, 1, 2, 3, 4]);
        assert_eq!(sol.cost_blocks, 330);
    }

    #[test]
    fn min_cost_objective() {
        // Problem 4: min cost with doi >= 0.9.
        let s = fig6_space();
        let sol = solve(&s, ConjModel::NoisyOr, &ProblemSpec::p4(Doi::new(0.9)));
        assert!(sol.found);
        assert!(sol.doi >= Doi::new(0.9));
        // Verify optimality by brute re-check: every feasible subset costs
        // at least as much.
        let eval = ParamEval::new(&s, ConjModel::NoisyOr);
        for mask in 1u64..(1 << 5) {
            let prefs: Vec<usize> = (0..5).filter(|i| mask & (1 << i) != 0).collect();
            let p = eval.params_of(&prefs);
            if p.doi >= Doi::new(0.9) {
                assert!(p.cost_blocks >= sol.cost_blocks);
            }
        }
    }

    #[test]
    fn size_band_constraints() {
        // Problem 1: size in [100, 300] with base 1000 and factors 0.5:
        // 1 pref -> 500 (too big), 2 -> 250 (ok), 3 -> 125 (ok), 4 -> 62.5.
        let s = fig6_space();
        let sol = solve(&s, ConjModel::NoisyOr, &ProblemSpec::p1(100.0, 300.0));
        assert!(sol.found);
        assert_eq!(sol.prefs.len(), 3);
        // Max doi among 3-subsets: the top three dois.
        assert_eq!(sol.prefs, vec![0, 1, 2]);
    }

    #[test]
    fn partitioned_matches_sequential_at_every_width() {
        let s = fig6_space();
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            for cmax in (0..=340).step_by(17) {
                let problem = ProblemSpec::p2(cmax);
                let seq = solve(&s, ConjModel::NoisyOr, &problem);
                let par = solve_partitioned(&s, ConjModel::NoisyOr, &problem, &pool);
                assert_eq!(par.prefs, seq.prefs, "threads={threads} cmax={cmax}");
                assert_eq!(par.doi, seq.doi, "threads={threads} cmax={cmax}");
                assert_eq!(par.cost_blocks, seq.cost_blocks);
                assert_eq!(par.found, seq.found);
                // Coverage is exact: every non-empty subset examined once.
                assert_eq!(par.instrument.states_examined, (1 << 5) - 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn large_k_rejected() {
        let params = (0..26)
            .map(|i| PrefParams {
                doi: Doi::new(0.5),
                cost_blocks: i as u64,
                size_factor: 0.9,
            })
            .collect();
        let s = PreferenceSpace::synthetic(params, 10.0, 0);
        let _ = solve_p2(&s, ConjModel::NoisyOr, 100);
    }
}
