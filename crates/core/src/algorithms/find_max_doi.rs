//! `C_FINDMAXDOI` — the shared second phase of C-BOUNDARIES and
//! C-MAXBOUNDS (paper Figure 5).
//!
//! Given the boundaries found in the cost space, it searches *below* each
//! boundary for the node with the maximum doi. The search never computes
//! doi during the scan: for each slot `k` of a boundary `R` (processed from
//! the largest slot down), it picks the preference with the best doi —
//! minimum P-index, since `P` is doi-sorted — among the C-positions `j ≥ k`
//! not yet used. Every such replacement moves to an equal-or-cheaper
//! preference, so the refined node still satisfies the cost constraint.
//!
//! The per-slot greedy is exact: the feasible position sets `{j ≥ R[i]}`
//! are nested (suffixes of `C`), and for a laminar family the
//! most-constrained-first greedy yields a maximum-weight transversal; with
//! the noisy-or model, maximizing doi is equivalent to maximizing
//! `Σ −ln(1−doi_i)`, an additive weight.

use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::spaces::SpaceView;
use crate::state::State;
use cqp_prefs::Doi;

/// Runs the second phase over boundaries from the cost space.
///
/// Returns the best preference set (as P-indices) and its doi. Boundaries
/// are examined in decreasing group size with the `BestExpectedDoi` early
/// exit: once the best doi found exceeds what the largest remaining group
/// could possibly reach, scanning stops. `token` is polled per boundary;
/// on a trip the best refinement so far is returned.
pub fn c_find_max_doi(
    view: &SpaceView<'_>,
    boundaries: &[State],
    inst: &mut Instrument,
    token: &CancelToken,
) -> (Vec<usize>, Doi) {
    let k_total = view.k();
    let mut sorted: Vec<&State> = boundaries.iter().collect();
    sorted.sort_by_key(|s| std::cmp::Reverse(s.len()));

    let mut max_doi = Doi::ZERO;
    let mut best: Vec<usize> = Vec::new();
    let mut group = k_total; // current group size being examined

    for r in sorted {
        if token.should_stop() {
            break;
        }
        if r.len() < group {
            group = r.len();
            let best_expected = view.eval().best_doi_for_group(group);
            inst.param_evals += 1;
            if max_doi > best_expected {
                break;
            }
        }
        let px = refine_max_doi(view, r);
        let doi = view.eval().doi_of(px.iter().copied());
        inst.param_evals += 1;
        if doi > max_doi {
            max_doi = doi;
            best = px;
        }
    }
    best.sort_unstable();
    (best, max_doi)
}

/// The greedy transversal below one boundary: for each slot (largest C-index
/// first) pick the unused preference with the minimum P-index among
/// positions `≥` the slot's index.
pub fn refine_max_doi(view: &SpaceView<'_>, r: &State) -> Vec<usize> {
    let k_total = view.k();
    let mut used = vec![false; k_total];
    let mut px: Vec<usize> = Vec::with_capacity(r.len());
    for i in (0..r.len()).rev() {
        let slot = r.indices()[i] as usize;
        let mut best_p = usize::MAX;
        for j in slot..k_total {
            let p = view.pref_at(j as u16);
            if !used[p] && p < best_p {
                best_p = p;
            }
        }
        debug_assert!(
            best_p != usize::MAX,
            "suffix always has enough unused positions"
        );
        used[best_p] = true;
        px.push(best_p);
    }
    px
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_prefs::{ConjModel, Doi};
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    /// A space where doi order and cost order DIFFER, so refinement has
    /// something to do.
    fn mixed_space() -> PreferenceSpace {
        // P (doi-sorted):      p0=.9   p1=.8   p2=.7   p3=.6
        // costs:               10      40      20      30
        // C (cost desc):       [1, 3, 2, 0]
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.9),
                    cost_blocks: 10,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.8),
                    cost_blocks: 40,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.7),
                    cost_blocks: 20,
                    size_factor: 0.5,
                },
                PrefParams {
                    doi: Doi::new(0.6),
                    cost_blocks: 30,
                    size_factor: 0.5,
                },
            ],
            100.0,
            0,
        )
    }

    #[test]
    fn refinement_moves_to_better_doi_without_raising_cost() {
        let space = mixed_space();
        assert_eq!(space.c, vec![1, 3, 2, 0]);
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        // Boundary {c2, c3} = positions {1,2} = prefs {3, 2} (cost 50).
        let r = State::from_indices(vec![1, 2]);
        let px = refine_max_doi(&view, &r);
        // Slot 2 (positions >= 2): prefs {2, 0}; best doi = p0.
        // Slot 1 (positions >= 1): prefs {3, 2, 0} minus used -> p2.
        let mut sorted = px.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2]);
        // Cost did not increase: 10 + 20 = 30 <= 50.
        let cost: u64 = sorted.iter().map(|&p| view.eval().cost_of([p])).sum();
        assert!(cost <= view.state_cost(&r));
    }

    #[test]
    fn find_max_doi_prefers_larger_groups_but_checks_all() {
        let space = mixed_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let mut inst = Instrument::new();
        // Two boundaries: a pair and a singleton.
        let boundaries = vec![
            State::from_indices(vec![3]),
            State::from_indices(vec![1, 2]),
        ];
        let (best, doi) = c_find_max_doi(&view, &boundaries, &mut inst, &CancelToken::unlimited());
        assert_eq!(best, vec![0, 2]);
        // doi = 1 - 0.1*0.3 = 0.97
        assert!((doi.value() - 0.97).abs() < 1e-12);
    }

    #[test]
    fn early_exit_on_best_expected() {
        let space = mixed_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let mut inst = Instrument::new();
        // A 3-boundary whose refinement reaches the top-3 dois, then a
        // singleton group that cannot possibly beat it.
        let boundaries = vec![
            State::from_indices(vec![0, 1, 2]),
            State::from_indices(vec![3]),
        ];
        let (best, doi) = c_find_max_doi(&view, &boundaries, &mut inst, &CancelToken::unlimited());
        assert_eq!(best.len(), 3);
        assert!(doi > view.eval().best_doi_for_group(1));
    }

    #[test]
    fn empty_boundaries_yield_nothing() {
        let space = mixed_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let mut inst = Instrument::new();
        let (best, doi) = c_find_max_doi(&view, &[], &mut inst, &CancelToken::unlimited());
        assert!(best.is_empty());
        assert_eq!(doi, Doi::ZERO);
    }
}
