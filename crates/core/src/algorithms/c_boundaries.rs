//! Algorithm **C-BOUNDARIES** (paper Figure 5) — exact for Problem 2.
//!
//! Phase 1 (`FINDBOUNDARY`) finds the *boundaries*: nodes satisfying the
//! cost constraint whose Vertical predecessors do not. They form a virtual
//! borderline partitioning the cost state space. Phase 2
//! (`C_FINDMAXDOI`, in [`super::find_max_doi`]) searches below the
//! boundaries for the node of maximum doi.
//!
//! Queue discipline (Figure 5): feasible nodes push their Horizontal
//! successor at the **tail**; infeasible nodes push their Vertical
//! neighbors at the **head** — "in this way, we first examine all states
//! belonging to the same group and then proceed to the next group's
//! states". Verticals are generated in decreasing cost and pushed to the
//! head one by one, so they are *examined* cheapest-first; this reproduces
//! the paper's Figure 6 trace exactly.

use super::find_max_doi::c_find_max_doi;
use super::prune::Pruner;
use super::Solution;
use crate::budget::CancelToken;
use crate::cost_cache::{CacheHandle, SharedCostCache};
use crate::instrument::Instrument;
use crate::spaces::SpaceView;
use crate::state::State;
use crate::transitions::{horizontal, vertical};
use cqp_obs::record::span_guard;
use cqp_obs::{NoopRecorder, Recorder};
use cqp_prefs::ConjModel;
use cqp_prefspace::PreferenceSpace;
use std::collections::VecDeque;

/// Runs C-BOUNDARIES for Problem 2.
pub fn solve(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64) -> Solution {
    solve_recorded(space, conj, cmax_blocks, &NoopRecorder)
}

/// [`solve`] with one span and one [`Instrument`] per phase; counters are
/// flushed to the recorder at each phase boundary and kept in
/// [`Solution::phases`].
pub fn solve_recorded(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    recorder: &dyn Recorder,
) -> Solution {
    solve_cached(space, conj, cmax_blocks, recorder, None)
}

/// [`solve_recorded`] with an optional batch-wide [`SharedCostCache`]:
/// when given, phase 1 memoizes state costs through it so concurrent
/// requests over the same preference space reuse each other's evaluations.
/// Cached costs are exact, so the answer is identical either way.
pub fn solve_cached(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    recorder: &dyn Recorder,
    shared: Option<&SharedCostCache>,
) -> Solution {
    solve_budgeted(
        space,
        conj,
        cmax_blocks,
        recorder,
        shared,
        &CancelToken::unlimited(),
    )
}

/// [`solve_cached`] polling `token` in both phases; on a trip the phase
/// stops where it is and the best incumbent reachable from the boundaries
/// found so far is returned (the dispatcher tags it degraded).
pub fn solve_budgeted(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    recorder: &dyn Recorder,
    shared: Option<&SharedCostCache>,
    token: &CancelToken,
) -> Solution {
    let view = SpaceView::cost(space, conj);
    let eval = view.eval();
    let mut cache = match shared {
        Some(c) => CacheHandle::shared(c, &view),
        None => CacheHandle::local(),
    };

    let mut p1 = Instrument::new();
    let boundaries = {
        let _span = span_guard(recorder, "find_boundaries");
        let b = find_boundary_bounded(&view, cmax_blocks, &mut p1, &mut cache, token);
        p1.boundaries_found = b.len() as u64;
        p1.flush_to(recorder);
        b
    };

    let mut p2 = Instrument::new();
    let (prefs, _doi) = {
        let _span = span_guard(recorder, "find_max_doi");
        let r = c_find_max_doi(&view, &boundaries, &mut p2, token);
        p2.flush_to(recorder);
        r
    };

    let mut inst = p1;
    inst.merge(&p2);
    let mut sol = if prefs.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(eval)
        }
    } else {
        Solution::from_prefs(eval, prefs, inst)
    };
    sol.phases = vec![("find_boundaries", p1), ("find_max_doi", p2)];
    sol
}

/// Phase 1: `FINDBOUNDARY` (paper Figure 5).
pub fn find_boundary(view: &SpaceView<'_>, cmax: u64, inst: &mut Instrument) -> Vec<State> {
    // "Costs that may be re-used are cached" (Section 5.2.1): states
    // re-reached through different transition sequences skip re-evaluation.
    let mut cache = CacheHandle::local();
    find_boundary_cached(view, cmax, inst, &mut cache)
}

/// [`find_boundary`] against a caller-provided cost cache (local or
/// batch-shared).
pub fn find_boundary_cached(
    view: &SpaceView<'_>,
    cmax: u64,
    inst: &mut Instrument,
    cache: &mut CacheHandle<'_>,
) -> Vec<State> {
    find_boundary_bounded(view, cmax, inst, cache, &CancelToken::unlimited())
}

/// [`find_boundary_cached`] polling `token` once per dequeued state. On a
/// trip the queue is abandoned: the boundaries found so far are returned,
/// each of which already satisfies the cost constraint.
pub fn find_boundary_bounded(
    view: &SpaceView<'_>,
    cmax: u64,
    inst: &mut Instrument,
    cache: &mut CacheHandle<'_>,
    token: &CancelToken,
) -> Vec<State> {
    let mut boundaries: Vec<State> = Vec::new();
    if view.k() == 0 {
        return boundaries;
    }
    let mut rq: VecDeque<State> = VecDeque::new();
    let mut pruner = Pruner::new();
    let start = State::singleton(0);
    pruner.mark_visited(&start);
    // Queue bytes are tracked incrementally so the per-iteration memory
    // observation (Figure 13) stays O(1).
    let mut rq_bytes = start.heap_bytes();
    rq.push_back(start);

    while let Some(r) = rq.pop_front() {
        if token.should_stop() {
            break;
        }
        rq_bytes -= r.heap_bytes();
        inst.states_examined += 1;
        let cost = cache.cost(view, &r);
        inst.param_evals += 1;
        if cost <= cmax {
            // A boundary: record it and move Horizontal (next group).
            pruner.add_boundary(&r);
            boundaries.push(r.clone());
            if let Some(h) = horizontal(view, &r) {
                inst.horizontal_moves += 1;
                if pruner.mark_visited(&h) {
                    rq_bytes += h.heap_bytes();
                    rq.push_back(h);
                }
            }
        } else {
            // Push Vertical neighbors at the head; generation order is
            // decreasing cost, so the head ends up cheapest-first.
            for n in vertical(view, &r) {
                inst.vertical_moves += 1;
                if !pruner.prune(&n) {
                    pruner.mark_visited(&n);
                    rq_bytes += n.heap_bytes();
                    rq.push_front(n);
                }
            }
        }
        // Boundary bytes are part of pruner.bytes().
        inst.observe_bytes(rq_bytes + pruner.bytes() + cache.bytes());
    }
    cache.absorb_into(inst);
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefs::Doi;
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    /// The Figure 6 fixture: costs 120, 80, 60, 40, 30 (C order), base 0.
    fn fig6_space() -> PreferenceSpace {
        let costs = [120u64, 80, 60, 40, 30];
        let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
        PreferenceSpace::synthetic(
            (0..5)
                .map(|i| PrefParams {
                    doi: Doi::new(dois[i]),
                    cost_blocks: costs[i],
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    fn st(v: &[u16]) -> State {
        State::from_indices(v.to_vec())
    }

    #[test]
    fn figure6_boundaries_match_paper() {
        // Paper: for cmax=185, FINDBOUNDARY outputs
        // {{1}, {1,3}, {2,3,4}, {2,4,5}} = {c1, c1c3, c2c3c4, c2c4c5} — and
        // then remarks that c2c4c5 "has been wrongly identified as a
        // boundary. If c2c3c4 was found first, then c2c4c5 would not have
        // been visited in the first place." Our queue discipline examines
        // same-group Verticals cheapest-first, so c2c3c4 IS found first and
        // the dominance prune removes c2c4c5, realizing exactly the
        // behaviour the paper describes as intended.
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let mut inst = Instrument::new();
        let bs = find_boundary(&view, 185, &mut inst);
        assert_eq!(
            bs,
            vec![st(&[0]), st(&[0, 2]), st(&[1, 2, 3])],
            "got: {:?}",
            bs.iter().map(|b| b.to_string()).collect::<Vec<_>>()
        );
        // Every boundary satisfies the constraint...
        for b in &bs {
            assert!(view.state_cost(b) <= 185);
        }
        // ...and none is below another (they are mutually unreachable).
        for a in &bs {
            for b in &bs {
                if a != b {
                    assert!(!a.dominated_by(b), "{a} is below {b}");
                }
            }
        }
    }

    #[test]
    fn figure6_solution_is_exact() {
        let space = fig6_space();
        let sol = solve(&space, ConjModel::NoisyOr, 185);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 185);
        assert_eq!(sol.prefs, oracle.prefs);
        assert_eq!(sol.doi, oracle.doi);
        assert!(sol.cost_blocks <= 185);
        assert!(sol.instrument.boundaries_found >= 3);
    }

    #[test]
    fn matches_oracle_across_cmax_sweep() {
        let space = fig6_space();
        for cmax in (0..=340).step_by(5) {
            let sol = solve(&space, ConjModel::NoisyOr, cmax);
            let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
            assert_eq!(sol.doi, oracle.doi, "cmax={cmax}");
            assert!(
                sol.cost_blocks <= cmax.max(space.base_cost_blocks),
                "cmax={cmax}"
            );
        }
    }

    #[test]
    fn empty_space_returns_empty() {
        let space = PreferenceSpace::synthetic(vec![], 10.0, 2);
        let sol = solve(&space, ConjModel::NoisyOr, 100);
        assert!(!sol.found);
        assert_eq!(sol.cost_blocks, 2); // base query cost
    }

    #[test]
    fn memory_is_tracked() {
        let space = fig6_space();
        let sol = solve(&space, ConjModel::NoisyOr, 185);
        assert!(sol.instrument.peak_bytes > 0);
        assert!(sol.instrument.states_examined > 0);
    }

    #[test]
    fn phases_are_attributed_separately() {
        let space = fig6_space();
        let obs = cqp_obs::Obs::new();
        let sol = solve_recorded(&space, ConjModel::NoisyOr, 185, &obs);

        // Per-phase instruments survive (no merge attribution loss) and
        // their merge reproduces the blended total.
        assert_eq!(sol.phases.len(), 2);
        let (n1, p1) = sol.phases[0];
        let (n2, p2) = sol.phases[1];
        assert_eq!(n1, "find_boundaries");
        assert_eq!(n2, "find_max_doi");
        assert!(p1.states_examined > 0);
        assert!(p2.param_evals > 0);
        assert_eq!(p2.states_examined, 0, "phase 2 pops no queue states");
        let mut merged = p1;
        merged.merge(&p2);
        assert_eq!(sol.instrument, merged);

        // The cost cache flowed its stats into phase 1.
        assert!(p1.cache_misses > 0);

        // Spans and registry counters were published.
        let spans = obs.with_tracer(|t| t.spans());
        assert!(spans.iter().any(|s| s.path == "find_boundaries"));
        assert!(spans.iter().any(|s| s.path == "find_max_doi"));
        assert_eq!(
            obs.registry().counter("solver.states_examined"),
            sol.instrument.states_examined
        );

        // Recording changes observation, not the answer.
        let plain = solve(&space, ConjModel::NoisyOr, 185);
        assert_eq!(plain.prefs, sol.prefs);
        assert_eq!(plain.doi, sol.doi);
    }
}
