//! Exact branch-and-bound over the additive reformulation — the
//! "knapsack-style" baseline of the Related Work discussion, and the exact
//! reference solver for the *general* problems of Table 1.
//!
//! With the experimental choices of the paper (Formulas 9/10), every CQP
//! parameter is additive in a transformed domain:
//!
//! * `doi = 1 − Π(1−di)` — maximizing doi ⇔ maximizing `Σ −ln(1−di)`;
//! * `cost = Σ ci` — already additive;
//! * `size = base × Π fi` — multiplicative, monotone non-increasing.
//!
//! The paper argues (Section 2) that knapsack algorithms are *not
//! appropriate in general* because CQP may involve different, even
//! nonlinear functions; this module exists precisely to quantify that
//! comparison (ablation bench) and to provide an exact oracle at `K` values
//! where `O(2^K)` enumeration is impossible. For conjunction models other
//! than noisy-or the additive bound is replaced by a conservative one
//! (doi of all remaining preferences), keeping the search exact.

use super::Solution;
use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use crate::problem::{Objective, ProblemSpec};
use cqp_par::ThreadPool;
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exact branch-and-bound for any CQP problem of Table 1.
pub fn solve(space: &PreferenceSpace, conj: ConjModel, problem: &ProblemSpec) -> Solution {
    solve_bounded(space, conj, problem, &CancelToken::unlimited())
}

/// [`solve`] polling `token` at every DFS node; on a trip the remaining
/// subtrees are abandoned and the incumbent so far is returned (the caller
/// tags it degraded).
pub fn solve_bounded(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    token: &CancelToken,
) -> Solution {
    solve_bounded_warm(space, conj, problem, token, None)
}

/// [`solve_bounded`] seeded with a *pruning bound* from a previously solved
/// instance over the same preference space (the cross-request warm start).
///
/// `warm` must be the parameters of a state that is **feasible under
/// `problem`** — typically a cached answer for the same template/profile
/// whose constraint budget moved. The seed is used exactly like a
/// cross-worker incumbent bound, never as the incumbent itself: subtrees
/// that cannot reach it are cut *strictly* (`doi_bound < warm.doi` for
/// MaxDoi, `cost > warm.cost_blocks` for MinCost — sound by the monotone
/// Formulas 4 and 7), so every state that could still win — including tie
/// candidates of the eventual optimum — is visited in the same
/// include-first preorder as a cold search. The returned solution is
/// therefore bit-identical to [`solve_bounded`]'s; only the states visited
/// shrink. Seeding the incumbent instead would break that: a seed tying the
/// optimum on both doi and cost but with different members would be
/// returned over the cold search's preorder-first winner.
pub fn solve_bounded_warm(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    token: &CancelToken,
    warm: Option<crate::params::QueryParams>,
) -> Solution {
    let eval = ParamEval::new(space, conj);
    let k = space.k();
    let mut inst = Instrument::new();
    if k == 0 {
        return Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        };
    }

    let mut search = Search {
        eval: &eval,
        problem,
        k,
        best: None,
        inst: &mut inst,
        chosen: Vec::new(),
        shared: None,
        warm,
        token,
    };
    search.recurse(0, 0, Vec::new(), space.base_rows);
    let best = search.best.take();

    match best {
        Some((prefs, _)) => Solution::from_prefs(&eval, prefs, inst),
        None => Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        },
    }
}

/// [`solve`] with the DFS partitioned across `pool`'s workers.
///
/// The first `d` include/exclude decisions are fixed per task (`2^d` prefix
/// subproblems, `d` sized for ~4 tasks per worker so stealing re-balances
/// the wildly uneven subtree sizes); each task runs an independent
/// [`Search`] seeded with its prefix. Workers publish their incumbents to a
/// shared monotone bound ([`SharedBest`]); because the objective prunes are
/// *strict*, a cross-worker bound can never cut a subtree holding an
/// eventual winner or tie-candidate, so the answer stays exact. Per-task
/// optima are merged in the sequential DFS's include-first preorder under
/// the same strict `better` predicate, making the returned solution
/// deterministic at any worker count (work *counters* may vary run to run —
/// the racy bound changes how much gets pruned, never what is returned).
pub fn solve_partitioned(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    pool: &ThreadPool,
) -> Solution {
    solve_partitioned_bounded(space, conj, problem, pool, &CancelToken::unlimited())
}

/// [`solve_partitioned`] sharing one [`CancelToken`] across all workers:
/// every task's DFS polls it per node, so the whole pool stops within one
/// state of the trip. A degraded partitioned search keeps the deterministic
/// merge but may have covered different subtrees than the sequential DFS at
/// the same trip point.
pub fn solve_partitioned_bounded(
    space: &PreferenceSpace,
    conj: ConjModel,
    problem: &ProblemSpec,
    pool: &ThreadPool,
    token: &CancelToken,
) -> Solution {
    let k = space.k();
    if k == 0 || pool.threads() == 1 {
        return solve_bounded(space, conj, problem, token);
    }
    let eval = ParamEval::new(space, conj);
    let mut d = 0usize;
    while (1usize << d) < pool.threads() * 4 && d < k {
        d += 1;
    }
    let shared = SharedBest::new();
    // Prefix id bit `j` set means item `j` is EXCLUDED, so ascending ids
    // enumerate depth-`d` prefixes in the include-first DFS preorder.
    let prefixes: Vec<u32> = (0..(1u32 << d)).collect();
    let per_prefix = pool.map(prefixes, |_, p| {
        let mut inst = Instrument::new();
        let mut chosen = Vec::new();
        let mut cost = 0u64;
        let mut dois = Vec::new();
        let mut size = space.base_rows;
        for j in 0..d {
            if p & (1 << j) == 0 {
                chosen.push(j);
                cost += eval.space().cost_blocks(j);
                dois.push(eval.space().doi(j));
                size *= eval.space().size_factor(j);
            }
        }
        let mut search = Search {
            eval: &eval,
            problem,
            k,
            best: None,
            inst: &mut inst,
            chosen,
            shared: Some(&shared),
            warm: None,
            token,
        };
        search.recurse(d, cost, dois, size);
        (search.best.take(), inst)
    });

    let mut inst = Instrument::new();
    let mut best: Option<(Vec<usize>, crate::params::QueryParams)> = None;
    for (cand, task_inst) in per_prefix {
        inst.merge(&task_inst);
        if let Some((prefs, params)) = cand {
            let replace = match &best {
                None => true,
                Some((_, bp)) => problem.better(&params, bp),
            };
            if replace {
                best = Some((prefs, params));
            }
        }
    }
    match best {
        Some((prefs, _)) => Solution::from_prefs(&eval, prefs, inst),
        None => Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        },
    }
}

/// A cross-worker incumbent bound: monotone best doi and best (lowest)
/// cost over every *feasible* candidate any worker has accepted. The doi is
/// stored as `f64` bits — doi is non-negative, so bit order equals numeric
/// order and `fetch_max` suffices.
struct SharedBest {
    doi_bits: AtomicU64,
    cost: AtomicU64,
}

impl SharedBest {
    fn new() -> Self {
        SharedBest {
            doi_bits: AtomicU64::new(0),
            cost: AtomicU64::new(u64::MAX),
        }
    }

    fn publish(&self, p: &crate::params::QueryParams) {
        self.doi_bits
            .fetch_max(p.doi.value().to_bits(), Ordering::Relaxed);
        self.cost.fetch_min(p.cost_blocks, Ordering::Relaxed);
    }

    fn best_doi(&self) -> Doi {
        Doi::new(f64::from_bits(self.doi_bits.load(Ordering::Relaxed)))
    }

    fn best_cost(&self) -> u64 {
        self.cost.load(Ordering::Relaxed)
    }
}

struct Search<'a, 'b> {
    eval: &'a ParamEval<'a>,
    problem: &'a ProblemSpec,
    k: usize,
    best: Option<(Vec<usize>, crate::params::QueryParams)>,
    inst: &'b mut Instrument,
    chosen: Vec<usize>,
    /// Cross-worker bound in partitioned mode; `None` when sequential.
    shared: Option<&'a SharedBest>,
    /// Warm-start bound from a cached feasible solution; pruned against
    /// strictly, exactly like `shared`, so it never changes the answer.
    warm: Option<crate::params::QueryParams>,
    /// Cooperative cancellation, polled once per DFS node.
    token: &'a CancelToken,
}

impl Search<'_, '_> {
    /// DFS over items `i..K` with the current (cost, members, size) state.
    fn recurse(&mut self, i: usize, cost: u64, dois_members: Vec<Doi>, size: f64) {
        if self.token.should_stop() {
            return;
        }
        self.inst.states_examined += 1;
        // Evaluate the current node as a candidate.
        if !self.chosen.is_empty() {
            let params = crate::params::QueryParams {
                doi: self.eval.conj_model().conj(&dois_members),
                cost_blocks: cost,
                size_rows: size,
            };
            self.inst.param_evals += 1;
            if self.problem.feasible(&params) {
                let replace = match &self.best {
                    None => true,
                    Some((_, bp)) => self.problem.better(&params, bp),
                };
                if replace {
                    if let Some(sh) = self.shared {
                        sh.publish(&params);
                    }
                    self.best = Some((self.chosen.clone(), params));
                }
            }
        }
        if i >= self.k {
            return;
        }

        // --- Pruning ---------------------------------------------------
        let c = &self.problem.constraints;

        // Cost only grows: if the node already busts cmax, every extension
        // does too (and the node itself was already evaluated).
        if let Some(cmax) = c.cost_max_blocks {
            if cost > cmax {
                return;
            }
        }
        // Size only shrinks: below smin nothing can recover.
        if size < c.size_min {
            return;
        }
        // Upper-bound the achievable size reduction: taking every remaining
        // preference gives the smallest size; if that still exceeds smax,
        // the subtree is infeasible.
        if let Some(smax) = c.size_max {
            let min_size = (i..self.k).fold(size, |s, j| s * self.eval.space().size_factor(j));
            if min_size > smax {
                return;
            }
        }
        // Upper-bound the achievable doi (conjunction of members plus all
        // remaining preferences — monotone by Formula 4).
        let doi_bound = {
            let mut all = dois_members.clone();
            all.extend((i..self.k).map(|j| self.eval.space().doi(j)));
            self.eval.conj_model().conj(&all)
        };
        if let Some(dmin) = c.doi_min {
            if doi_bound < dmin {
                return;
            }
        }
        // Objective bounds against the cross-worker incumbent (strict, like
        // the local ones below — a bound published elsewhere can only cut
        // strictly-worse subtrees).
        if let Some(sh) = self.shared {
            match self.problem.objective {
                Objective::MaxDoi => {
                    if doi_bound < sh.best_doi() {
                        return;
                    }
                }
                Objective::MinCost => {
                    if cost > sh.best_cost() {
                        return;
                    }
                }
            }
        }
        // Warm-start bound: a cached solution known feasible under this
        // problem bounds the optimum from the first node, before any local
        // incumbent exists. Strict cuts only, for the same reason as above.
        if let Some(w) = &self.warm {
            match self.problem.objective {
                Objective::MaxDoi => {
                    if doi_bound < w.doi {
                        return;
                    }
                }
                Objective::MinCost => {
                    if cost > w.cost_blocks {
                        return;
                    }
                }
            }
        }
        // Objective bounds against the incumbent.
        if let Some((_, bp)) = &self.best {
            match self.problem.objective {
                Objective::MaxDoi => {
                    // Strict: an equal-doi descendant can still win the
                    // lower-cost tie-break.
                    if doi_bound < bp.doi {
                        return;
                    }
                }
                Objective::MinCost => {
                    // Cost only grows along the include-branch; the
                    // exclude-branches keep the current cost; any
                    // descendant costs ≥ the current node. Strict: an
                    // equal-cost descendant can still win the higher-doi
                    // tie-break.
                    if cost > bp.cost_blocks {
                        return;
                    }
                }
            }
        }

        // --- Branch ------------------------------------------------------
        // Include item i.
        self.chosen.push(i);
        let mut with = dois_members.clone();
        with.push(self.eval.space().doi(i));
        self.recurse(
            i + 1,
            cost + self.eval.space().cost_blocks(i),
            with,
            size * self.eval.space().size_factor(i),
        );
        self.chosen.pop();
        // Exclude item i.
        self.recurse(i + 1, cost, dois_members, size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefspace::PrefParams;

    fn space_with(costs: &[u64], dois: &[f64], factors: &[f64]) -> PreferenceSpace {
        PreferenceSpace::synthetic(
            costs
                .iter()
                .zip(dois)
                .zip(factors)
                .map(|((&c, &d), &f)| PrefParams {
                    doi: Doi::new(d),
                    cost_blocks: c,
                    size_factor: f,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    fn fig6() -> PreferenceSpace {
        space_with(
            &[120, 80, 60, 40, 30],
            &[0.9, 0.8, 0.7, 0.6, 0.5],
            &[0.5, 0.5, 0.5, 0.5, 0.5],
        )
    }

    #[test]
    fn matches_exhaustive_on_p2_sweep() {
        let space = fig6();
        for cmax in (0..=340).step_by(5) {
            let bb = solve(&space, ConjModel::NoisyOr, &ProblemSpec::p2(cmax));
            let ex = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
            assert_eq!(bb.doi, ex.doi, "cmax={cmax}");
            assert_eq!(bb.prefs, ex.prefs, "cmax={cmax}");
        }
    }

    #[test]
    fn matches_exhaustive_on_all_six_problems() {
        let space = space_with(
            &[50, 40, 30, 20, 10, 5],
            &[0.95, 0.8, 0.6, 0.55, 0.3, 0.2],
            &[0.9, 0.5, 0.7, 0.3, 0.8, 0.6],
        );
        let problems = [
            ProblemSpec::p1(50.0, 600.0),
            ProblemSpec::p2(70),
            ProblemSpec::p3(70, 50.0, 600.0),
            ProblemSpec::p4(Doi::new(0.9)),
            ProblemSpec::p5(Doi::new(0.9), 50.0, 600.0),
            ProblemSpec::p6(50.0, 600.0),
        ];
        for (n, p) in problems.iter().enumerate() {
            let bb = solve(&space, ConjModel::NoisyOr, p);
            let ex = exhaustive::solve(&space, ConjModel::NoisyOr, p);
            assert_eq!(bb.found, ex.found, "problem {}", n + 1);
            assert_eq!(bb.doi, ex.doi, "problem {}", n + 1);
            assert_eq!(bb.cost_blocks, ex.cost_blocks, "problem {}", n + 1);
        }
    }

    #[test]
    fn scales_beyond_exhaustive_reach() {
        // K = 34 with a tight budget: B&B finishes quickly where 2^34 would
        // not.
        let costs: Vec<u64> = (1..=34).map(|i| (i * 7 % 90 + 10) as u64).collect();
        let dois: Vec<f64> = (1..=34).map(|i| 0.15 + (i as f64 * 0.37) % 0.8).collect();
        let factors: Vec<f64> = (1..=34).map(|i| 0.4 + (i as f64 * 0.13) % 0.5).collect();
        let space = space_with(&costs, &dois, &factors);
        let sol = solve(&space, ConjModel::NoisyOr, &ProblemSpec::p2(120));
        assert!(sol.found);
        assert!(sol.cost_blocks <= 120);
    }

    #[test]
    fn partitioned_matches_sequential_at_every_width() {
        let space = fig6();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            for cmax in (0..=340).step_by(17) {
                let problem = ProblemSpec::p2(cmax);
                let seq = solve(&space, ConjModel::NoisyOr, &problem);
                let par = solve_partitioned(&space, ConjModel::NoisyOr, &problem, &pool);
                assert_eq!(par.prefs, seq.prefs, "threads={threads} cmax={cmax}");
                assert_eq!(par.doi, seq.doi, "threads={threads} cmax={cmax}");
                assert_eq!(par.cost_blocks, seq.cost_blocks);
                assert_eq!(par.found, seq.found);
            }
        }
    }

    #[test]
    fn partitioned_matches_sequential_on_all_six_problems() {
        let space = space_with(
            &[50, 40, 30, 20, 10, 5],
            &[0.95, 0.8, 0.6, 0.55, 0.3, 0.2],
            &[0.9, 0.5, 0.7, 0.3, 0.8, 0.6],
        );
        let pool = ThreadPool::new(4);
        let problems = [
            ProblemSpec::p1(50.0, 600.0),
            ProblemSpec::p2(70),
            ProblemSpec::p3(70, 50.0, 600.0),
            ProblemSpec::p4(Doi::new(0.9)),
            ProblemSpec::p5(Doi::new(0.9), 50.0, 600.0),
            ProblemSpec::p6(50.0, 600.0),
        ];
        for (n, p) in problems.iter().enumerate() {
            let par = solve_partitioned(&space, ConjModel::NoisyOr, p, &pool);
            let seq = solve(&space, ConjModel::NoisyOr, p);
            assert_eq!(par.found, seq.found, "problem {}", n + 1);
            assert_eq!(par.prefs, seq.prefs, "problem {}", n + 1);
            assert_eq!(par.doi, seq.doi, "problem {}", n + 1);
            assert_eq!(par.cost_blocks, seq.cost_blocks, "problem {}", n + 1);
        }
    }

    #[test]
    fn partitioned_scales_beyond_exhaustive_reach() {
        let costs: Vec<u64> = (1..=34).map(|i| (i * 7 % 90 + 10) as u64).collect();
        let dois: Vec<f64> = (1..=34).map(|i| 0.15 + (i as f64 * 0.37) % 0.8).collect();
        let factors: Vec<f64> = (1..=34).map(|i| 0.4 + (i as f64 * 0.13) % 0.5).collect();
        let space = space_with(&costs, &dois, &factors);
        let pool = ThreadPool::new(4);
        let par = solve_partitioned(&space, ConjModel::NoisyOr, &ProblemSpec::p2(120), &pool);
        let seq = solve(&space, ConjModel::NoisyOr, &ProblemSpec::p2(120));
        assert_eq!(par.prefs, seq.prefs);
        assert_eq!(par.doi, seq.doi);
        assert!(par.cost_blocks <= 120);
    }

    #[test]
    fn warm_start_is_bit_identical_and_prunes() {
        use crate::budget::CancelToken;
        let space = fig6();
        // Solve at one budget, then warm-start the neighboring budgets with
        // that answer wherever it stays feasible.
        let base = solve(&space, ConjModel::NoisyOr, &ProblemSpec::p2(180));
        assert!(base.found);
        let seed = crate::params::QueryParams {
            doi: base.doi,
            cost_blocks: base.cost_blocks,
            size_rows: base.size_rows,
        };
        for cmax in (180..=340).step_by(10) {
            let problem = ProblemSpec::p2(cmax);
            let cold = solve(&space, ConjModel::NoisyOr, &problem);
            let warm = solve_bounded_warm(
                &space,
                ConjModel::NoisyOr,
                &problem,
                &CancelToken::unlimited(),
                Some(seed),
            );
            assert_eq!(warm.prefs, cold.prefs, "cmax={cmax}");
            assert_eq!(warm.doi, cold.doi, "cmax={cmax}");
            assert_eq!(warm.cost_blocks, cold.cost_blocks, "cmax={cmax}");
            assert_eq!(warm.size_rows, cold.size_rows, "cmax={cmax}");
            assert!(
                warm.instrument.states_examined <= cold.instrument.states_examined,
                "warm start must never expand more states (cmax={cmax})"
            );
        }
        // At the seed's own budget the warm bound is at worst a no-op: the
        // cold incumbent converges so fast here that the seed cannot do
        // strictly better, but it must never do worse.
        let cold = solve(&space, ConjModel::NoisyOr, &ProblemSpec::p2(180));
        let warm = solve_bounded_warm(
            &space,
            ConjModel::NoisyOr,
            &ProblemSpec::p2(180),
            &CancelToken::unlimited(),
            Some(seed),
        );
        assert!(warm.instrument.states_examined <= cold.instrument.states_examined);
    }

    #[test]
    fn warm_start_min_cost_objective_stays_exact() {
        use crate::budget::CancelToken;
        // The highest-doi preference is wildly expensive and excluded from
        // the optimum: a cold search burns states inside its subtree before
        // any incumbent exists, which is exactly where a warm bound helps.
        let space = space_with(
            &[500, 5, 5, 5, 5],
            &[0.95, 0.6, 0.6, 0.6, 0.6],
            &[0.9, 0.5, 0.7, 0.3, 0.8],
        );
        let problem = ProblemSpec::p4(Doi::new(0.97));
        let cold = solve(&space, ConjModel::NoisyOr, &problem);
        assert!(cold.found);
        let seed = crate::params::QueryParams {
            doi: cold.doi,
            cost_blocks: cold.cost_blocks,
            size_rows: cold.size_rows,
        };
        // Seeding with the optimum itself must still return the optimum.
        let warm = solve_bounded_warm(
            &space,
            ConjModel::NoisyOr,
            &problem,
            &CancelToken::unlimited(),
            Some(seed),
        );
        assert_eq!(warm.prefs, cold.prefs);
        assert_eq!(warm.doi, cold.doi);
        assert_eq!(warm.cost_blocks, cold.cost_blocks);
        // Under MinCost the cold search has no incumbent until it first
        // reaches a doi-feasible state, while the warm bound prunes
        // over-budget subtrees from the very first expansion — so here the
        // seed strictly shrinks the search.
        assert!(warm.instrument.states_examined < cold.instrument.states_examined);
    }

    #[test]
    fn other_conj_models_stay_exact() {
        let space = space_with(&[30, 20, 10], &[0.9, 0.5, 0.4], &[0.5, 0.6, 0.7]);
        for conj in [ConjModel::Max, ConjModel::Quadrature] {
            let bb = solve(&space, conj, &ProblemSpec::p2(40));
            let ex = exhaustive::solve_p2(&space, conj, 40);
            assert_eq!(bb.doi, ex.doi, "{conj:?}");
        }
    }
}
