//! Exact branch-and-bound over the additive reformulation — the
//! "knapsack-style" baseline of the Related Work discussion, and the exact
//! reference solver for the *general* problems of Table 1.
//!
//! With the experimental choices of the paper (Formulas 9/10), every CQP
//! parameter is additive in a transformed domain:
//!
//! * `doi = 1 − Π(1−di)` — maximizing doi ⇔ maximizing `Σ −ln(1−di)`;
//! * `cost = Σ ci` — already additive;
//! * `size = base × Π fi` — multiplicative, monotone non-increasing.
//!
//! The paper argues (Section 2) that knapsack algorithms are *not
//! appropriate in general* because CQP may involve different, even
//! nonlinear functions; this module exists precisely to quantify that
//! comparison (ablation bench) and to provide an exact oracle at `K` values
//! where `O(2^K)` enumeration is impossible. For conjunction models other
//! than noisy-or the additive bound is replaced by a conservative one
//! (doi of all remaining preferences), keeping the search exact.

use super::Solution;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use crate::problem::{Objective, ProblemSpec};
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;

/// Exact branch-and-bound for any CQP problem of Table 1.
pub fn solve(space: &PreferenceSpace, conj: ConjModel, problem: &ProblemSpec) -> Solution {
    let eval = ParamEval::new(space, conj);
    let k = space.k();
    let mut inst = Instrument::new();
    if k == 0 {
        return Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        };
    }

    let mut search = Search {
        eval: &eval,
        problem,
        k,
        best: None,
        inst: &mut inst,
        chosen: Vec::new(),
    };
    search.recurse(0, 0, Vec::new(), space.base_rows);
    let best = search.best.take();

    match best {
        Some((prefs, _)) => Solution::from_prefs(&eval, prefs, inst),
        None => Solution {
            instrument: inst,
            ..Solution::empty(&eval)
        },
    }
}

struct Search<'a, 'b> {
    eval: &'a ParamEval<'a>,
    problem: &'a ProblemSpec,
    k: usize,
    best: Option<(Vec<usize>, crate::params::QueryParams)>,
    inst: &'b mut Instrument,
    chosen: Vec<usize>,
}

impl Search<'_, '_> {
    /// DFS over items `i..K` with the current (cost, members, size) state.
    fn recurse(&mut self, i: usize, cost: u64, dois_members: Vec<Doi>, size: f64) {
        self.inst.states_examined += 1;
        // Evaluate the current node as a candidate.
        if !self.chosen.is_empty() {
            let params = crate::params::QueryParams {
                doi: self.eval.conj_model().conj(&dois_members),
                cost_blocks: cost,
                size_rows: size,
            };
            self.inst.param_evals += 1;
            if self.problem.feasible(&params) {
                let replace = match &self.best {
                    None => true,
                    Some((_, bp)) => self.problem.better(&params, bp),
                };
                if replace {
                    self.best = Some((self.chosen.clone(), params));
                }
            }
        }
        if i >= self.k {
            return;
        }

        // --- Pruning ---------------------------------------------------
        let c = &self.problem.constraints;

        // Cost only grows: if the node already busts cmax, every extension
        // does too (and the node itself was already evaluated).
        if let Some(cmax) = c.cost_max_blocks {
            if cost > cmax {
                return;
            }
        }
        // Size only shrinks: below smin nothing can recover.
        if size < c.size_min {
            return;
        }
        // Upper-bound the achievable size reduction: taking every remaining
        // preference gives the smallest size; if that still exceeds smax,
        // the subtree is infeasible.
        if let Some(smax) = c.size_max {
            let min_size = (i..self.k).fold(size, |s, j| s * self.eval.space().size_factor(j));
            if min_size > smax {
                return;
            }
        }
        // Upper-bound the achievable doi (conjunction of members plus all
        // remaining preferences — monotone by Formula 4).
        let doi_bound = {
            let mut all = dois_members.clone();
            all.extend((i..self.k).map(|j| self.eval.space().doi(j)));
            self.eval.conj_model().conj(&all)
        };
        if let Some(dmin) = c.doi_min {
            if doi_bound < dmin {
                return;
            }
        }
        // Objective bounds against the incumbent.
        if let Some((_, bp)) = &self.best {
            match self.problem.objective {
                Objective::MaxDoi => {
                    // Strict: an equal-doi descendant can still win the
                    // lower-cost tie-break.
                    if doi_bound < bp.doi {
                        return;
                    }
                }
                Objective::MinCost => {
                    // Cost only grows along the include-branch; the
                    // exclude-branches keep the current cost; any
                    // descendant costs ≥ the current node. Strict: an
                    // equal-cost descendant can still win the higher-doi
                    // tie-break.
                    if cost > bp.cost_blocks {
                        return;
                    }
                }
            }
        }

        // --- Branch ------------------------------------------------------
        // Include item i.
        self.chosen.push(i);
        let mut with = dois_members.clone();
        with.push(self.eval.space().doi(i));
        self.recurse(
            i + 1,
            cost + self.eval.space().cost_blocks(i),
            with,
            size * self.eval.space().size_factor(i),
        );
        self.chosen.pop();
        // Exclude item i.
        self.recurse(i + 1, cost, dois_members, size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefspace::PrefParams;

    fn space_with(costs: &[u64], dois: &[f64], factors: &[f64]) -> PreferenceSpace {
        PreferenceSpace::synthetic(
            costs
                .iter()
                .zip(dois)
                .zip(factors)
                .map(|((&c, &d), &f)| PrefParams {
                    doi: Doi::new(d),
                    cost_blocks: c,
                    size_factor: f,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    fn fig6() -> PreferenceSpace {
        space_with(
            &[120, 80, 60, 40, 30],
            &[0.9, 0.8, 0.7, 0.6, 0.5],
            &[0.5, 0.5, 0.5, 0.5, 0.5],
        )
    }

    #[test]
    fn matches_exhaustive_on_p2_sweep() {
        let space = fig6();
        for cmax in (0..=340).step_by(5) {
            let bb = solve(&space, ConjModel::NoisyOr, &ProblemSpec::p2(cmax));
            let ex = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
            assert_eq!(bb.doi, ex.doi, "cmax={cmax}");
            assert_eq!(bb.prefs, ex.prefs, "cmax={cmax}");
        }
    }

    #[test]
    fn matches_exhaustive_on_all_six_problems() {
        let space = space_with(
            &[50, 40, 30, 20, 10, 5],
            &[0.95, 0.8, 0.6, 0.55, 0.3, 0.2],
            &[0.9, 0.5, 0.7, 0.3, 0.8, 0.6],
        );
        let problems = [
            ProblemSpec::p1(50.0, 600.0),
            ProblemSpec::p2(70),
            ProblemSpec::p3(70, 50.0, 600.0),
            ProblemSpec::p4(Doi::new(0.9)),
            ProblemSpec::p5(Doi::new(0.9), 50.0, 600.0),
            ProblemSpec::p6(50.0, 600.0),
        ];
        for (n, p) in problems.iter().enumerate() {
            let bb = solve(&space, ConjModel::NoisyOr, p);
            let ex = exhaustive::solve(&space, ConjModel::NoisyOr, p);
            assert_eq!(bb.found, ex.found, "problem {}", n + 1);
            assert_eq!(bb.doi, ex.doi, "problem {}", n + 1);
            assert_eq!(bb.cost_blocks, ex.cost_blocks, "problem {}", n + 1);
        }
    }

    #[test]
    fn scales_beyond_exhaustive_reach() {
        // K = 34 with a tight budget: B&B finishes quickly where 2^34 would
        // not.
        let costs: Vec<u64> = (1..=34).map(|i| (i * 7 % 90 + 10) as u64).collect();
        let dois: Vec<f64> = (1..=34).map(|i| 0.15 + (i as f64 * 0.37) % 0.8).collect();
        let factors: Vec<f64> = (1..=34).map(|i| 0.4 + (i as f64 * 0.13) % 0.5).collect();
        let space = space_with(&costs, &dois, &factors);
        let sol = solve(&space, ConjModel::NoisyOr, &ProblemSpec::p2(120));
        assert!(sol.found);
        assert!(sol.cost_blocks <= 120);
    }

    #[test]
    fn other_conj_models_stay_exact() {
        let space = space_with(&[30, 20, 10], &[0.9, 0.5, 0.4], &[0.5, 0.6, 0.7]);
        for conj in [ConjModel::Max, ConjModel::Quadrature] {
            let bb = solve(&space, conj, &ProblemSpec::p2(40));
            let ex = exhaustive::solve_p2(&space, conj, 40);
            assert_eq!(bb.doi, ex.doi, "{conj:?}");
        }
    }
}
