//! Algorithm **D-MAXDOI** (paper Figure 9) — exact for Problem 2, on the
//! doi state space.
//!
//! `FINDOPTIMAL` climbs Horizontal transitions (which increase doi) while
//! the cost constraint holds; the last feasible node of each climb is a
//! candidate solution, and the Vertical neighbors of the *first violating*
//! successor seed further exploration. Verticals in the doi space are
//! "blind" with respect to cost (paper Section 7.2.1) — no boundary
//! dominance pruning is sound here, only the visited set — which is exactly
//! why this exact algorithm explores large parts of the space and is slow.
//!
//! One pseudocode gap is resolved conservatively: when a dequeued node
//! itself violates the constraint (step 3.2 skipped), its own Vertical
//! neighbors are expanded (`R' = R`), otherwise chains that first become
//! feasible after a swap would be unreachable and exactness would be lost.

use super::prune::Pruner;
use super::Solution;
use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::params::ParamEval;
use crate::spaces::SpaceView;
use crate::state::State;
use crate::transitions::{horizontal, vertical};
use cqp_obs::record::span_guard;
use cqp_obs::{NoopRecorder, Recorder};
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;
use std::collections::VecDeque;

/// Runs D-MAXDOI for Problem 2.
pub fn solve(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64) -> Solution {
    solve_recorded(space, conj, cmax_blocks, &NoopRecorder)
}

/// [`solve`] with one span and one [`Instrument`] per phase; counters are
/// flushed to the recorder at each phase boundary and kept in
/// [`Solution::phases`].
pub fn solve_recorded(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    recorder: &dyn Recorder,
) -> Solution {
    solve_budgeted(
        space,
        conj,
        cmax_blocks,
        recorder,
        &CancelToken::unlimited(),
    )
}

/// [`solve_recorded`] polling `token` in both phases; on a trip the best
/// incumbent among the candidate solutions found so far is returned (the
/// dispatcher tags it degraded).
pub fn solve_budgeted(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    recorder: &dyn Recorder,
    token: &CancelToken,
) -> Solution {
    let view = SpaceView::doi(space, conj);
    let eval = view.eval();

    let mut p1 = Instrument::new();
    let solutions = {
        let _span = span_guard(recorder, "find_optimal");
        let s = find_optimal_bounded(&view, cmax_blocks, &mut p1, token);
        p1.boundaries_found = s.len() as u64;
        p1.flush_to(recorder);
        s
    };

    let mut p2 = Instrument::new();
    let (prefs, _doi) = {
        let _span = span_guard(recorder, "find_max_doi");
        let r = d_find_max_doi(&view, &solutions, &mut p2, token);
        p2.flush_to(recorder);
        r
    };

    let mut inst = p1;
    inst.merge(&p2);
    let mut sol = if prefs.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(eval)
        }
    } else {
        Solution::from_prefs(eval, prefs, inst)
    };
    sol.phases = vec![("find_optimal", p1), ("find_max_doi", p2)];
    sol
}

/// Phase 1: `FINDOPTIMAL` (Figure 9).
pub fn find_optimal(view: &SpaceView<'_>, cmax: u64, inst: &mut Instrument) -> Vec<State> {
    find_optimal_bounded(view, cmax, inst, &CancelToken::unlimited())
}

/// [`find_optimal`] polling `token` once per dequeued state; on a trip the
/// candidate solutions recorded so far are returned (each is feasible).
pub fn find_optimal_bounded(
    view: &SpaceView<'_>,
    cmax: u64,
    inst: &mut Instrument,
    token: &CancelToken,
) -> Vec<State> {
    let mut solutions: Vec<State> = Vec::new();
    if view.k() == 0 {
        return solutions;
    }
    let mut rq: VecDeque<State> = VecDeque::new();
    let mut pruner = Pruner::new();
    let start = State::singleton(0);
    pruner.mark_visited(&start);
    // Queue bytes tracked incrementally: O(1) per memory observation.
    let mut rq_bytes = start.heap_bytes();
    rq.push_back(start);
    let mut solution_bytes = 0usize;

    while let Some(mut r) = rq.pop_front() {
        if token.should_stop() {
            break;
        }
        rq_bytes -= r.heap_bytes();
        inst.states_examined += 1;
        inst.param_evals += 1;
        let mut frontier = r.clone(); // R' in the paper: where Verticals expand
        if view.state_cost(&r) <= cmax {
            // Climb while feasible.
            let mut successor: Option<State> = None;
            while let Some(h) = horizontal(view, &r) {
                inst.horizontal_moves += 1;
                inst.param_evals += 1;
                if view.state_cost(&h) <= cmax {
                    r = h;
                } else {
                    successor = Some(h);
                    break;
                }
            }
            solution_bytes += r.heap_bytes();
            solutions.push(r.clone());
            match successor {
                Some(s) => frontier = s,
                None => {
                    // Climbed to the full set: nothing further to expand.
                    inst.observe_bytes(rq_bytes + solution_bytes + pruner.bytes());
                    continue;
                }
            }
        }
        for n in vertical(view, &frontier) {
            inst.vertical_moves += 1;
            if !pruner.was_visited(&n) {
                pruner.mark_visited(&n);
                rq_bytes += n.heap_bytes();
                rq.push_back(n);
            }
        }
        inst.observe_bytes(rq_bytes + solution_bytes + pruner.bytes());
    }
    solutions
}

/// Phase 2: `D_FINDMAXDOI` (Figure 9) — pick the solution with the best
/// doi, scanning groups in decreasing size with the `BestExpectedDoi`
/// early exit. In the doi space no refinement below a solution is needed:
/// everything Vertical-reachable has lower doi by construction.
pub fn d_find_max_doi(
    view: &SpaceView<'_>,
    solutions: &[State],
    inst: &mut Instrument,
    token: &CancelToken,
) -> (Vec<usize>, Doi) {
    let eval: &ParamEval<'_> = view.eval();
    let mut sorted: Vec<&State> = solutions.iter().collect();
    sorted.sort_by_key(|s| std::cmp::Reverse(s.len()));

    let mut max_doi = Doi::ZERO;
    let mut best: Vec<usize> = Vec::new();
    let mut group = view.k();
    for r in sorted {
        if token.should_stop() {
            break;
        }
        if r.len() < group {
            group = r.len();
            let best_expected = eval.best_doi_for_group(group);
            inst.param_evals += 1;
            if max_doi > best_expected {
                break;
            }
        }
        let doi = view.state_doi(r);
        inst.param_evals += 1;
        if doi > max_doi {
            max_doi = doi;
            best = r.to_pref_indices(view.order());
        }
    }
    best.sort_unstable();
    (best, max_doi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn space_with(costs: &[u64], dois: &[f64]) -> PreferenceSpace {
        PreferenceSpace::synthetic(
            costs
                .iter()
                .zip(dois)
                .map(|(&c, &d)| PrefParams {
                    doi: Doi::new(d),
                    cost_blocks: c,
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    #[test]
    fn fig6_exactness_sweep() {
        let space = space_with(&[120, 80, 60, 40, 30], &[0.9, 0.8, 0.7, 0.6, 0.5]);
        for cmax in (0..=340).step_by(5) {
            let sol = solve(&space, ConjModel::NoisyOr, cmax);
            let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
            assert_eq!(sol.doi, oracle.doi, "cmax={cmax}");
        }
    }

    #[test]
    fn swap_chains_are_reached() {
        // The case motivating the conservative R'=R extension: {p0} is
        // feasible, {p0,·} never is, and the optimum {p1,p2} is only
        // reachable through an infeasible intermediate.
        let space = space_with(&[105, 10, 10], &[0.9, 0.8, 0.7]);
        let sol = solve(&space, ConjModel::NoisyOr, 110);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 110);
        // Optimum is {p1, p2}: doi 1-0.2*0.3 = 0.94 > 0.9.
        assert_eq!(oracle.prefs, vec![1, 2]);
        assert_eq!(sol.prefs, oracle.prefs);
        assert_eq!(sol.doi, oracle.doi);
    }

    #[test]
    fn doi_space_explores_more_than_cost_space() {
        // Figure 12(a): D-MAXDOI examines far more states than the
        // cost-based algorithms on the same instance.
        let costs: Vec<u64> = (1..=12).map(|i| 10 * i as u64).collect();
        let dois: Vec<f64> = (1..=12).map(|i| 0.3 + 0.05 * i as f64).collect();
        let mut dois = dois;
        dois.reverse(); // make doi order differ from cost order
        let space = space_with(&costs, &dois);
        let d = solve(&space, ConjModel::NoisyOr, 300);
        let c = crate::algorithms::c_boundaries::solve(&space, ConjModel::NoisyOr, 300);
        assert_eq!(d.doi, c.doi, "both are exact");
        assert!(
            d.instrument.states_examined >= c.instrument.states_examined,
            "D={} C={}",
            d.instrument.states_examined,
            c.instrument.states_examined
        );
    }

    #[test]
    fn empty_and_infeasible() {
        let space = space_with(&[], &[]);
        assert!(!solve(&space, ConjModel::NoisyOr, 10).found);
        let space = space_with(&[50], &[0.5]);
        assert!(!solve(&space, ConjModel::NoisyOr, 10).found);
    }
}
