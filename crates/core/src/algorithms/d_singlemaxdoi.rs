//! Algorithm **D-SINGLEMAXDOI** (paper Figure 10) — single-phase heuristic
//! on the doi space.
//!
//! Follows C-MAXBOUNDS's greedy philosophy but keeps track of the best
//! solution on the fly instead of collecting boundaries: every examined
//! node is grown maximally with `Horizontal2` insertions (best-doi-first),
//! its doi compared against `MaxDoi`, and the round loop stops as soon as
//! `MaxDoi` exceeds `BestExpectedDoi`, the best degree any state drawn from
//! the not-yet-seeded suffix of `P` could reach.

use super::prune::Pruner;
use super::Solution;
use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::spaces::SpaceView;
use crate::state::State;
use crate::transitions::{horizontal2, vertical};
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;
use std::collections::VecDeque;

/// Greedily grows `r` by repeatedly inserting the first (highest-ranked)
/// absent entry that keeps the state within `cmax`. `banned_first`
/// optionally forbids one specific index for the *first* insertion (used by
/// D-HEURDOI's regrow step to avoid recreating the node it just shrank).
pub(crate) fn greedy_grow(
    view: &SpaceView<'_>,
    mut r: State,
    cmax: u64,
    banned_first: Option<u16>,
    inst: &mut Instrument,
) -> State {
    let mut first = true;
    loop {
        let mut grew = false;
        let candidates: Vec<(u16, State)> = horizontal2(view, &r).collect();
        for (idx, n) in candidates {
            if first && Some(idx) == banned_first {
                continue;
            }
            inst.horizontal_moves += 1;
            inst.param_evals += 1;
            if view.state_cost(&n) <= cmax {
                r = n;
                grew = true;
                break;
            }
        }
        if !grew {
            return r;
        }
        first = false;
    }
}

/// Runs D-SINGLEMAXDOI for Problem 2.
pub fn solve(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64) -> Solution {
    solve_budgeted(space, conj, cmax_blocks, &CancelToken::unlimited())
}

/// [`solve`] polling `token` between rounds and per dequeued state; on a
/// trip the best grown node found so far is returned (the dispatcher tags
/// it degraded).
pub fn solve_budgeted(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    token: &CancelToken,
) -> Solution {
    let view = SpaceView::doi(space, conj);
    let eval = view.eval();
    let k_total = view.k();
    let mut inst = Instrument::new();

    let mut max_doi = Doi::ZERO;
    let mut best: Vec<usize> = Vec::new();
    let mut best_expected = eval.best_doi_for_group(k_total); // doi(P)

    let mut k = 0usize;
    while k < k_total && max_doi <= best_expected {
        if token.should_stop() {
            break;
        }
        let seed = State::singleton(k as u16);
        let mut pruner = Pruner::new();
        pruner.mark_visited(&seed);
        let mut rq: VecDeque<State> = VecDeque::new();

        // Seeds that violate the constraint on their own can never be part
        // of a feasible state (cost is additive).
        inst.param_evals += 1;
        let mut rq_bytes = 0usize;
        if view.state_cost(&seed) <= cmax_blocks {
            rq_bytes += seed.heap_bytes();
            rq.push_back(seed);
        }

        while let Some(r) = rq.pop_front() {
            if token.should_stop() {
                break;
            }
            rq_bytes -= r.heap_bytes();
            inst.states_examined += 1;
            let grown = greedy_grow(&view, r, cmax_blocks, None, &mut inst);
            let doi = view.state_doi(&grown);
            inst.param_evals += 1;
            if doi > max_doi {
                max_doi = doi;
                best = grown.to_pref_indices(view.order());
            }
            for n in vertical(&view, &grown) {
                inst.vertical_moves += 1;
                if !n.contains(k as u16) {
                    break; // paper: "If R' ∩ {k} = {} then exit for"
                }
                if !pruner.was_visited(&n) {
                    pruner.mark_visited(&n);
                    rq_bytes += n.heap_bytes();
                    rq.push_back(n);
                }
            }
            inst.observe_bytes(rq_bytes + pruner.bytes());
        }

        // Future rounds seed from k+1 onward; bound what they can reach.
        best_expected = eval.best_expected_doi((k + 1)..k_total);
        inst.param_evals += 1;
        k += 1;
    }

    if best.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(eval)
        }
    } else {
        Solution::from_prefs(eval, best, inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn space_with(costs: &[u64], dois: &[f64]) -> PreferenceSpace {
        PreferenceSpace::synthetic(
            costs
                .iter()
                .zip(dois)
                .map(|(&c, &d)| PrefParams {
                    doi: Doi::new(d),
                    cost_blocks: c,
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    #[test]
    fn feasible_and_never_better_than_oracle() {
        let space = space_with(&[120, 80, 60, 40, 30], &[0.9, 0.8, 0.7, 0.6, 0.5]);
        for cmax in (0..=340).step_by(5) {
            let sol = solve(&space, ConjModel::NoisyOr, cmax);
            let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
            if sol.found {
                assert!(sol.cost_blocks <= cmax, "cmax={cmax}");
            }
            assert!(sol.doi <= oracle.doi, "cmax={cmax}");
        }
    }

    #[test]
    fn finds_exact_optimum_on_easy_instances() {
        // When everything fits, greedy growth reaches the full set.
        let space = space_with(&[10, 10, 10], &[0.9, 0.5, 0.3]);
        let sol = solve(&space, ConjModel::NoisyOr, 100);
        assert_eq!(sol.prefs, vec![0, 1, 2]);
    }

    #[test]
    fn quality_is_high_on_fig6() {
        // Figure 14: heuristic quality differences are minuscule.
        let space = space_with(&[120, 80, 60, 40, 30], &[0.9, 0.8, 0.7, 0.6, 0.5]);
        let sol = solve(&space, ConjModel::NoisyOr, 185);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 185);
        assert!(oracle.doi.value() - sol.doi.value() < 0.05);
    }

    #[test]
    fn infeasible_instance() {
        let space = space_with(&[100, 90], &[0.9, 0.8]);
        let sol = solve(&space, ConjModel::NoisyOr, 50);
        assert!(!sol.found);
        assert_eq!(sol.doi, Doi::ZERO);
    }

    #[test]
    fn empty_space() {
        let space = space_with(&[], &[]);
        assert!(!solve(&space, ConjModel::NoisyOr, 10).found);
    }
}
