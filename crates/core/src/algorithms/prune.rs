//! The `prune(.)` machinery of the boundary algorithms.
//!
//! The paper (Section 5.2.1) prunes parts of the graph "either because they
//! have already been visited or because they are below boundaries found"
//! (details "skipped for space reasons"). Concretely:
//!
//! * **visited** — boundary search does not store the graph, so it must not
//!   re-enqueue states; a bit-set keyed hash set catches revisits;
//! * **below a boundary** — a state `R` is reachable from a boundary `B`
//!   through Vertical transitions iff `|R| = |B|` and `R` is componentwise
//!   `≥ B` (each Vertical replaces a member by its successor); such states
//!   satisfy the constraint trivially and would produce spurious boundaries
//!   (the paper's `c2c3c5` example under Figure 6).

use crate::state::{State, StateKey};
use std::collections::{HashMap, HashSet};

/// Visited-set and boundary-dominance pruning.
#[derive(Debug, Default)]
pub struct Pruner {
    visited: HashSet<StateKey>,
    boundaries_by_size: HashMap<usize, Vec<State>>,
    boundary_bytes: usize,
}

impl Pruner {
    /// Creates an empty pruner.
    pub fn new() -> Self {
        Pruner::default()
    }

    /// Marks a state visited; returns `true` if it was new.
    pub fn mark_visited(&mut self, s: &State) -> bool {
        self.visited.insert(s.bitkey())
    }

    /// True if the state was already visited.
    pub fn was_visited(&self, s: &State) -> bool {
        self.visited.contains(&s.bitkey())
    }

    /// Registers a boundary for dominance pruning.
    pub fn add_boundary(&mut self, s: &State) {
        self.boundary_bytes += s.heap_bytes();
        self.boundaries_by_size
            .entry(s.len())
            .or_default()
            .push(s.clone());
    }

    /// True if `s` lies below (is Vertical-reachable from) a registered
    /// boundary of the same group size.
    pub fn below_boundary(&self, s: &State) -> bool {
        self.boundaries_by_size
            .get(&s.len())
            .is_some_and(|bs| bs.iter().any(|b| s.dominated_by(b)))
    }

    /// The paper's `prune(R')`: visited or below a boundary.
    pub fn prune(&self, s: &State) -> bool {
        self.was_visited(s) || self.below_boundary(s)
    }

    /// Approximate tracked bytes (visited keys + boundary states), for the
    /// Figure 13 memory accounting. O(1): byte counts are maintained
    /// incrementally so per-iteration memory observations stay cheap.
    pub fn bytes(&self) -> usize {
        self.visited.len() * std::mem::size_of::<StateKey>() + self.boundary_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(v: &[u16]) -> State {
        State::from_indices(v.to_vec())
    }

    #[test]
    fn visited_marks_once() {
        let mut p = Pruner::new();
        let s = st(&[0, 2]);
        assert!(!p.was_visited(&s));
        assert!(p.mark_visited(&s));
        assert!(!p.mark_visited(&s));
        assert!(p.prune(&s));
    }

    #[test]
    fn paper_c2c3c5_case() {
        // Boundary c2c3c4 found; c2c3c5 must be pruned (below it), while
        // c1c4c5 — not dominated — must not be.
        let mut p = Pruner::new();
        p.add_boundary(&st(&[1, 2, 3]));
        assert!(p.prune(&st(&[1, 2, 4])));
        assert!(!p.prune(&st(&[0, 3, 4])));
        // Size mismatch: never dominated.
        assert!(!p.prune(&st(&[1, 2])));
    }

    #[test]
    fn bytes_grow_with_content() {
        let mut p = Pruner::new();
        let b0 = p.bytes();
        p.mark_visited(&st(&[0]));
        p.add_boundary(&st(&[0, 1]));
        assert!(p.bytes() > b0);
    }
}
