//! Algorithm **C-MAXBOUNDS** (paper Figure 7) — fast heuristic.
//!
//! C-BOUNDARIES produces a superset of the boundaries needed: boundaries in
//! one group may be subsets of boundaries in later groups, and "wrong"
//! boundaries below other boundaries can slip through. C-MAXBOUNDS instead
//! builds **maximal boundaries** such that none is a subset of, or
//! reachable from, another: in each round it seeds with the most expensive
//! preference not yet examined and greedily grows the seed with
//! `Horizontal2` insertions ("insert as many preferences as possible before
//! storing it as a maximal boundary"), exploring Vertical variants that
//! still contain the seed. The second phase is `C_FINDMAXDOI`, unchanged.

use super::find_max_doi::c_find_max_doi;
use super::prune::Pruner;
use super::Solution;
use crate::budget::CancelToken;
use crate::instrument::Instrument;
use crate::spaces::SpaceView;
use crate::state::State;
use crate::transitions::{horizontal2, vertical};
use cqp_obs::record::span_guard;
use cqp_obs::{NoopRecorder, Recorder};
use cqp_prefs::ConjModel;
use cqp_prefspace::PreferenceSpace;
use std::collections::VecDeque;

/// Runs C-MAXBOUNDS for Problem 2.
pub fn solve(space: &PreferenceSpace, conj: ConjModel, cmax_blocks: u64) -> Solution {
    solve_recorded(space, conj, cmax_blocks, &NoopRecorder)
}

/// [`solve`] with one span and one [`Instrument`] per phase; counters are
/// flushed to the recorder at each phase boundary and kept in
/// [`Solution::phases`].
pub fn solve_recorded(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    recorder: &dyn Recorder,
) -> Solution {
    solve_budgeted(
        space,
        conj,
        cmax_blocks,
        recorder,
        &CancelToken::unlimited(),
    )
}

/// [`solve_recorded`] polling `token` in both phases; on a trip the best
/// refinement over the maximal boundaries found so far is returned (the
/// dispatcher tags it degraded).
pub fn solve_budgeted(
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax_blocks: u64,
    recorder: &dyn Recorder,
    token: &CancelToken,
) -> Solution {
    let view = SpaceView::cost(space, conj);
    let eval = view.eval();

    let mut p1 = Instrument::new();
    let max_bounds = {
        let _span = span_guard(recorder, "find_max_bounds");
        let b = find_all_max_bounds_bounded(&view, cmax_blocks, &mut p1, token);
        p1.boundaries_found = b.len() as u64;
        p1.flush_to(recorder);
        b
    };

    let mut p2 = Instrument::new();
    let prefs = {
        let _span = span_guard(recorder, "find_max_doi");
        let (mut prefs, _doi) = c_find_max_doi(&view, &max_bounds, &mut p2, token);
        if prefs.is_empty() {
            // The growth loop never records bare seeds; a single feasible
            // preference may still exist (the best one is the max-doi
            // feasible singleton).
            prefs = best_feasible_singleton(&view, cmax_blocks, &mut p2)
                .map(|p| vec![p])
                .unwrap_or_default();
        }
        p2.flush_to(recorder);
        prefs
    };

    let mut inst = p1;
    inst.merge(&p2);
    let mut sol = if prefs.is_empty() {
        Solution {
            instrument: inst,
            ..Solution::empty(eval)
        }
    } else {
        Solution::from_prefs(eval, prefs, inst)
    };
    sol.phases = vec![("find_max_bounds", p1), ("find_max_doi", p2)];
    sol
}

/// Phase 1: rounds of `FINDMAXBOUND` over seeds `c1, c2, …` (Figure 7).
pub fn find_all_max_bounds(view: &SpaceView<'_>, cmax: u64, inst: &mut Instrument) -> Vec<State> {
    find_all_max_bounds_bounded(view, cmax, inst, &CancelToken::unlimited())
}

/// [`find_all_max_bounds`] polling `token` between rounds and per dequeued
/// state; on a trip the maximal boundaries recorded so far are returned.
pub fn find_all_max_bounds_bounded(
    view: &SpaceView<'_>,
    cmax: u64,
    inst: &mut Instrument,
    token: &CancelToken,
) -> Vec<State> {
    let k_total = view.k();
    let mut max_bounds: Vec<State> = Vec::new();
    let mut last_solution_size = 0usize;
    let mut k = 0usize;
    // Paper (1-based): while k + LastSolutionSize <= K.
    while k < k_total && (k + 1) + last_solution_size <= k_total {
        if token.should_stop() {
            break;
        }
        let seed = State::singleton(k as u16);
        find_max_bound(view, k as u16, seed, cmax, &mut max_bounds, inst, token);
        last_solution_size = max_bounds.last().map_or(0, State::len);
        k += 1;
    }
    max_bounds
}

/// `FINDMAXBOUND` (Figure 7): grow maximal boundaries containing seed `k`.
#[allow(clippy::too_many_arguments)]
fn find_max_bound(
    view: &SpaceView<'_>,
    k: u16,
    seed: State,
    cmax: u64,
    max_bounds: &mut Vec<State>,
    inst: &mut Instrument,
    token: &CancelToken,
) {
    let mut rq: VecDeque<State> = VecDeque::new();
    let mut pruner = Pruner::new();
    for b in max_bounds.iter() {
        pruner.add_boundary(b);
    }
    pruner.mark_visited(&seed);
    let mut rq_bytes = seed.heap_bytes();
    rq.push_back(seed);

    while let Some(mut r) = rq.pop_front() {
        if token.should_stop() {
            break;
        }
        rq_bytes -= r.heap_bytes();
        inst.states_examined += 1;
        let r0 = r.clone();
        // Greedy growth: repeatedly take the first (most expensive)
        // Horizontal2 neighbor that satisfies the constraint.
        loop {
            let mut grew = false;
            let candidates: Vec<State> = horizontal2(view, &r).map(|(_, s)| s).collect();
            for n in candidates {
                inst.horizontal_moves += 1;
                inst.param_evals += 1;
                if view.state_cost(&n) <= cmax {
                    r = n;
                    grew = true;
                    break;
                }
            }
            if !grew {
                break;
            }
        }
        if r != r0 {
            // Record as a maximal boundary unless it is subsumed by or
            // below an already-found one.
            let redundant = max_bounds
                .iter()
                .any(|b| b.is_superset_of(&r) || r.dominated_by(b));
            if !redundant {
                pruner.add_boundary(&r);
                max_bounds.push(r.clone());
            }
        }
        // Explore Vertical variants that still contain the seed.
        for n in vertical(view, &r) {
            inst.vertical_moves += 1;
            if !n.contains(k) {
                break; // paper: "If R' ∩ {k} = {} then exit for"
            }
            if !pruner.prune(&n) {
                pruner.mark_visited(&n);
                rq_bytes += n.heap_bytes();
                rq.push_back(n);
            }
        }
        // Maximal-boundary bytes are part of pruner.bytes().
        inst.observe_bytes(rq_bytes + pruner.bytes());
    }
}

/// Fallback when no multi-preference boundary exists: the feasible
/// preference with the best doi, if any.
fn best_feasible_singleton(
    view: &SpaceView<'_>,
    cmax: u64,
    inst: &mut Instrument,
) -> Option<usize> {
    (0..view.k())
        .filter(|&p| {
            inst.param_evals += 1;
            view.eval().cost_of([p]) <= cmax
        })
        .min() // P is doi-sorted: the lowest feasible P-index has the best doi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use cqp_prefs::Doi;
    use cqp_prefspace::{PrefParams, PreferenceSpace};

    fn fig6_space() -> PreferenceSpace {
        let costs = [120u64, 80, 60, 40, 30];
        let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
        PreferenceSpace::synthetic(
            (0..5)
                .map(|i| PrefParams {
                    doi: Doi::new(dois[i]),
                    cost_blocks: costs[i],
                    size_factor: 0.5,
                })
                .collect(),
            1000.0,
            0,
        )
    }

    fn st(v: &[u16]) -> State {
        State::from_indices(v.to_vec())
    }

    #[test]
    fn figure8_max_bounds_match_paper() {
        // Paper: for cmax=185 the output is {c1c3, c2c3c4} — a strict
        // subset of FINDBOUNDARY's answer.
        let space = fig6_space();
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let mut inst = Instrument::new();
        let mb = find_all_max_bounds(&view, 185, &mut inst);
        assert_eq!(
            mb,
            vec![st(&[0, 2]), st(&[1, 2, 3])],
            "got: {:?}",
            mb.iter().map(|b| b.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn figure8_solution_matches_oracle() {
        let space = fig6_space();
        let sol = solve(&space, ConjModel::NoisyOr, 185);
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, 185);
        assert_eq!(sol.doi, oracle.doi);
        assert_eq!(sol.prefs, oracle.prefs);
    }

    #[test]
    fn always_feasible_across_sweep() {
        // C-MAXBOUNDS is a heuristic: it must always be feasible and never
        // beat the oracle.
        let space = fig6_space();
        for cmax in (0..=340).step_by(5) {
            let sol = solve(&space, ConjModel::NoisyOr, cmax);
            let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
            if sol.found {
                assert!(sol.cost_blocks <= cmax, "cmax={cmax}");
            }
            assert!(sol.doi <= oracle.doi, "cmax={cmax}");
        }
    }

    #[test]
    fn single_feasible_pref_is_found() {
        // Only the cheapest preference fits: the greedy growth records no
        // multi-preference bound, and the singleton fallback must kick in.
        let space = fig6_space();
        let sol = solve(&space, ConjModel::NoisyOr, 35);
        assert!(sol.found);
        assert_eq!(sol.prefs, vec![4]); // cost 30
        assert_eq!(sol.cost_blocks, 30);
    }

    #[test]
    fn empty_space() {
        let space = PreferenceSpace::synthetic(vec![], 10.0, 1);
        let sol = solve(&space, ConjModel::NoisyOr, 100);
        assert!(!sol.found);
    }
}
