//! The CQP problem family (paper Table 1).
//!
//! | Problem | doi          | cost          | size                  |
//! |---------|--------------|---------------|-----------------------|
//! | 1       | MAX          |               | smin ≤ size ≤ smax    |
//! | 2       | MAX          | cost ≤ cmax   |                       |
//! | 3       | MAX          | cost ≤ cmax   | smin ≤ size ≤ smax    |
//! | 4       | doi ≥ dmin   | MIN           |                       |
//! | 5       | doi ≥ dmin   | MIN           | smin ≤ size ≤ smax    |
//! | 6       |              | MIN           | smin ≤ size ≤ smax    |
//!
//! "Not all conceivable optimization problems are meaningful within the CQP
//! family" (Section 4.1): doi is maximized or lower-bounded, cost is
//! minimized or upper-bounded, and size always keeps a lower bound (default
//! 1 — empty answers are undesirable) and possibly an upper one.

use crate::params::QueryParams;
use cqp_prefs::Doi;

/// Which parameter a CQP problem optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize the degree of interest (Problems 1–3).
    MaxDoi,
    /// Minimize the execution cost (Problems 4–6).
    MinCost,
}

/// Range constraints on the non-optimized parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// `cost ≤ cmax` (blocks), if bounded.
    pub cost_max_blocks: Option<u64>,
    /// `doi ≥ dmin`, if bounded.
    pub doi_min: Option<Doi>,
    /// `size ≥ smin`. The paper's default lower bound is 1 (non-empty
    /// answers); set to 0 to disable.
    pub size_min: f64,
    /// `size ≤ smax`, if bounded.
    pub size_max: Option<f64>,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            cost_max_blocks: None,
            doi_min: None,
            size_min: 1.0,
            size_max: None,
        }
    }
}

impl Constraints {
    /// True when the parameters satisfy every constraint.
    pub fn satisfied_by(&self, p: &QueryParams) -> bool {
        if let Some(cmax) = self.cost_max_blocks {
            if p.cost_blocks > cmax {
                return false;
            }
        }
        if let Some(dmin) = self.doi_min {
            if p.doi < dmin {
                return false;
            }
        }
        if p.size_rows < self.size_min {
            return false;
        }
        if let Some(smax) = self.size_max {
            if p.size_rows > smax {
                return false;
            }
        }
        true
    }

    /// True when the *down-closed* constraints hold — the ones that adding
    /// preferences can only break (cost ≤ cmax grows; size ≥ smin shrinks).
    pub fn down_closed_ok(&self, p: &QueryParams) -> bool {
        if let Some(cmax) = self.cost_max_blocks {
            if p.cost_blocks > cmax {
                return false;
            }
        }
        p.size_rows >= self.size_min
    }

    /// True when the *up-closed* constraints hold — the ones that adding
    /// preferences can only help (doi ≥ dmin grows; size ≤ smax shrinks).
    pub fn up_closed_ok(&self, p: &QueryParams) -> bool {
        if let Some(dmin) = self.doi_min {
            if p.doi < dmin {
                return false;
            }
        }
        if let Some(smax) = self.size_max {
            if p.size_rows > smax {
                return false;
            }
        }
        true
    }
}

/// The numbered problem kinds of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// Max doi, size band.
    P1,
    /// Max doi, cost bound — the problem Section 5 develops in detail.
    P2,
    /// Max doi, cost bound and size band.
    P3,
    /// Min cost, doi lower bound.
    P4,
    /// Min cost, doi lower bound and size band.
    P5,
    /// Min cost, size band.
    P6,
}

/// A fully specified CQP problem: objective + constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemSpec {
    /// The optimized parameter.
    pub objective: Objective,
    /// Bounds on the others.
    pub constraints: Constraints,
}

impl ProblemSpec {
    /// Problem 1: `MAX doi` s.t. `smin ≤ size ≤ smax`.
    pub fn p1(size_min: f64, size_max: f64) -> Self {
        ProblemSpec {
            objective: Objective::MaxDoi,
            constraints: Constraints {
                size_min,
                size_max: Some(size_max),
                ..Default::default()
            },
        }
    }

    /// Problem 2: `MAX doi` s.t. `cost ≤ cmax` (in blocks).
    pub fn p2(cost_max_blocks: u64) -> Self {
        ProblemSpec {
            objective: Objective::MaxDoi,
            constraints: Constraints {
                cost_max_blocks: Some(cost_max_blocks),
                size_min: 0.0,
                ..Default::default()
            },
        }
    }

    /// Problem 3: `MAX doi` s.t. `cost ≤ cmax ∧ smin ≤ size ≤ smax`.
    pub fn p3(cost_max_blocks: u64, size_min: f64, size_max: f64) -> Self {
        ProblemSpec {
            objective: Objective::MaxDoi,
            constraints: Constraints {
                cost_max_blocks: Some(cost_max_blocks),
                size_min,
                size_max: Some(size_max),
                ..Default::default()
            },
        }
    }

    /// Problem 4: `MIN cost` s.t. `doi ≥ dmin`.
    pub fn p4(doi_min: Doi) -> Self {
        ProblemSpec {
            objective: Objective::MinCost,
            constraints: Constraints {
                doi_min: Some(doi_min),
                size_min: 0.0,
                ..Default::default()
            },
        }
    }

    /// Problem 5: `MIN cost` s.t. `doi ≥ dmin ∧ smin ≤ size ≤ smax`.
    pub fn p5(doi_min: Doi, size_min: f64, size_max: f64) -> Self {
        ProblemSpec {
            objective: Objective::MinCost,
            constraints: Constraints {
                doi_min: Some(doi_min),
                size_min,
                size_max: Some(size_max),
                ..Default::default()
            },
        }
    }

    /// Problem 6: `MIN cost` s.t. `smin ≤ size ≤ smax`.
    pub fn p6(size_min: f64, size_max: f64) -> Self {
        ProblemSpec {
            objective: Objective::MinCost,
            constraints: Constraints {
                size_min,
                size_max: Some(size_max),
                ..Default::default()
            },
        }
    }

    /// Classifies this spec into the Table 1 numbering, if it matches one.
    pub fn kind(&self) -> Option<ProblemKind> {
        let c = &self.constraints;
        let has_cost = c.cost_max_blocks.is_some();
        let has_doi = c.doi_min.is_some();
        let has_size = c.size_max.is_some();
        match (self.objective, has_cost, has_doi, has_size) {
            (Objective::MaxDoi, false, false, true) => Some(ProblemKind::P1),
            (Objective::MaxDoi, true, false, false) => Some(ProblemKind::P2),
            (Objective::MaxDoi, true, false, true) => Some(ProblemKind::P3),
            (Objective::MinCost, false, true, false) => Some(ProblemKind::P4),
            (Objective::MinCost, false, true, true) => Some(ProblemKind::P5),
            (Objective::MinCost, false, false, true) => Some(ProblemKind::P6),
            _ => None,
        }
    }

    /// True when the parameters satisfy the constraints.
    pub fn feasible(&self, p: &QueryParams) -> bool {
        self.constraints.satisfied_by(p)
    }

    /// True when candidate parameters `a` are better than `b` under the
    /// objective (ties broken toward lower cost for MaxDoi, higher doi for
    /// MinCost, then smaller size distance — fully deterministic).
    pub fn better(&self, a: &QueryParams, b: &QueryParams) -> bool {
        match self.objective {
            Objective::MaxDoi => match a.doi.cmp(&b.doi) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => a.cost_blocks < b.cost_blocks,
            },
            Objective::MinCost => match a.cost_blocks.cmp(&b.cost_blocks) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a.doi > b.doi,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(doi: f64, cost: u64, size: f64) -> QueryParams {
        QueryParams {
            doi: Doi::new(doi),
            cost_blocks: cost,
            size_rows: size,
        }
    }

    #[test]
    fn table1_kinds_roundtrip() {
        assert_eq!(ProblemSpec::p1(1.0, 50.0).kind(), Some(ProblemKind::P1));
        assert_eq!(ProblemSpec::p2(400).kind(), Some(ProblemKind::P2));
        assert_eq!(
            ProblemSpec::p3(400, 1.0, 50.0).kind(),
            Some(ProblemKind::P3)
        );
        assert_eq!(ProblemSpec::p4(Doi::new(0.5)).kind(), Some(ProblemKind::P4));
        assert_eq!(
            ProblemSpec::p5(Doi::new(0.5), 1.0, 50.0).kind(),
            Some(ProblemKind::P5)
        );
        assert_eq!(ProblemSpec::p6(1.0, 50.0).kind(), Some(ProblemKind::P6));
    }

    #[test]
    fn feasibility_checks_each_bound() {
        let p3 = ProblemSpec::p3(100, 2.0, 20.0);
        assert!(p3.feasible(&params(0.5, 100, 10.0)));
        assert!(!p3.feasible(&params(0.5, 101, 10.0))); // cost
        assert!(!p3.feasible(&params(0.5, 50, 1.0))); // size_min
        assert!(!p3.feasible(&params(0.5, 50, 30.0))); // size_max
        let p4 = ProblemSpec::p4(Doi::new(0.7));
        assert!(p4.feasible(&params(0.7, 999, 5.0)));
        assert!(!p4.feasible(&params(0.69, 1, 5.0)));
    }

    #[test]
    fn closed_direction_split() {
        let c = Constraints {
            cost_max_blocks: Some(100),
            doi_min: Some(Doi::new(0.5)),
            size_min: 2.0,
            size_max: Some(20.0),
        };
        let p = params(0.6, 80, 10.0);
        assert!(c.down_closed_ok(&p) && c.up_closed_ok(&p));
        assert!(!c.down_closed_ok(&params(0.6, 120, 10.0)));
        assert!(!c.down_closed_ok(&params(0.6, 80, 1.0)));
        assert!(!c.up_closed_ok(&params(0.4, 80, 10.0)));
        assert!(!c.up_closed_ok(&params(0.6, 80, 30.0)));
        // satisfied = down ∧ up
        assert_eq!(
            c.satisfied_by(&p),
            c.down_closed_ok(&p) && c.up_closed_ok(&p)
        );
    }

    #[test]
    fn better_breaks_ties_deterministically() {
        let p2 = ProblemSpec::p2(100);
        assert!(p2.better(&params(0.9, 50, 5.0), &params(0.8, 10, 5.0)));
        assert!(p2.better(&params(0.9, 10, 5.0), &params(0.9, 50, 5.0)));
        assert!(!p2.better(&params(0.9, 50, 5.0), &params(0.9, 50, 5.0)));
        let p4 = ProblemSpec::p4(Doi::new(0.1));
        assert!(p4.better(&params(0.2, 10, 5.0), &params(0.9, 20, 5.0)));
        assert!(p4.better(&params(0.9, 10, 5.0), &params(0.2, 10, 5.0)));
    }

    #[test]
    fn default_size_min_is_one() {
        let c = Constraints::default();
        assert!((c.size_min - 1.0).abs() < 1e-12);
        assert!(!c.satisfied_by(&params(0.5, 10, 0.5)));
        assert!(c.satisfied_by(&params(0.5, 10, 1.0)));
    }
}
