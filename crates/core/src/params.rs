//! Query parameters of a state: doi, cost, size (paper Section 4.3).

use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;

/// The three query parameters the paper tracks per personalized query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryParams {
    /// Degree of interest `doi(Qx) = r(doi(p1), …, doi(pL))` (Formula 5).
    pub doi: Doi,
    /// Execution cost `cost(Qx) = Σ cost(qi)` in blocks (Formula 6).
    pub cost_blocks: u64,
    /// Estimated result size in rows (shrinks as preferences are added,
    /// Formula 8).
    pub size_rows: f64,
}

/// Evaluates the parameters of preference subsets (given by P-indices).
///
/// All three evaluations are incremental-friendly: doi composes via the
/// conjunction model, cost is a plain sum, size a product of factors —
/// "incremental computation of query parameters is possible" (Section 4.3).
#[derive(Debug, Clone, Copy)]
pub struct ParamEval<'a> {
    space: &'a PreferenceSpace,
    conj: ConjModel,
}

impl<'a> ParamEval<'a> {
    /// Creates an evaluator over a preference space.
    pub fn new(space: &'a PreferenceSpace, conj: ConjModel) -> Self {
        ParamEval { space, conj }
    }

    /// The underlying preference space.
    pub fn space(&self) -> &'a PreferenceSpace {
        self.space
    }

    /// The conjunction model used for doi.
    pub fn conj_model(&self) -> ConjModel {
        self.conj
    }

    /// Number of preferences `K`.
    pub fn k(&self) -> usize {
        self.space.k()
    }

    /// doi of a subset of P-indices.
    pub fn doi_of(&self, prefs: impl IntoIterator<Item = usize>) -> Doi {
        let dois: Vec<Doi> = prefs.into_iter().map(|i| self.space.doi(i)).collect();
        self.conj.conj(&dois)
    }

    /// Cost (in blocks) of a subset of P-indices. The empty subset is the
    /// unpersonalized query and costs `base_cost_blocks`.
    pub fn cost_of(&self, prefs: impl IntoIterator<Item = usize>) -> u64 {
        let mut sum = 0u64;
        let mut any = false;
        for i in prefs {
            sum += self.space.cost_blocks(i);
            any = true;
        }
        if any {
            sum
        } else {
            self.space.base_cost_blocks
        }
    }

    /// Estimated result size of a subset of P-indices.
    pub fn size_of(&self, prefs: impl IntoIterator<Item = usize>) -> f64 {
        prefs.into_iter().fold(self.space.base_rows, |size, i| {
            size * self.space.size_factor(i)
        })
    }

    /// All three parameters of a subset of P-indices.
    pub fn params_of(&self, prefs: &[usize]) -> QueryParams {
        QueryParams {
            doi: self.doi_of(prefs.iter().copied()),
            cost_blocks: self.cost_of(prefs.iter().copied()),
            size_rows: self.size_of(prefs.iter().copied()),
        }
    }

    /// Upper bound on the doi of any subset drawn from the given P-indices
    /// (the conjunction of *all* of them — Formula 4 makes this maximal).
    pub fn best_expected_doi(&self, prefs: impl IntoIterator<Item = usize>) -> Doi {
        self.doi_of(prefs)
    }

    /// Upper bound on the doi of any subset of size `n`: the conjunction of
    /// the `n` highest-doi preferences (P is doi-sorted, so the first `n`).
    pub fn best_doi_for_group(&self, n: usize) -> Doi {
        self.doi_of(0..n.min(self.space.k()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_prefspace::PrefParams;

    fn space() -> PreferenceSpace {
        PreferenceSpace::synthetic(
            vec![
                PrefParams {
                    doi: Doi::new(0.8),
                    cost_blocks: 5,
                    size_factor: 0.2,
                },
                PrefParams {
                    doi: Doi::new(0.7),
                    cost_blocks: 12,
                    size_factor: 1.0,
                },
                PrefParams {
                    doi: Doi::new(0.5),
                    cost_blocks: 10,
                    size_factor: 0.3,
                },
            ],
            10.0,
            3,
        )
    }

    #[test]
    fn doi_composes_noisy_or() {
        let s = space();
        let eval = ParamEval::new(&s, ConjModel::NoisyOr);
        // 1 - (1-0.8)(1-0.5) = 0.9
        let d = eval.doi_of([0usize, 2]);
        assert!((d.value() - 0.9).abs() < 1e-12);
        assert_eq!(eval.doi_of([]), Doi::ZERO);
    }

    #[test]
    fn cost_sums_with_base_fallback() {
        let s = space();
        let eval = ParamEval::new(&s, ConjModel::NoisyOr);
        assert_eq!(eval.cost_of([0usize, 1]), 17);
        // Empty set: the unpersonalized query (base cost).
        assert_eq!(eval.cost_of([]), 3);
    }

    #[test]
    fn size_multiplies_factors() {
        let s = space();
        let eval = ParamEval::new(&s, ConjModel::NoisyOr);
        assert!((eval.size_of([0usize]) - 2.0).abs() < 1e-12);
        assert!((eval.size_of([0usize, 2]) - 0.6).abs() < 1e-12);
        assert!((eval.size_of([]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn params_of_bundles_all_three() {
        let s = space();
        let eval = ParamEval::new(&s, ConjModel::NoisyOr);
        let p = eval.params_of(&[0, 1]);
        assert_eq!(p.cost_blocks, 17);
        assert!((p.size_rows - 2.0).abs() < 1e-12);
        assert!((p.doi.value() - (1.0 - 0.2 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn group_doi_bound_uses_top_prefs() {
        let s = space();
        let eval = ParamEval::new(&s, ConjModel::NoisyOr);
        let b2 = eval.best_doi_for_group(2);
        // Top two dois: 0.8 and 0.7 -> 1 - 0.2×0.3 = 0.94
        assert!((b2.value() - 0.94).abs() < 1e-12);
        // Bound is monotone in n.
        assert!(eval.best_doi_for_group(3) >= b2);
        assert!(eval.best_doi_for_group(9) == eval.best_doi_for_group(3));
    }
}
