//! # cqp-sys
//!
//! A zero-dependency Linux syscall shim, in the spirit of the other
//! vendored crates under `crates/shims/`: the build environment has no
//! registry access, so the handful of raw syscalls the epoll serving
//! backend needs (`epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`,
//! `fcntl` non-blocking toggles, and `getrlimit`/`setrlimit` for the fd
//! budget) are declared directly against the always-linked system libc
//! and wrapped behind a safe API here.
//!
//! Design rules:
//!
//! * Every file descriptor this crate creates is an [`OwnedFd`] — closed
//!   on drop, never leaked, never double-closed.
//! * Every raw return code goes through [`cvt`], so failures surface as
//!   `io::Error::last_os_error()` with the real errno.
//! * No `unsafe` escapes the module: callers see [`Epoll`], [`EventFd`],
//!   [`Interest`], [`Event`], and a few free functions.
//!
//! Linux-only by design (the serving tier targets Linux); the workspace's
//! threaded backend remains the portable fallback.

#![cfg(target_os = "linux")]

use std::ffi::{c_int, c_uint, c_ulong, c_void};
use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Raw libc surface. Constants are the x86_64/aarch64 Linux values (identical
// on both for everything used here).
// ---------------------------------------------------------------------------

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

/// `struct epoll_event`. The kernel ABI packs this to 12 bytes on x86_64
/// and keeps natural alignment everywhere else — mirror glibc's layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    cur: c_ulong,
    max: c_ulong,
}

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;
/// `SIG_ERR` — `signal(2)`'s failure sentinel (`(sighandler_t) -1`).
const SIG_ERR: usize = usize::MAX;

extern "C" {
    fn signal(signum: c_int, handler: usize) -> usize;
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// Converts a `-1`-on-error return into `io::Error::last_os_error()`.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret == -1 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Safe API.
// ---------------------------------------------------------------------------

/// Which readiness a registration subscribes to. Read interest includes
/// peer half-close (`EPOLLRDHUP`) so an idle keep-alive client hanging up
/// wakes the reactor; `EPOLLERR`/`EPOLLHUP` are always delivered by the
/// kernel regardless of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// No readiness (registration kept, e.g. while a request executes).
    pub const NONE: Interest = Interest(0);
    /// Readable (or peer closed its write half).
    pub const READ: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Writable.
    pub const WRITE: Interest = Interest(EPOLLOUT);

    /// The union of two interests.
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `token` the fd was registered with.
    pub token: u64,
    /// Read readiness (data buffered, or EOF observable).
    pub readable: bool,
    /// Write readiness.
    pub writable: bool,
    /// Error or hangup condition — treat the fd as dead.
    pub error: bool,
    /// The peer closed its write half (`EPOLLRDHUP`): reads will drain
    /// remaining bytes then return 0.
    pub read_closed: bool,
}

/// A level-triggered epoll instance owning its fd.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
    raw: Vec<EpollEvent>,
    out: Vec<Event>,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, data) = (self.events, self.data);
        write!(f, "EpollEvent {{ events: {events:#x}, data: {data} }}")
    }
}

impl Epoll {
    /// A new epoll instance sized to report up to `capacity` events per
    /// [`Epoll::wait`] call.
    pub fn with_capacity(capacity: usize) -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            out: Vec::with_capacity(capacity.max(1)),
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.0,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes an existing registration's interest (token may change too).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes a registration. Harmless to call right before closing the
    /// fd (close would drop it implicitly, but explicit keeps the set's
    /// bookkeeping honest under fd reuse).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks until readiness or `timeout` (`None` = indefinitely),
    /// returning the ready events. A signal interruption returns an empty
    /// slice — callers are loops and simply re-wait.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<&[Event]> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 0.5 ms deadline does not become a busy-loop.
            Some(d) => d.as_millis().saturating_add(1).min(c_int::MAX as u128) as c_int,
        };
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                self.raw.as_mut_ptr(),
                self.raw.len() as c_int,
                timeout_ms,
            )
        };
        let n = match cvt(n) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        self.out.clear();
        for ev in &self.raw[..n] {
            let (events, data) = (ev.events, ev.data);
            self.out.push(Event {
                token: data,
                readable: events & EPOLLIN != 0,
                writable: events & EPOLLOUT != 0,
                error: events & (EPOLLERR | EPOLLHUP) != 0,
                read_closed: events & EPOLLRDHUP != 0,
            });
        }
        Ok(&self.out)
    }
}

/// A non-blocking eventfd: a cross-thread doorbell for waking a reactor
/// parked in [`Epoll::wait`]. `notify` is cheap and safe from any thread;
/// the owning reactor registers it readable and [`EventFd::drain`]s on
/// wakeup.
#[derive(Debug)]
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// A fresh counter at zero.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Rings the doorbell. A saturated counter (`EAGAIN`) already has a
    /// wakeup pending, so the error is deliberately ignored.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe {
            write(
                self.fd.as_raw_fd(),
                &one as *const u64 as *const c_void,
                std::mem::size_of::<u64>(),
            );
        }
    }

    /// Consumes all pending wakeups; returns true when at least one was
    /// pending.
    pub fn drain(&self) -> bool {
        let mut value: u64 = 0;
        let n = unsafe {
            read(
                self.fd.as_raw_fd(),
                &mut value as *mut u64 as *mut c_void,
                std::mem::size_of::<u64>(),
            )
        };
        n == std::mem::size_of::<u64>() as isize && value > 0
    }
}

/// Sets or clears `O_NONBLOCK` on any fd via `fcntl`.
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL) })?;
    let flags = if nonblocking {
        flags | O_NONBLOCK
    } else {
        flags & !O_NONBLOCK
    };
    cvt(unsafe { fcntl(fd, F_SETFL, flags) })?;
    Ok(())
}

/// The flag [`install_termination_flag`] arms. A static is the only
/// state an async-signal-safe handler may touch; an atomic store is one
/// of the few operations allowed inside one.
static TERMINATION_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_termination_signal(_signum: c_int) {
    TERMINATION_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that set a process-wide flag
/// instead of killing the process, so daemons can drain and exit
/// cleanly. Poll the flag with [`termination_requested`]. Idempotent.
pub fn install_termination_flag() -> io::Result<()> {
    for sig in [SIGTERM, SIGINT] {
        let handler = on_termination_signal as extern "C" fn(c_int) as usize;
        if unsafe { signal(sig, handler) } == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Whether SIGTERM or SIGINT has been received since
/// [`install_termination_flag`].
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(std::sync::atomic::Ordering::SeqCst)
}

/// The process's `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = RLimit { cur: 0, max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    Ok((lim.cur, lim.max))
}

/// Raises the soft `RLIMIT_NOFILE` toward `min(target, hard)`; returns
/// the resulting soft limit. Never lowers.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    let wanted = target.min(hard);
    if wanted <= soft {
        return Ok(soft);
    }
    let lim = RLimit {
        cur: wanted as c_ulong,
        max: hard as c_ulong,
    };
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    Ok(wanted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_notifies_and_drains() {
        let efd = EventFd::new().unwrap();
        assert!(!efd.drain(), "fresh eventfd must be empty");
        efd.notify();
        efd.notify();
        assert!(efd.drain(), "two notifies coalesce into one pending wakeup");
        assert!(!efd.drain(), "drain consumes the counter");
    }

    #[test]
    fn epoll_reports_eventfd_readiness_and_timeouts() {
        let mut ep = Epoll::with_capacity(8).unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw_fd(), 7, Interest::READ).unwrap();
        // Nothing pending: a short wait times out empty.
        let events = ep.wait(Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());
        efd.notify();
        let events = ep.wait(Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Level-triggered: still readable until drained.
        let events = ep.wait(Some(Duration::from_millis(5))).unwrap();
        assert_eq!(events.len(), 1);
        efd.drain();
        let events = ep.wait(Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());
        ep.delete(efd.raw_fd()).unwrap();
    }

    #[test]
    fn epoll_drives_a_nonblocking_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut ep = Epoll::with_capacity(8).unwrap();
        ep.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let events = ep.wait(Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (mut server_side, _) = listener.accept().unwrap();
        set_nonblocking(server_side.as_raw_fd(), true).unwrap();
        let mut buf = [0u8; 16];
        let err = server_side.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        ep.add(server_side.as_raw_fd(), 2, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();
        let events = ep.wait(Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        assert_eq!(server_side.read(&mut buf).unwrap(), 4);

        // Interest can be narrowed to none and restored.
        ep.modify(server_side.as_raw_fd(), 2, Interest::NONE)
            .unwrap();
        client.write_all(b"x").unwrap();
        let events = ep.wait(Some(Duration::from_millis(20))).unwrap();
        assert!(events.iter().all(|e| e.token != 2));
        ep.modify(server_side.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        let events = ep.wait(Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        // Peer close surfaces as read_closed/readable (EOF drains as 0).
        drop(client);
        let events = ep.wait(Some(Duration::from_millis(1000))).unwrap();
        let ev = events.iter().find(|e| e.token == 2).unwrap();
        assert!(ev.readable || ev.read_closed || ev.error);
        ep.delete(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn termination_flag_arms_on_sigterm() {
        install_termination_flag().unwrap();
        assert!(!termination_requested(), "flag must start clear");
        // Deliver a real SIGTERM to ourselves; the handler turns it
        // into a flag instead of killing the test harness.
        let status = std::process::Command::new("kill")
            .args(["-TERM", &std::process::id().to_string()])
            .status()
            .expect("spawn kill");
        assert!(status.success());
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !termination_requested() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(termination_requested(), "SIGTERM should set the flag");
    }

    #[test]
    fn nofile_limits_are_queryable_and_raise_is_monotone() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Raising to the current soft limit is a no-op returning it.
        assert_eq!(raise_nofile_limit(soft).unwrap(), soft);
        // Raising toward the hard limit never exceeds it.
        let raised = raise_nofile_limit(hard + 1024).unwrap();
        assert!(raised <= hard);
    }
}
