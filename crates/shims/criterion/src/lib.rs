//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], `criterion_group!` / `criterion_main!`, [`black_box`])
//! with a plain timed-iteration runner: each benchmark runs a short warmup,
//! then `sample_size` timed samples, and prints mean/min/max per iteration.
//! No statistics engine, plotting, or HTML reports — just numbers on stdout,
//! which is what an offline container can support.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Labels a benchmark `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Labels a benchmark by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            f.write_str(&self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the body.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`: one untimed warmup iteration, then `sample_size`
    /// timed samples (one iteration each — workloads here are milliseconds
    /// and up, far above timer resolution).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, R>(&mut self, id: BenchmarkId, input: &I, routine: R)
    where
        R: FnOnce(&mut Bencher<'_>, &I),
    {
        let mut results = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: self.sample_size,
            results: &mut results,
        };
        routine(&mut b, input);
        self.report(&id.to_string(), &results);
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, routine: R)
    where
        R: FnOnce(&mut Bencher<'_>),
    {
        let mut results = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: self.sample_size,
            results: &mut results,
        };
        routine(&mut b);
        self.report(&id.to_string(), &results);
    }

    /// Finishes the group (reporting happens per-benchmark; kept for API
    /// compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        println!(
            "{}/{id}: mean {} [min {} .. max {}] ({} samples)",
            self.name,
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Benchmark runner and entry point handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// A runner with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group (default 100 samples, as upstream).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, x| {
            b.iter(|| {
                runs += 1;
                black_box(*x * 2)
            })
        });
        group.finish();
        // 1 warmup + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("algo", 16).to_string(), "algo/16");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
