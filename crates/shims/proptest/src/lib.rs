//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests use —
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, integer/float
//! range strategies, tuple strategies, `prop::collection::{vec, btree_set}`,
//! [`any`], and the `prop_assert*` macros — on top of a small deterministic
//! PRNG. Failing cases are reported with their case number; there is no
//! shrinking (a failing input is printed via `Debug` where available by the
//! assertion message itself).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 stream used to generate cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits (the shared workspace splitmix64 stream).
    pub fn next_u64(&mut self) -> u64 {
        rand::splitmix64(&mut self.state)
    }

    /// Uniform draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 candidates", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-domain strategies (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy over a type's full domain.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Sizes for collection strategies (`usize`, `Range<usize>`, or
/// `RangeInclusive<usize>`).
pub trait IntoSizeRange {
    /// Draws a target size.
    fn draw_size(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn draw_size(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn draw_size(&self, rng: &mut TestRng) -> usize {
        self.clone().generate(rng)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn draw_size(&self, rng: &mut TestRng) -> usize {
        self.clone().generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{IntoSizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A vector of `size` draws from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `vec(element, size)` — vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A set of at most `size` draws from `element` (duplicates collapse,
    /// as in upstream proptest's btree_set strategy).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `btree_set(element, size)` — sets whose target size is drawn from
    /// `size`.
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: IntoSizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw_size(rng);
            let mut set = BTreeSet::new();
            // Bounded extra attempts: small element domains may not be able
            // to fill the requested size.
            let mut attempts = 0;
            while set.len() < n && attempts < 4 * n + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure reason.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test seed derived from the property name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };

    /// The `prop::` namespace proptest users reach collections through.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs properties over generated cases.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, y in any::<u64>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

// Re-export under the path used by `prop::collection::...` when tests do
// `use proptest::prelude::*`.
pub use prelude::prop;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0u16..5, f in 0.5f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.5..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vec(v in prop::collection::vec((1u64..=19, 1u64..=60), 1..=9)) {
            prop_assert!(!v.is_empty() && v.len() <= 9);
            for (a, b) in v {
                prop_assert!((1..=19).contains(&a) && (1..=60).contains(&b));
            }
        }

        #[test]
        fn sets_respect_domain(s in prop::collection::btree_set(0u16..9, 0..=9usize), seed in any::<u64>()) {
            prop_assert!(s.len() <= 9);
            let _ = seed;
            for x in s {
                prop_assert!(x < 9);
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = (1u64..=4).prop_map(|x| x * 2);
        let mut rng = TestRng::new(1);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v % 2 == 0 && (2..=8).contains(&v));
        }
    }
}
