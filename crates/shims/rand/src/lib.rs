//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! This workspace must build in environments with no registry access, so the
//! subset of `rand` it actually uses is reimplemented here behind the same
//! paths: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a different
//! stream than upstream `StdRng` (which is explicitly *not* guaranteed
//! stable across rand versions either), but with the same contract the
//! workspace relies on: high-quality, deterministic output for a given
//! `seed_from_u64` value.

use std::ops::{Range, RangeInclusive};

/// One step of the splitmix64 stream (Steele, Lea & Flood): advances
/// `state` by the golden-ratio increment and returns the finalized mix.
/// This is THE workspace splitmix64 — every seeded stream (loadgen, chaos,
/// fault plans, trace IDs, the test shims) derives from this function or
/// [`splitmix64_mix`], so deterministic fixtures stay bit-identical no
/// matter which crate drew them.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stateless form: one splitmix64 step over a copy of `x`. Callers
/// that just need a hash-quality scramble of an existing value (trace
/// IDs, chaos case derivation, fault-plan coin flips) use this directly;
/// it is bit-identical to `splitmix64(&mut x.clone())`.
pub fn splitmix64_mix(mut x: u64) -> u64 {
    splitmix64(&mut x)
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the `Standard` distribution of upstream `rand`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded integer sampling (Lemire's method would need
/// 128-bit widening everywhere; simple modulo bias is fine at the scales
/// this workspace draws — bounds are tiny next to 2^64).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded via [`splitmix64`] as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let n: i64 = 1970 + rng.gen_range(0..35) as i64;
            assert!((1970..2005).contains(&n));
        }
    }

    #[test]
    fn floats_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}
