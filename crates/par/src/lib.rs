//! # cqp-par
//!
//! A zero-dependency work-stealing thread pool for the CQP workspace,
//! `std`-only in the spirit of the vendored shims (`crates/shims/*`): the
//! build environment has no registry access, so rayon-style fan-out is
//! provided here in ~200 lines.
//!
//! Design:
//!
//! * Each `map` call distributes task indices over per-worker deques in
//!   contiguous blocks. A worker pops its own deque from the **back**
//!   (LIFO, cache-friendly) and, when empty, steals from other workers'
//!   **front** (FIFO — stealing the oldest, largest-remaining prefix of a
//!   block keeps contention low).
//! * Workers are scoped threads (`std::thread::scope`), so tasks may borrow
//!   non-`'static` data such as a shared `Database` or `Obs`.
//! * With `threads == 1` (or a single item) the pool runs tasks inline on
//!   the caller's thread — zero overhead and the determinism baseline the
//!   parallel paths are tested against.
//! * Results are returned **in input order** regardless of which worker ran
//!   which task, so parallel callers observe sequential output shapes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Hard cap on pool width; far above any machine this workspace targets.
pub const MAX_WORKERS: usize = 32;

/// Static span names for per-worker tracer roots: `worker00`..`worker31`.
///
/// `Recorder::span_enter` takes `&'static str`, so worker spans come from
/// this fixed table rather than a formatted string.
const WORKER_SPAN_NAMES: [&str; MAX_WORKERS] = [
    "worker00", "worker01", "worker02", "worker03", "worker04", "worker05", "worker06", "worker07",
    "worker08", "worker09", "worker10", "worker11", "worker12", "worker13", "worker14", "worker15",
    "worker16", "worker17", "worker18", "worker19", "worker20", "worker21", "worker22", "worker23",
    "worker24", "worker25", "worker26", "worker27", "worker28", "worker29", "worker30", "worker31",
];

/// The span name for worker `w` (clamped to the table).
pub fn worker_span_name(w: usize) -> &'static str {
    WORKER_SPAN_NAMES[w.min(MAX_WORKERS - 1)]
}

/// The number of hardware threads, or 1 when it cannot be determined.
pub fn available_parallelism() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Per-task context handed to [`ThreadPool::run`] closures.
#[derive(Debug, Clone, Copy)]
pub struct WorkerCtx {
    /// Worker index in `0..threads`.
    pub worker: usize,
    /// Static span name for this worker (see [`worker_span_name`]).
    pub span_name: &'static str,
}

/// A fixed-width work-stealing pool. Threads are spawned per call (scoped),
/// not kept resident: CQP fan-outs are coarse (whole searches, whole grid
/// cells), so spawn cost is noise next to task cost, and scoped spawning is
/// what lets tasks borrow the shared database and recorder.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
}

impl ThreadPool {
    /// A pool of `threads` workers, clamped to `1..=MAX_WORKERS`.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.clamp(1, MAX_WORKERS),
            tasks_executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tasks completed across this pool's lifetime.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed.load(Ordering::Relaxed)
    }

    /// Successful steals across this pool's lifetime (0 in inline mode).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Applies `f` to every item, in parallel, returning results in input
    /// order. `f` receives `(item_index, item)`.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run(items, |_ctx, i, item| f(i, item))
    }

    /// [`ThreadPool::map`] with the executing worker's [`WorkerCtx`] passed
    /// through, so tasks can open per-worker tracer spans.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&WorkerCtx, usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            // Inline: the caller's thread is worker 0. This is the exact
            // sequential semantics the parallel path must reproduce.
            let ctx = WorkerCtx {
                worker: 0,
                span_name: worker_span_name(0),
            };
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    self.tasks_executed.fetch_add(1, Ordering::Relaxed);
                    f(&ctx, i, item)
                })
                .collect();
        }

        let workers = self.threads.min(n);
        // Task slots: each item is taken exactly once by whichever worker
        // claims its index.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Contiguous block distribution: worker w starts with indices
        // [w*n/workers, (w+1)*n/workers).
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = w * n / workers;
                let hi = (w + 1) * n / workers;
                Mutex::new((lo..hi).collect())
            })
            .collect();

        thread::scope(|s| {
            for w in 0..workers {
                let slots = &slots;
                let results = &results;
                let deques = &deques;
                let f = &f;
                s.spawn(move || {
                    let ctx = WorkerCtx {
                        worker: w,
                        span_name: worker_span_name(w),
                    };
                    loop {
                        // Own deque first (back = most recently assigned).
                        let mut claimed = deques[w].lock().unwrap().pop_back();
                        if claimed.is_none() {
                            // Steal the oldest task of the first non-empty
                            // victim, scanning round-robin from w+1.
                            for off in 1..workers {
                                let v = (w + off) % workers;
                                if let Some(i) = deques[v].lock().unwrap().pop_front() {
                                    self.steals.fetch_add(1, Ordering::Relaxed);
                                    claimed = Some(i);
                                    break;
                                }
                            }
                        }
                        let Some(i) = claimed else {
                            // Every deque is empty; the task set is fixed,
                            // so nothing new can appear.
                            break;
                        };
                        let item = slots[i]
                            .lock()
                            .unwrap()
                            .take()
                            .expect("task index claimed twice");
                        let r = f(&ctx, i, item);
                        *results[i].lock().unwrap() = Some(r);
                        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("worker exited with a task unfinished")
            })
            .collect()
    }
}

/// A boxed unit of work for the resident [`Executor`].
type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct ExecQueue {
    jobs: VecDeque<Job>,
    stop: bool,
}

struct ExecShared {
    queue: Mutex<ExecQueue>,
    available: Condvar,
    executed: AtomicU64,
    stopping: AtomicBool,
}

/// A resident worker pool with a `spawn` API, complementing the
/// fork-join [`ThreadPool`]: the epoll serving backend's reactors are
/// latency-critical and must never run solver work inline, so they hand
/// complete requests here and keep polling. Workers live until
/// [`Executor::shutdown`] (which drains nothing: queued jobs submitted
/// before the stop flag still run, then every worker is joined).
pub struct Executor {
    shared: Arc<ExecShared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    threads: usize,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("executed", &self.executed())
            .finish()
    }
}

impl Executor {
    /// A pool of `threads` resident workers (at least 1).
    pub fn new(threads: usize) -> Executor {
        let threads = threads.max(1);
        let shared = Arc::new(ExecShared {
            queue: Mutex::new(ExecQueue::default()),
            available: Condvar::new(),
            executed: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break Some(job);
                            }
                            if q.stop {
                                break None;
                            }
                            q = shared.available.wait(q).unwrap_or_else(|p| p.into_inner());
                        }
                    };
                    match job {
                        Some(job) => {
                            job();
                            shared.executed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => return,
                    }
                })
            })
            .collect();
        Executor {
            shared,
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues a job. Returns false (dropping the job) once shutdown has
    /// begun — callers treat that as the work being cancelled.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) -> bool {
        if self.shared.stopping.load(Ordering::Acquire) {
            return false;
        }
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if q.stop {
                return false;
            }
            q.jobs.push_back(Box::new(job));
        }
        self.shared.available.notify_one();
        true
    }

    /// Jobs waiting for a worker.
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .jobs
            .len()
    }

    /// Jobs completed across this executor's lifetime.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Stops accepting work, lets already-queued jobs finish, and joins
    /// every worker. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::Release);
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.stop = true;
        }
        self.shared.available.notify_all();
        let handles: Vec<_> = {
            let mut w = self.workers.lock().unwrap_or_else(|p| p.into_inner());
            w.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.map((0..100u64).collect(), |i, v| {
                assert_eq!(i as u64, v);
                v * v
            });
            assert_eq!(out, (0..100u64).map(|v| v * v).collect::<Vec<_>>());
            assert_eq!(pool.tasks_executed(), 100);
        }
    }

    #[test]
    fn inline_mode_runs_on_caller_thread() {
        let pool = ThreadPool::new(1);
        let caller = thread::current().id();
        let ids = pool.run(vec![(); 8], |ctx, _, _| {
            assert_eq!(ctx.worker, 0);
            thread::current().id()
        });
        assert!(ids.iter().all(|&id| id == caller));
        assert_eq!(pool.steals(), 0);
    }

    #[test]
    fn workers_drain_imbalanced_loads() {
        // One block holds all the slow tasks; stealing must spread them.
        let pool = ThreadPool::new(4);
        let out = pool.run((0..64usize).collect(), |ctx, _, i| {
            if i < 16 {
                thread::sleep(std::time::Duration::from_millis(1));
            }
            (ctx.worker, i)
        });
        assert_eq!(out.len(), 64);
        for (slot, &(worker, i)) in out.iter().enumerate() {
            assert_eq!(slot, i);
            assert!(worker < 4);
        }
    }

    #[test]
    fn clamps_width_and_names() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::new(1000).threads(), MAX_WORKERS);
        assert_eq!(worker_span_name(0), "worker00");
        assert_eq!(worker_span_name(31), "worker31");
        assert_eq!(worker_span_name(99), "worker31");
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn executor_runs_spawned_jobs_and_joins_on_shutdown() {
        let exec = Executor::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            assert!(exec.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        exec.shutdown();
        // Queued-before-stop jobs all ran; nothing was dropped.
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(exec.executed(), 64);
        // Post-shutdown spawns are refused.
        assert!(!exec.spawn(|| {}));
        // Idempotent.
        exec.shutdown();
    }

    #[test]
    fn executor_width_is_clamped() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn borrows_non_static_data() {
        let data: Vec<u64> = (0..32).collect();
        let pool = ThreadPool::new(4);
        let sum: u64 = pool
            .map((0..data.len()).collect(), |_, i| data[i])
            .into_iter()
            .sum();
        assert_eq!(sum, (0..32).sum::<u64>());
    }
}
