//! User profiles: a named personalization graph with a builder API.

use crate::doi::Doi;
use crate::graph::{JoinEdge, PersonalizationGraph, SelectionEdge};
use cqp_engine::CmpOp;
use cqp_storage::{Catalog, StorageResult, Value};

/// A user profile: the personalization graph holding the user's atomic
/// preferences (paper Figure 1 shows an example with four of them).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Display name of the profile owner.
    pub name: String,
    graph: PersonalizationGraph,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new(name: impl Into<String>) -> Self {
        Profile {
            name: name.into(),
            graph: PersonalizationGraph::new(),
        }
    }

    /// The underlying personalization graph.
    pub fn graph(&self) -> &PersonalizationGraph {
        &self.graph
    }

    /// Mutable access to the personalization graph — the incremental
    /// upsert path of a session store appends already-resolved edges
    /// directly (names were resolved when the edge was first built).
    pub fn graph_mut(&mut self) -> &mut PersonalizationGraph {
        &mut self.graph
    }

    /// Adds an atomic selection preference `REL.attr = value` with a doi,
    /// resolving names through the catalog.
    pub fn add_selection(
        &mut self,
        catalog: &Catalog,
        relation: &str,
        attribute: &str,
        value: impl Into<Value>,
        doi: Doi,
    ) -> StorageResult<&mut Self> {
        let attr = catalog.resolve(relation, attribute)?;
        self.graph.add_selection(SelectionEdge {
            attr,
            op: CmpOp::Eq,
            value: value.into(),
            doi,
        });
        Ok(self)
    }

    /// Adds an atomic selection preference with an explicit comparison
    /// operator (e.g. `MOVIE.year >= 1990`).
    pub fn add_selection_op(
        &mut self,
        catalog: &Catalog,
        relation: &str,
        attribute: &str,
        op: CmpOp,
        value: impl Into<Value>,
        doi: Doi,
    ) -> StorageResult<&mut Self> {
        let attr = catalog.resolve(relation, attribute)?;
        self.graph.add_selection(SelectionEdge {
            attr,
            op,
            value: value.into(),
            doi,
        });
        Ok(self)
    }

    /// Adds an atomic (directed) join preference
    /// `LEFT.attr = RIGHT.attr` with a doi.
    pub fn add_join(
        &mut self,
        catalog: &Catalog,
        left_rel: &str,
        left_attr: &str,
        right_rel: &str,
        right_attr: &str,
        doi: Doi,
    ) -> StorageResult<&mut Self> {
        let left = catalog.resolve(left_rel, left_attr)?;
        let right = catalog.resolve(right_rel, right_attr)?;
        self.graph.add_join(JoinEdge { left, right, doi });
        Ok(self)
    }

    /// Number of atomic preferences stored.
    pub fn num_preferences(&self) -> usize {
        self.graph.num_edges()
    }

    /// The `k` highest-doi selection preferences as
    /// `(preference id, edge)` pairs, sorted by doi descending.
    ///
    /// The preference id is the edge's insertion index into the profile's
    /// selection list; ties on doi break toward the *lower* id (earlier
    /// insertion). Because the order is a total order independent of `k`,
    /// `top_k(k)` is always a prefix of `top_k(k + 1)` — the property the
    /// server's progressive personalization-depth knob relies on.
    pub fn top_k(&self, k: usize) -> Vec<(usize, &SelectionEdge)> {
        let mut ranked: Vec<(usize, &SelectionEdge)> =
            self.graph.selections().iter().enumerate().collect();
        ranked.sort_by(|(ia, a), (ib, b)| {
            b.doi
                .value()
                .partial_cmp(&a.doi.value())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ia.cmp(ib))
        });
        ranked.truncate(k);
        ranked
    }

    /// A copy of this profile restricted to its `top_k(k)` selection
    /// preferences (all join preferences are kept — they carry the schema
    /// paths implicit preferences are discovered through, not result
    /// conditions of their own). Selections keep their original relative
    /// order so preference-space extraction stays deterministic.
    pub fn with_top_k_selections(&self, k: usize) -> Profile {
        let mut keep: Vec<usize> = self.top_k(k).into_iter().map(|(id, _)| id).collect();
        keep.sort_unstable();
        let mut graph = PersonalizationGraph::new();
        for id in keep {
            graph.add_selection(self.graph.selections()[id].clone());
        }
        for j in self.graph.joins() {
            graph.add_join(j.clone());
        }
        Profile {
            name: self.name.clone(),
            graph,
        }
    }

    /// Builds the paper's Figure 1 example profile over the movie catalog
    /// (requires relations MOVIE, DIRECTOR, GENRE with the paper's
    /// attributes). Handy for tests, examples, and documentation.
    pub fn paper_figure1(catalog: &Catalog) -> StorageResult<Self> {
        let mut p = Profile::new("figure-1");
        p.add_selection(catalog, "GENRE", "genre", "musical", Doi::new(0.5))?;
        p.add_join(catalog, "MOVIE", "mid", "GENRE", "mid", Doi::new(0.9))?;
        p.add_join(catalog, "MOVIE", "did", "DIRECTOR", "did", Doi::new(1.0))?;
        p.add_selection(catalog, "DIRECTOR", "name", "W. Allen", Doi::new(0.8))?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn figure1_profile_builds() {
        let c = catalog();
        let p = Profile::paper_figure1(&c).unwrap();
        assert_eq!(p.num_preferences(), 4);
        assert_eq!(p.graph().selections().len(), 2);
        assert_eq!(p.graph().joins().len(), 2);
        p.graph().validate(&c).unwrap();
    }

    #[test]
    fn builder_chains() {
        let c = catalog();
        let mut p = Profile::new("al");
        p.add_selection(&c, "GENRE", "genre", "comedy", Doi::new(0.7))
            .unwrap()
            .add_selection_op(&c, "MOVIE", "year", CmpOp::Ge, 1990i64, Doi::new(0.4))
            .unwrap();
        assert_eq!(p.num_preferences(), 2);
    }

    #[test]
    fn top_k_orders_by_doi_then_insertion_id() {
        let c = catalog();
        let mut p = Profile::new("al");
        p.add_selection(&c, "GENRE", "genre", "comedy", Doi::new(0.7))
            .unwrap() // id 0
            .add_selection(&c, "GENRE", "genre", "drama", Doi::new(0.9))
            .unwrap() // id 1
            .add_selection(&c, "GENRE", "genre", "noir", Doi::new(0.7))
            .unwrap() // id 2 — ties with id 0: id 0 must win
            .add_join(&c, "MOVIE", "mid", "GENRE", "mid", Doi::new(1.0))
            .unwrap();
        let ids: Vec<usize> = p.top_k(3).into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 0, 2]);
        // Prefix property at every depth, including past the end.
        for k in 0..4 {
            let shorter: Vec<usize> = p.top_k(k).into_iter().map(|(id, _)| id).collect();
            let longer: Vec<usize> = p.top_k(k + 1).into_iter().map(|(id, _)| id).collect();
            assert_eq!(&longer[..shorter.len()], &shorter[..]);
        }
        assert_eq!(p.top_k(0).len(), 0);
        assert_eq!(p.top_k(99).len(), 3);
    }

    #[test]
    fn with_top_k_selections_keeps_joins_and_insertion_order() {
        let c = catalog();
        let p = Profile::paper_figure1(&c).unwrap();
        let restricted = p.with_top_k_selections(1);
        // figure 1: selections are (genre=musical, 0.5) then
        // (name=W. Allen, 0.8) — top-1 keeps only the director selection.
        assert_eq!(restricted.graph().selections().len(), 1);
        assert_eq!(restricted.graph().selections()[0].doi, Doi::new(0.8));
        assert_eq!(restricted.graph().joins().len(), 2);
        assert_eq!(restricted.name, p.name);
        // Depth >= total selections reproduces the full profile.
        let full = p.with_top_k_selections(10);
        assert_eq!(full.graph().selections(), p.graph().selections());
        assert_eq!(full.graph().joins(), p.graph().joins());
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        let mut p = Profile::new("x");
        assert!(p
            .add_selection(&c, "NOPE", "a", 1i64, Doi::new(0.5))
            .is_err());
        assert!(p
            .add_join(&c, "MOVIE", "mid", "NOPE", "mid", Doi::new(0.5))
            .is_err());
    }
}
