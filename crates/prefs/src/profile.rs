//! User profiles: a named personalization graph with a builder API.

use crate::doi::Doi;
use crate::graph::{JoinEdge, PersonalizationGraph, SelectionEdge};
use cqp_engine::CmpOp;
use cqp_storage::{Catalog, StorageResult, Value};

/// A user profile: the personalization graph holding the user's atomic
/// preferences (paper Figure 1 shows an example with four of them).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Display name of the profile owner.
    pub name: String,
    graph: PersonalizationGraph,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new(name: impl Into<String>) -> Self {
        Profile {
            name: name.into(),
            graph: PersonalizationGraph::new(),
        }
    }

    /// The underlying personalization graph.
    pub fn graph(&self) -> &PersonalizationGraph {
        &self.graph
    }

    /// Adds an atomic selection preference `REL.attr = value` with a doi,
    /// resolving names through the catalog.
    pub fn add_selection(
        &mut self,
        catalog: &Catalog,
        relation: &str,
        attribute: &str,
        value: impl Into<Value>,
        doi: Doi,
    ) -> StorageResult<&mut Self> {
        let attr = catalog.resolve(relation, attribute)?;
        self.graph.add_selection(SelectionEdge {
            attr,
            op: CmpOp::Eq,
            value: value.into(),
            doi,
        });
        Ok(self)
    }

    /// Adds an atomic selection preference with an explicit comparison
    /// operator (e.g. `MOVIE.year >= 1990`).
    pub fn add_selection_op(
        &mut self,
        catalog: &Catalog,
        relation: &str,
        attribute: &str,
        op: CmpOp,
        value: impl Into<Value>,
        doi: Doi,
    ) -> StorageResult<&mut Self> {
        let attr = catalog.resolve(relation, attribute)?;
        self.graph.add_selection(SelectionEdge {
            attr,
            op,
            value: value.into(),
            doi,
        });
        Ok(self)
    }

    /// Adds an atomic (directed) join preference
    /// `LEFT.attr = RIGHT.attr` with a doi.
    pub fn add_join(
        &mut self,
        catalog: &Catalog,
        left_rel: &str,
        left_attr: &str,
        right_rel: &str,
        right_attr: &str,
        doi: Doi,
    ) -> StorageResult<&mut Self> {
        let left = catalog.resolve(left_rel, left_attr)?;
        let right = catalog.resolve(right_rel, right_attr)?;
        self.graph.add_join(JoinEdge { left, right, doi });
        Ok(self)
    }

    /// Number of atomic preferences stored.
    pub fn num_preferences(&self) -> usize {
        self.graph.num_edges()
    }

    /// Builds the paper's Figure 1 example profile over the movie catalog
    /// (requires relations MOVIE, DIRECTOR, GENRE with the paper's
    /// attributes). Handy for tests, examples, and documentation.
    pub fn paper_figure1(catalog: &Catalog) -> StorageResult<Self> {
        let mut p = Profile::new("figure-1");
        p.add_selection(catalog, "GENRE", "genre", "musical", Doi::new(0.5))?;
        p.add_join(catalog, "MOVIE", "mid", "GENRE", "mid", Doi::new(0.9))?;
        p.add_join(catalog, "MOVIE", "did", "DIRECTOR", "did", Doi::new(1.0))?;
        p.add_selection(catalog, "DIRECTOR", "name", "W. Allen", Doi::new(0.8))?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn figure1_profile_builds() {
        let c = catalog();
        let p = Profile::paper_figure1(&c).unwrap();
        assert_eq!(p.num_preferences(), 4);
        assert_eq!(p.graph().selections().len(), 2);
        assert_eq!(p.graph().joins().len(), 2);
        p.graph().validate(&c).unwrap();
    }

    #[test]
    fn builder_chains() {
        let c = catalog();
        let mut p = Profile::new("al");
        p.add_selection(&c, "GENRE", "genre", "comedy", Doi::new(0.7))
            .unwrap()
            .add_selection_op(&c, "MOVIE", "year", CmpOp::Ge, 1990i64, Doi::new(0.4))
            .unwrap();
        assert_eq!(p.num_preferences(), 2);
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        let mut p = Profile::new("x");
        assert!(p
            .add_selection(&c, "NOPE", "a", 1i64, Doi::new(0.5))
            .is_err());
        assert!(p
            .add_join(&c, "MOVIE", "mid", "NOPE", "mid", Doi::new(0.5))
            .is_err());
    }
}
