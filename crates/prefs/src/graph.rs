//! The personalization graph (paper Section 3).
//!
//! A directed graph `G(V, E)` extending the database schema graph. Nodes are
//! relations, attributes, and the values a user cares about; edges are
//! **selection edges** (attribute node → value node, a potential selection
//! condition) and **join edges** (attribute node → attribute node, a
//! potential join condition). Every edge carries an atomic degree of
//! interest.
//!
//! Join edges are *directed*: an edge `MOVIE.did → DIRECTOR.did` states how
//! preferences on DIRECTOR (the right-hand side) influence MOVIE (the
//! left-hand side), so preference paths are traversed from the queried
//! relation outward along edge direction.

use crate::doi::Doi;
use cqp_engine::{CmpOp, Predicate};
use cqp_storage::{Catalog, QualifiedAttr, RelationId, StorageResult, Value};

/// A selection edge: `attr op value` with an atomic doi.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionEdge {
    /// Constrained attribute.
    pub attr: QualifiedAttr,
    /// Comparison operator (the paper uses equality).
    pub op: CmpOp,
    /// The value node.
    pub value: Value,
    /// Atomic degree of interest.
    pub doi: Doi,
}

impl SelectionEdge {
    /// The predicate this edge represents.
    pub fn predicate(&self) -> Predicate {
        Predicate::Selection {
            attr: self.attr,
            op: self.op,
            value: self.value.clone(),
        }
    }
}

/// A join edge: `left = right` with an atomic doi, directed left → right.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// Left-hand attribute (the influenced side).
    pub left: QualifiedAttr,
    /// Right-hand attribute (the influencing side).
    pub right: QualifiedAttr,
    /// Atomic degree of interest.
    pub doi: Doi,
}

impl JoinEdge {
    /// The predicate this edge represents.
    pub fn predicate(&self) -> Predicate {
        Predicate::Join {
            left: self.left,
            right: self.right,
        }
    }
}

/// The personalization graph: all selection and join edges of one profile.
#[derive(Debug, Clone, Default)]
pub struct PersonalizationGraph {
    selections: Vec<SelectionEdge>,
    joins: Vec<JoinEdge>,
}

impl PersonalizationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a selection edge.
    pub fn add_selection(&mut self, edge: SelectionEdge) {
        self.selections.push(edge);
    }

    /// Adds a join edge.
    pub fn add_join(&mut self, edge: JoinEdge) {
        self.joins.push(edge);
    }

    /// All selection edges.
    pub fn selections(&self) -> &[SelectionEdge] {
        &self.selections
    }

    /// All join edges.
    pub fn joins(&self) -> &[JoinEdge] {
        &self.joins
    }

    /// Selection edges whose attribute belongs to `relation`.
    pub fn selections_on(&self, relation: RelationId) -> impl Iterator<Item = &SelectionEdge> {
        self.selections
            .iter()
            .filter(move |e| e.attr.relation == relation)
    }

    /// Join edges leaving `relation` (their left attribute is on it).
    pub fn joins_from(&self, relation: RelationId) -> impl Iterator<Item = &JoinEdge> {
        self.joins
            .iter()
            .filter(move |e| e.left.relation == relation)
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.selections.len() + self.joins.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.selections.is_empty() && self.joins.is_empty()
    }

    /// Validates every edge's attributes against a catalog.
    pub fn validate(&self, catalog: &Catalog) -> StorageResult<()> {
        for e in &self.selections {
            catalog.check_attr(e.attr)?;
        }
        for e in &self.joins {
            catalog.check_attr(e.left)?;
            catalog.check_attr(e.right)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    /// Builds the paper's Figure 1 profile graph.
    fn figure1_graph(c: &Catalog) -> PersonalizationGraph {
        let mut g = PersonalizationGraph::new();
        // p1: doi(GENRE.genre='musical') = 0.5
        g.add_selection(SelectionEdge {
            attr: c.resolve("GENRE", "genre").unwrap(),
            op: CmpOp::Eq,
            value: Value::str("musical"),
            doi: Doi::new(0.5),
        });
        // p2: doi(MOVIE.mid = GENRE.mid) = 0.9
        g.add_join(JoinEdge {
            left: c.resolve("MOVIE", "mid").unwrap(),
            right: c.resolve("GENRE", "mid").unwrap(),
            doi: Doi::new(0.9),
        });
        // p3: doi(MOVIE.did = DIRECTOR.did) = 1.0
        g.add_join(JoinEdge {
            left: c.resolve("MOVIE", "did").unwrap(),
            right: c.resolve("DIRECTOR", "did").unwrap(),
            doi: Doi::new(1.0),
        });
        // p4: doi(DIRECTOR.name = 'W. Allen') = 0.8
        g.add_selection(SelectionEdge {
            attr: c.resolve("DIRECTOR", "name").unwrap(),
            op: CmpOp::Eq,
            value: Value::str("W. Allen"),
            doi: Doi::new(0.8),
        });
        g
    }

    #[test]
    fn figure1_profile_shape() {
        let c = catalog();
        let g = figure1_graph(&c);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_empty());
        g.validate(&c).unwrap();

        let movie = c.relation_id("MOVIE").unwrap();
        let director = c.relation_id("DIRECTOR").unwrap();
        // MOVIE has two outgoing join edges (to GENRE and DIRECTOR).
        assert_eq!(g.joins_from(movie).count(), 2);
        // DIRECTOR has one selection edge (name = 'W. Allen').
        assert_eq!(g.selections_on(director).count(), 1);
        // No selection on MOVIE itself.
        assert_eq!(g.selections_on(movie).count(), 0);
    }

    #[test]
    fn edges_render_predicates() {
        let c = catalog();
        let g = figure1_graph(&c);
        let sel = &g.selections()[0];
        assert!(matches!(sel.predicate(), Predicate::Selection { .. }));
        let join = &g.joins()[0];
        assert!(matches!(join.predicate(), Predicate::Join { .. }));
    }

    #[test]
    fn validate_catches_bad_attr() {
        let c = catalog();
        let mut g = PersonalizationGraph::new();
        g.add_selection(SelectionEdge {
            attr: QualifiedAttr::new(9, 0),
            op: CmpOp::Eq,
            value: Value::Int(1),
            doi: Doi::new(0.5),
        });
        assert!(g.validate(&c).is_err());
    }
}
