//! Atomic and implicit preferences.
//!
//! A *preference* here is what the CQP search selects among: an acyclic path
//! in the personalization graph, anchored at a relation of the query,
//! consisting of zero or more join edges and ending in a selection edge.
//! (The paper's Preference Space holds "atomic and implicit **selection**
//! preferences" — a path that ends in a join edge does not constrain
//! anything yet and only appears as an intermediate candidate during
//! extraction.)
//!
//! The doi of an implicit preference composes the constituent atomic dois
//! with `f⊗` (Formula 1) and is non-increasing in path length (Formula 2).

use crate::doi::{Doi, PathCompose};
use crate::graph::{JoinEdge, SelectionEdge};
use cqp_engine::Predicate;
use cqp_storage::{Catalog, RelationId};
use std::fmt;

/// One condition along a preference path.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// A join step.
    Join(JoinEdge),
    /// The terminal selection.
    Selection(SelectionEdge),
}

impl Condition {
    /// The predicate this condition contributes.
    pub fn predicate(&self) -> Predicate {
        match self {
            Condition::Join(j) => j.predicate(),
            Condition::Selection(s) => s.predicate(),
        }
    }

    /// The atomic doi of this condition's edge.
    pub fn doi(&self) -> Doi {
        match self {
            Condition::Join(j) => j.doi,
            Condition::Selection(s) => s.doi,
        }
    }
}

/// A (possibly implicit) selection preference: a join path ending in a
/// selection, with its composed degree of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct Preference {
    /// The conditions in path order; the last one is always a selection.
    pub conditions: Vec<Condition>,
    /// Composed doi of the whole path.
    pub doi: Doi,
}

impl Preference {
    /// Builds an atomic preference from a single selection edge.
    pub fn atomic(edge: SelectionEdge) -> Self {
        let doi = edge.doi;
        Preference {
            conditions: vec![Condition::Selection(edge)],
            doi,
        }
    }

    /// Builds an implicit preference from a join chain plus terminal
    /// selection, composing the doi with `f⊗`.
    pub fn implicit(joins: Vec<JoinEdge>, selection: SelectionEdge, compose: PathCompose) -> Self {
        let mut dois: Vec<Doi> = joins.iter().map(|j| j.doi).collect();
        dois.push(selection.doi);
        let doi = compose.compose(&dois);
        let mut conditions: Vec<Condition> = joins.into_iter().map(Condition::Join).collect();
        conditions.push(Condition::Selection(selection));
        Preference { conditions, doi }
    }

    /// Number of atomic conditions in the path.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// A preference always has at least its terminal selection.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }

    /// True if the path is a single selection edge.
    pub fn is_atomic(&self) -> bool {
        self.conditions.len() == 1
    }

    /// The relation the path is anchored at (where the query must touch).
    ///
    /// For an implicit preference this is the left relation of its first
    /// join edge; for an atomic one, the relation of its selection.
    pub fn anchor(&self) -> RelationId {
        match &self.conditions[0] {
            Condition::Join(j) => j.left.relation,
            Condition::Selection(s) => s.attr.relation,
        }
    }

    /// Relations visited along the path, starting at the anchor.
    pub fn relations(&self) -> Vec<RelationId> {
        let mut rels = vec![self.anchor()];
        for c in &self.conditions {
            let r = match c {
                Condition::Join(j) => j.right.relation,
                Condition::Selection(s) => s.attr.relation,
            };
            if !rels.contains(&r) {
                rels.push(r);
            }
        }
        rels
    }

    /// The predicates this preference contributes to a sub-query.
    pub fn predicates(&self) -> Vec<Predicate> {
        self.conditions.iter().map(Condition::predicate).collect()
    }

    /// True if extending this path with a join into `relation` would revisit
    /// a relation (the extraction algorithm only builds acyclic paths).
    pub fn would_cycle(&self, relation: RelationId) -> bool {
        self.relations().contains(&relation)
    }

    /// Renders the path as a SQL-ish condition string for diagnostics.
    pub fn describe(&self, catalog: &Catalog) -> String {
        self.conditions
            .iter()
            .map(|c| cqp_engine::sql::predicate_sql(catalog, &c.predicate()))
            .collect::<Vec<_>>()
            .join(" and ")
    }
}

impl fmt::Display for Preference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "preference(doi={}, len={})", self.doi, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_engine::CmpOp;
    use cqp_storage::{DataType, RelationSchema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c
    }

    fn allen_pref(c: &Catalog) -> Preference {
        // p3 ∧ p4: MOVIE.did = DIRECTOR.did (1.0) and DIRECTOR.name = 'W. Allen' (0.8)
        Preference::implicit(
            vec![JoinEdge {
                left: c.resolve("MOVIE", "did").unwrap(),
                right: c.resolve("DIRECTOR", "did").unwrap(),
                doi: Doi::new(1.0),
            }],
            SelectionEdge {
                attr: c.resolve("DIRECTOR", "name").unwrap(),
                op: CmpOp::Eq,
                value: Value::str("W. Allen"),
                doi: Doi::new(0.8),
            },
            PathCompose::Product,
        )
    }

    #[test]
    fn paper_section3_composition() {
        let c = catalog();
        let p = allen_pref(&c);
        // 1.0 × 0.8 = 0.8, the paper's example.
        assert!((p.doi.value() - 0.8).abs() < 1e-12);
        assert_eq!(p.len(), 2);
        assert!(!p.is_atomic());
        assert_eq!(p.anchor(), c.relation_id("MOVIE").unwrap());
        assert_eq!(p.relations().len(), 2);
    }

    #[test]
    fn atomic_preference_keeps_edge_doi() {
        let c = catalog();
        let p = Preference::atomic(SelectionEdge {
            attr: c.resolve("MOVIE", "title").unwrap(),
            op: CmpOp::Eq,
            value: Value::str("Manhattan"),
            doi: Doi::new(0.6),
        });
        assert!(p.is_atomic());
        assert_eq!(p.doi, Doi::new(0.6));
        assert_eq!(p.anchor(), c.relation_id("MOVIE").unwrap());
    }

    #[test]
    fn cycle_detection() {
        let c = catalog();
        let p = allen_pref(&c);
        assert!(p.would_cycle(c.relation_id("MOVIE").unwrap()));
        assert!(p.would_cycle(c.relation_id("DIRECTOR").unwrap()));
    }

    #[test]
    fn predicates_and_description() {
        let c = catalog();
        let p = allen_pref(&c);
        let preds = p.predicates();
        assert_eq!(preds.len(), 2);
        let desc = p.describe(&c);
        assert!(desc.contains("MOVIE.did = DIRECTOR.did"));
        assert!(desc.contains("DIRECTOR.name = 'W. Allen'"));
        assert!(p.to_string().contains("doi=0.8"));
    }

    #[test]
    fn formula_2_longer_paths_never_gain_doi() {
        let c = catalog();
        let p = allen_pref(&c);
        let atomic_min = p.conditions.iter().map(Condition::doi).min().unwrap();
        assert!(p.doi <= atomic_min);
    }
}
