//! Syntactic relatedness of preferences to a query (paper Section 4.4).
//!
//! "Given a query Q and a user profile U, this module determines the set P
//! of selection preferences extracted from U and related to Q. The latter
//! refers to syntactic relationships, i.e. preferences whose paths on the
//! personalization graph are attached to a relation included in Q."

use crate::preference::Preference;
use cqp_engine::ConjunctiveQuery;

/// True when a preference path is attached to a relation of the query.
pub fn is_related(pref: &Preference, query: &ConjunctiveQuery) -> bool {
    query.relations.contains(&pref.anchor())
}

/// Filters a list of preferences down to those related to the query.
pub fn related_to_query<'a>(
    prefs: impl IntoIterator<Item = &'a Preference>,
    query: &ConjunctiveQuery,
) -> Vec<&'a Preference> {
    prefs.into_iter().filter(|p| is_related(p, query)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::graph::SelectionEdge;
    use cqp_engine::CmpOp;
    use cqp_storage::{Catalog, DataType, RelationSchema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![("mid", DataType::Int), ("title", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "THEATRE",
            vec![("tid", DataType::Int), ("city", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn anchored_preferences_are_related() {
        let c = catalog();
        let movie = c.relation_id("MOVIE").unwrap();
        let theatre = c.relation_id("THEATRE").unwrap();
        let q = ConjunctiveQuery::scan(movie, vec![c.resolve("MOVIE", "title").unwrap()]);

        let on_movie = Preference::atomic(SelectionEdge {
            attr: c.resolve("MOVIE", "title").unwrap(),
            op: CmpOp::Eq,
            value: Value::str("Manhattan"),
            doi: Doi::new(0.5),
        });
        let on_theatre = Preference::atomic(SelectionEdge {
            attr: c.resolve("THEATRE", "city").unwrap(),
            op: CmpOp::Eq,
            value: Value::str("Pisa"),
            doi: Doi::new(0.9),
        });

        assert!(is_related(&on_movie, &q));
        assert!(!is_related(&on_theatre, &q));

        let all = vec![on_movie.clone(), on_theatre];
        let related = related_to_query(&all, &q);
        assert_eq!(related.len(), 1);
        assert_eq!(related[0], &on_movie);

        // A query over THEATRE relates the other way round.
        let q2 = ConjunctiveQuery::scan(theatre, vec![]);
        assert_eq!(related_to_query(&all, &q2).len(), 1);
    }
}
