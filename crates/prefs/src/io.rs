//! Plain-text persistence for profiles.
//!
//! A personalization system keeps profiles across sessions; this module
//! serializes them in a line-oriented format that survives in version
//! control and diffs cleanly, without pulling a serialization dependency
//! into the workspace:
//!
//! ```text
//! # cqp-profile v1
//! profile al
//! join 1.0 MOVIE.did DIRECTOR.did
//! select 0.8 DIRECTOR.name eq "W. Allen"
//! select 0.4 MOVIE.year ge 1990
//! ```
//!
//! Operators: `eq`, `ne`, `lt`, `le`, `gt`, `ge`.
//!
//! Values are typed by their literal form: quoted strings, integers, or
//! floats. Attribute names are resolved against the catalog at load time,
//! so a profile written against one schema fails loudly when loaded against
//! an incompatible one.

use crate::doi::Doi;
use crate::profile::Profile;
use cqp_engine::CmpOp;
use cqp_storage::{Catalog, Value};
use std::fmt;

/// Errors from profile parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileParseError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileParseError::BadHeader => {
                write!(f, "missing `# cqp-profile v1` header")
            }
            ProfileParseError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ProfileParseError {}

fn op_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn parse_op(s: &str) -> Option<CmpOp> {
    match s {
        "eq" => Some(CmpOp::Eq),
        "ne" => Some(CmpOp::Ne),
        "lt" => Some(CmpOp::Lt),
        "le" => Some(CmpOp::Le),
        "gt" => Some(CmpOp::Gt),
        "ge" => Some(CmpOp::Ge),
        _ => None,
    }
}

fn value_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{:?}", s), // quoted + escaped
        other => other.to_string(),
    }
}

fn parse_value(s: &str) -> Option<Value> {
    let s = s.trim();
    if let Some(stripped) = s.strip_prefix('"') {
        let inner = stripped.strip_suffix('"')?;
        // Minimal unescaping for \" and \\.
        return Some(Value::Str(
            inner.replace("\\\"", "\"").replace("\\\\", "\\"),
        ));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if let Ok(x) = s.parse::<f64>() {
        if x.is_finite() {
            return Some(Value::float(x));
        }
    }
    None
}

/// Serializes a profile, resolving attribute ids back to names.
pub fn to_text(profile: &Profile, catalog: &Catalog) -> String {
    let mut out = String::from("# cqp-profile v1\n");
    out.push_str(&format!("profile {}\n", profile.name));
    for j in profile.graph().joins() {
        out.push_str(&format!(
            "join {} {} {}\n",
            j.doi,
            catalog.attr_name(j.left),
            catalog.attr_name(j.right)
        ));
    }
    for s in profile.graph().selections() {
        out.push_str(&format!(
            "select {} {} {} {}\n",
            s.doi,
            catalog.attr_name(s.attr),
            op_name(s.op),
            value_literal(&s.value)
        ));
    }
    out
}

/// Splits `REL.attr` notation.
fn split_attr(s: &str) -> Option<(&str, &str)> {
    s.split_once('.')
}

/// Parses a profile, resolving names against the catalog.
pub fn from_text(text: &str, catalog: &Catalog) -> Result<Profile, ProfileParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == "# cqp-profile v1" => {}
        _ => return Err(ProfileParseError::BadHeader),
    }
    let mut profile = Profile::new("unnamed");
    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| ProfileParseError::BadLine {
            line: line_no,
            reason: reason.to_owned(),
        };
        let mut parts = line.splitn(2, ' ');
        let kind = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match kind {
            "profile" => {
                profile.name = rest.to_owned();
            }
            "join" => {
                let mut f = rest.split_whitespace();
                let doi: f64 = f
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("join needs a doi"))?;
                let (lr, la) = f
                    .next()
                    .and_then(split_attr)
                    .ok_or_else(|| bad("join needs LEFT.attr"))?;
                let (rr, ra) = f
                    .next()
                    .and_then(split_attr)
                    .ok_or_else(|| bad("join needs RIGHT.attr"))?;
                if !(0.0..=1.0).contains(&doi) {
                    return Err(bad("doi out of [0,1]"));
                }
                profile
                    .add_join(catalog, lr, la, rr, ra, Doi::new(doi))
                    .map_err(|e| bad(&e.to_string()))?;
            }
            "select" => {
                // select <doi> <REL.attr> <op> <value…>
                let mut f = rest.splitn(4, ' ');
                let doi: f64 = f
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("select needs a doi"))?;
                let (rel, attr) = f
                    .next()
                    .and_then(split_attr)
                    .ok_or_else(|| bad("select needs REL.attr"))?;
                let op = f
                    .next()
                    .and_then(parse_op)
                    .ok_or_else(|| bad("select needs eq|le|ge"))?;
                let value = f
                    .next()
                    .and_then(parse_value)
                    .ok_or_else(|| bad("select needs a value literal"))?;
                if !(0.0..=1.0).contains(&doi) {
                    return Err(bad("doi out of [0,1]"));
                }
                profile
                    .add_selection_op(catalog, rel, attr, op, value, Doi::new(doi))
                    .map_err(|e| bad(&e.to_string()))?;
            }
            other => return Err(bad(&format!("unknown directive `{other}`"))),
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn figure1_roundtrips() {
        let c = catalog();
        let original = Profile::paper_figure1(&c).unwrap();
        let text = to_text(&original, &c);
        assert!(text.contains("select 0.8 DIRECTOR.name eq \"W. Allen\""));
        assert!(text.contains("join 1 MOVIE.did DIRECTOR.did"));
        let parsed = from_text(&text, &c).unwrap();
        assert_eq!(parsed.graph().selections(), original.graph().selections());
        assert_eq!(parsed.graph().joins(), original.graph().joins());
        assert_eq!(parsed.name, original.name);
    }

    #[test]
    fn parses_hand_written_profile() {
        let c = catalog();
        let text = r#"# cqp-profile v1
profile al

# Al likes recent long movies
select 0.4 MOVIE.year ge 1990
select 0.3 MOVIE.duration le 150
join 0.9 MOVIE.mid GENRE.mid
select 0.5 GENRE.genre eq "musical"
"#;
        let p = from_text(text, &c).unwrap();
        assert_eq!(p.name, "al");
        assert_eq!(p.graph().selections().len(), 3);
        assert_eq!(p.graph().joins().len(), 1);
    }

    #[test]
    fn rejects_bad_input() {
        let c = catalog();
        assert_eq!(
            from_text("nope", &c).unwrap_err(),
            ProfileParseError::BadHeader
        );
        let err = from_text("# cqp-profile v1\nselect banana\n", &c).unwrap_err();
        assert!(matches!(err, ProfileParseError::BadLine { line: 2, .. }));
        let err = from_text("# cqp-profile v1\nselect 1.5 MOVIE.year ge 1990\n", &c).unwrap_err();
        assert!(err.to_string().contains("doi out of"));
        let err = from_text("# cqp-profile v1\nselect 0.5 NOPE.attr eq 1\n", &c).unwrap_err();
        assert!(err.to_string().contains("unknown relation"));
        let err = from_text("# cqp-profile v1\nfrobnicate 1\n", &c).unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn string_escaping_roundtrips() {
        let c = catalog();
        let mut p = Profile::new("quotes");
        p.add_selection(&c, "MOVIE", "title", "The \"Best\" \\ Movie", Doi::new(0.5))
            .unwrap();
        let text = to_text(&p, &c);
        let parsed = from_text(&text, &c).unwrap();
        assert_eq!(parsed.graph().selections(), p.graph().selections());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = catalog();
        let text = "# cqp-profile v1\n\n# a comment\nprofile x\n\n";
        let p = from_text(text, &c).unwrap();
        assert_eq!(p.name, "x");
        assert_eq!(p.num_preferences(), 0);
    }
}
