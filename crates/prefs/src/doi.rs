//! Degrees of interest and their composition functions.
//!
//! `doi ∈ [0, 1]`: 0 means no interest, 1 means extreme ("must-have")
//! interest (paper Section 3). Two composition functions govern the model:
//!
//! * `f⊗` composes the atomic dois along an implicit-preference path and
//!   must satisfy `f⊗(d1,…,dm) ≤ min(d1,…,dm)` (Formula 2);
//! * `r` composes the dois of a *conjunction* of preferences and must be
//!   monotone in set inclusion (Formula 4).
//!
//! The experiments use multiplication for `f⊗` (Formula 9) and
//! `1 − Π(1−di)` for `r` (Formula 10); alternatives are provided for the
//! ablation the paper hints at in Section 7.2.3 ("using a different model
//! for conjunctive preferences would still exhibit the same growing
//! trends").

use std::cmp::Ordering;
use std::fmt;

/// A degree of interest: a finite `f64` in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Doi(f64);

impl Doi {
    /// Zero interest.
    pub const ZERO: Doi = Doi(0.0);
    /// Must-have interest.
    pub const ONE: Doi = Doi(1.0);

    /// Constructs a doi, validating the range.
    ///
    /// # Panics
    /// Panics if `v` is not finite or lies outside `[0, 1]`.
    pub fn new(v: f64) -> Self {
        assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "doi must be in [0,1], got {v}"
        );
        Doi(v)
    }

    /// Constructs a doi, clamping into `[0, 1]` (NaN becomes 0).
    pub fn clamped(v: f64) -> Self {
        if v.is_nan() {
            Doi(0.0)
        } else {
            Doi(v.clamp(0.0, 1.0))
        }
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Eq for Doi {}

impl PartialOrd for Doi {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Doi {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("doi is never NaN")
    }
}

impl fmt::Display for Doi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Doi> for f64 {
    fn from(d: Doi) -> f64 {
        d.0
    }
}

/// The path-composition function `f⊗` (Formula 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathCompose {
    /// `Π di` — the paper's experimental choice (Formula 9).
    #[default]
    Product,
    /// `min(di)` — the loosest function permitted by Formula 2.
    Min,
}

impl PathCompose {
    /// Composes the dois along a path. An empty path has doi 1 (the neutral
    /// element: composing it with an atomic doi leaves it unchanged).
    pub fn compose(self, dois: &[Doi]) -> Doi {
        match self {
            PathCompose::Product => Doi::clamped(dois.iter().map(|d| d.0).product()),
            PathCompose::Min => dois.iter().copied().min().unwrap_or(Doi::ONE),
        }
    }

    /// Incrementally extends a path doi with one more edge.
    pub fn extend(self, path: Doi, edge: Doi) -> Doi {
        match self {
            PathCompose::Product => Doi::clamped(path.0 * edge.0),
            PathCompose::Min => path.min(edge),
        }
    }
}

/// The conjunction-composition function `r` (Formula 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConjModel {
    /// `1 − Π(1−di)` — the paper's experimental choice (Formula 10).
    /// Sometimes called "noisy-or"; strictly increasing as preferences are
    /// added, which is exactly Formula 4.
    #[default]
    NoisyOr,
    /// `max(di)` — the weakest monotone choice.
    Max,
    /// `min(1, √(Σ di²))` — a quadrature alternative; monotone under adding
    /// preferences (each term is non-negative) but grows differently from
    /// noisy-or; used by the quality-model ablation.
    Quadrature,
}

impl ConjModel {
    /// Composes the dois of a conjunction of preferences. The empty
    /// conjunction has doi 0 (no preference satisfied).
    pub fn conj(self, dois: &[Doi]) -> Doi {
        match self {
            ConjModel::NoisyOr => {
                Doi::clamped(1.0 - dois.iter().map(|d| 1.0 - d.0).product::<f64>())
            }
            ConjModel::Max => dois.iter().copied().max().unwrap_or(Doi::ZERO),
            ConjModel::Quadrature => {
                let sumsq: f64 = dois.iter().map(|d| d.0 * d.0).sum();
                Doi::clamped(sumsq.sqrt())
            }
        }
    }
}

/// Incremental accumulator for the conjunction doi, so that state-space
/// transitions can update doi in O(1) ("incremental computation of query
/// parameters is possible", paper Section 4.3).
///
/// Only [`ConjModel::NoisyOr`] supports O(1) removal; the accumulator keeps
/// the running `Π(1−di)` for it. The other models re-derive on demand from a
/// kept multiset, which is still cheap for the small states CQP builds.
#[derive(Debug, Clone)]
pub struct ConjAccumulator {
    model: ConjModel,
    /// Running complement product for NoisyOr.
    complement: f64,
    /// All member dois (needed by non-NoisyOr models and for removal).
    members: Vec<Doi>,
}

impl ConjAccumulator {
    /// Starts an empty conjunction.
    pub fn new(model: ConjModel) -> Self {
        ConjAccumulator {
            model,
            complement: 1.0,
            members: Vec::new(),
        }
    }

    /// Adds a preference's doi.
    pub fn add(&mut self, d: Doi) {
        self.complement *= 1.0 - d.0;
        self.members.push(d);
    }

    /// Removes one occurrence of a doi previously added.
    ///
    /// # Panics
    /// Panics if `d` was not present.
    pub fn remove(&mut self, d: Doi) {
        let pos = self
            .members
            .iter()
            .position(|m| m == &d)
            .expect("removed doi must have been added");
        self.members.swap_remove(pos);
        // Recompute the complement rather than dividing: division by a
        // (1-d) that is ~0 would destroy precision.
        self.complement = self.members.iter().map(|m| 1.0 - m.0).product();
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if no members were added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current conjunction doi.
    pub fn doi(&self) -> Doi {
        match self.model {
            ConjModel::NoisyOr => Doi::clamped(1.0 - self.complement),
            other => other.conj(&self.members),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doi_validation() {
        assert_eq!(Doi::new(0.5).value(), 0.5);
        assert_eq!(Doi::clamped(1.5), Doi::ONE);
        assert_eq!(Doi::clamped(-0.1), Doi::ZERO);
        assert_eq!(Doi::clamped(f64::NAN), Doi::ZERO);
    }

    #[test]
    #[should_panic(expected = "doi must be in [0,1]")]
    fn out_of_range_rejected() {
        let _ = Doi::new(1.1);
    }

    #[test]
    fn paper_formula_9_product() {
        // p3 (1.0) and p4 (0.8) compose to 0.8 — the W. Allen implicit
        // preference of Section 3.
        let d = PathCompose::Product.compose(&[Doi::new(1.0), Doi::new(0.8)]);
        assert!((d.value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn formula_2_f_at_most_min() {
        for compose in [PathCompose::Product, PathCompose::Min] {
            let dois = [Doi::new(0.9), Doi::new(0.5), Doi::new(0.7)];
            let composed = compose.compose(&dois);
            let min = dois.iter().copied().min().unwrap();
            assert!(composed <= min, "{compose:?} violated Formula 2");
        }
    }

    #[test]
    fn extend_matches_compose() {
        let dois = [Doi::new(0.9), Doi::new(0.5), Doi::new(0.7)];
        for compose in [PathCompose::Product, PathCompose::Min] {
            let step = dois.iter().fold(Doi::ONE, |acc, d| compose.extend(acc, *d));
            let whole = compose.compose(&dois);
            assert!((step.value() - whole.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_formula_10_noisy_or() {
        // 1 - (1-0.5)(1-0.8) = 0.9
        let d = ConjModel::NoisyOr.conj(&[Doi::new(0.5), Doi::new(0.8)]);
        assert!((d.value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn formula_4_monotone_in_inclusion() {
        for model in [ConjModel::NoisyOr, ConjModel::Max, ConjModel::Quadrature] {
            let small = model.conj(&[Doi::new(0.3), Doi::new(0.6)]);
            let large = model.conj(&[Doi::new(0.3), Doi::new(0.6), Doi::new(0.2)]);
            assert!(large >= small, "{model:?} violated Formula 4");
        }
    }

    #[test]
    fn accumulator_tracks_noisy_or() {
        let mut acc = ConjAccumulator::new(ConjModel::NoisyOr);
        assert!(acc.is_empty());
        acc.add(Doi::new(0.5));
        acc.add(Doi::new(0.8));
        assert_eq!(acc.len(), 2);
        assert!((acc.doi().value() - 0.9).abs() < 1e-12);
        acc.remove(Doi::new(0.8));
        assert!((acc.doi().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulator_other_models() {
        let mut acc = ConjAccumulator::new(ConjModel::Max);
        acc.add(Doi::new(0.2));
        acc.add(Doi::new(0.7));
        assert!((acc.doi().value() - 0.7).abs() < 1e-12);
        acc.remove(Doi::new(0.7));
        assert!((acc.doi().value() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must have been added")]
    fn accumulator_remove_missing_panics() {
        let mut acc = ConjAccumulator::new(ConjModel::NoisyOr);
        acc.remove(Doi::new(0.3));
    }

    #[test]
    fn empty_compositions() {
        assert_eq!(PathCompose::Product.compose(&[]), Doi::ONE);
        assert_eq!(ConjModel::NoisyOr.conj(&[]), Doi::ZERO);
        assert_eq!(ConjModel::Max.conj(&[]), Doi::ZERO);
        assert_eq!(ConjModel::Quadrature.conj(&[]), Doi::ZERO);
    }

    #[test]
    fn doi_ordering_total() {
        let mut v = vec![Doi::new(0.9), Doi::new(0.1), Doi::new(0.5)];
        v.sort();
        assert_eq!(v, vec![Doi::new(0.1), Doi::new(0.5), Doi::new(0.9)]);
    }
}
