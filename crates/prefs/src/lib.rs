//! # cqp-prefs
//!
//! The user preference model of the CQP paper (Section 3), adopted from
//! Koutrika & Ioannidis, *Personalization of Queries in Database Systems*
//! (ICDE 2004):
//!
//! * a **personalization graph** extending the database schema graph with
//!   value nodes, selection edges and (directed) join edges, each carrying a
//!   degree of interest ([`graph`]),
//! * **atomic preferences** (single edges) and **implicit preferences**
//!   (acyclic paths) whose doi composes via a non-increasing function `f⊗`
//!   (Formula 1/2; multiplication in the experiments, Formula 9), and
//! * **conjunctions of preferences** whose doi composes via `r`
//!   (Formula 3/4; `1 − Π(1−doi)` in the experiments, Formula 10)
//!   ([`doi`]),
//! * user **profiles** ([`profile`]) and the *syntactic relatedness* test
//!   that selects which profile preferences apply to a query ([`related`]).
//!
//! ```
//! use cqp_prefs::{ConjModel, Doi, PathCompose, Profile};
//! use cqp_storage::{Catalog, DataType, RelationSchema};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_relation(RelationSchema::new(
//!     "MOVIE",
//!     vec![("mid", DataType::Int), ("title", DataType::Str), ("did", DataType::Int)],
//! )).unwrap();
//! catalog.add_relation(RelationSchema::new(
//!     "DIRECTOR",
//!     vec![("did", DataType::Int), ("name", DataType::Str)],
//! )).unwrap();
//!
//! // The paper's Figure 1, by hand:
//! let mut profile = Profile::new("al");
//! profile.add_join(&catalog, "MOVIE", "did", "DIRECTOR", "did", Doi::new(1.0)).unwrap();
//! profile.add_selection(&catalog, "DIRECTOR", "name", "W. Allen", Doi::new(0.8)).unwrap();
//! assert_eq!(profile.num_preferences(), 2);
//!
//! // f⊗ (Formula 9): the implicit path has doi 1.0 × 0.8 = 0.8.
//! let path = PathCompose::Product.compose(&[Doi::new(1.0), Doi::new(0.8)]);
//! assert_eq!(path, Doi::new(0.8));
//!
//! // r (Formula 10): two satisfied preferences combine by noisy-or.
//! let conj = ConjModel::NoisyOr.conj(&[Doi::new(0.8), Doi::new(0.45)]);
//! assert!((conj.value() - 0.89).abs() < 1e-12);
//! ```

pub mod doi;
pub mod graph;
pub mod io;
pub mod preference;
pub mod profile;
pub mod related;

pub use doi::{ConjAccumulator, ConjModel, Doi, PathCompose};
pub use graph::{JoinEdge, PersonalizationGraph, SelectionEdge};
pub use io::{from_text, to_text, ProfileParseError};
pub use preference::{Condition, Preference};
pub use profile::Profile;
pub use related::related_to_query;
