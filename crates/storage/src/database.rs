//! A database: a catalog plus one table per relation, plus statistics.

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::schema::{RelationId, RelationSchema};
use crate::stats::{DbStats, TableStats};
use crate::table::Table;
use crate::value::Tuple;

/// An in-memory database instance.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<Table>,
    block_capacity: Option<usize>,
}

impl Database {
    /// Creates an empty database with the default block capacity.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates an empty database whose tables use `block_capacity` tuples
    /// per block.
    pub fn with_block_capacity(block_capacity: usize) -> Self {
        assert!(block_capacity > 0, "block capacity must be positive");
        Database {
            catalog: Catalog::new(),
            tables: Vec::new(),
            block_capacity: Some(block_capacity),
        }
    }

    /// Creates a relation, returning its id.
    pub fn create_relation(&mut self, schema: RelationSchema) -> StorageResult<RelationId> {
        let table = match self.block_capacity {
            Some(c) => Table::with_block_capacity(schema.clone(), c),
            None => Table::new(schema.clone()),
        };
        let id = self.catalog.add_relation(schema)?;
        self.tables.push(table);
        Ok(id)
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The table backing a relation.
    pub fn table(&self, id: RelationId) -> StorageResult<&Table> {
        self.tables
            .get(id.index())
            .ok_or(StorageError::RelationIdOutOfRange(id.index()))
    }

    /// Mutable access to a relation's table (for loading data).
    pub fn table_mut(&mut self, id: RelationId) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(id.index())
            .ok_or(StorageError::RelationIdOutOfRange(id.index()))
    }

    /// Inserts a tuple into a relation by id.
    pub fn insert(&mut self, id: RelationId, row: Tuple) -> StorageResult<()> {
        self.table_mut(id)?.insert(row)
    }

    /// Inserts a tuple into a relation by name.
    pub fn insert_into(&mut self, relation: &str, row: Tuple) -> StorageResult<()> {
        let id = self.catalog.relation_id(relation)?;
        self.insert(id, row)
    }

    /// Computes statistics for every table — the `ANALYZE` of this engine.
    pub fn analyze(&self) -> DbStats {
        DbStats {
            tables: self.tables.iter().map(TableStats::compute).collect(),
        }
    }

    /// [`Database::analyze`] under a `storage.analyze` span, reporting how
    /// many tables/rows the statistics pass scanned.
    pub fn analyze_recorded(&self, recorder: &dyn cqp_obs::Recorder) -> DbStats {
        let _span = cqp_obs::record::span_guard(recorder, "storage.analyze");
        let stats = self.analyze();
        recorder.add("storage.stats_tables_analyzed", stats.tables.len() as u64);
        recorder.add(
            "storage.stats_rows_scanned",
            stats.tables.iter().map(|t| t.rows as u64).sum(),
        );
        stats
    }

    /// Total blocks across all tables.
    pub fn total_blocks(&self) -> u64 {
        self.tables.iter().map(Table::num_blocks).sum()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::num_rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn movie_db() -> Database {
        let mut db = Database::with_block_capacity(2);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        db
    }

    #[test]
    fn create_insert_and_count() {
        let mut db = movie_db();
        db.insert_into(
            "MOVIE",
            vec![Value::Int(1), Value::str("Manhattan"), Value::Int(1)],
        )
        .unwrap();
        db.insert_into(
            "MOVIE",
            vec![Value::Int(2), Value::str("Zelig"), Value::Int(1)],
        )
        .unwrap();
        db.insert_into(
            "MOVIE",
            vec![Value::Int(3), Value::str("Bananas"), Value::Int(1)],
        )
        .unwrap();
        db.insert_into("DIRECTOR", vec![Value::Int(1), Value::str("W. Allen")])
            .unwrap();

        assert_eq!(db.total_rows(), 4);
        let movie = db.catalog().relation_id("MOVIE").unwrap();
        assert_eq!(db.table(movie).unwrap().num_rows(), 3);
        // 3 rows at 2 per block = 2 blocks, plus 1 block for DIRECTOR.
        assert_eq!(db.total_blocks(), 3);
    }

    #[test]
    fn analyze_produces_stats_per_relation() {
        let mut db = movie_db();
        db.insert_into("DIRECTOR", vec![Value::Int(1), Value::str("W. Allen")])
            .unwrap();
        db.insert_into("DIRECTOR", vec![Value::Int(2), Value::str("F. Fellini")])
            .unwrap();
        let stats = db.analyze();
        assert_eq!(stats.tables.len(), 2);
        assert_eq!(stats.table(1).unwrap().rows, 2);
        assert_eq!(stats.table(1).unwrap().columns[1].n_distinct, 2);
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = movie_db();
        assert!(db.insert_into("NOPE", vec![]).is_err());
        assert!(db.table(RelationId(9)).is_err());
    }
}
