//! Simulated disk: block-read metering.
//!
//! Section 7.1 of the paper assumes execution cost is I/O only, with `b` the
//! time to read a single block from disk into memory, and `b = 1 ms` in the
//! experiments. The executor charges this meter once per block it reads;
//! "real" execution time for Figure 15 is `blocks_read × ms_per_block` plus
//! the (small) CPU time actually spent.
//!
//! A meter can optionally carry a [`Recorder`]: every charge is then also
//! forwarded to the `storage.blocks_read` counter, which lets the span
//! tracer attribute physical reads to solver phases and engine operators.

use cqp_obs::Recorder;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-block read cost in milliseconds (`b` in the paper).
pub const DEFAULT_MS_PER_BLOCK: f64 = 1.0;

/// Registry counter fed by metered block reads.
pub const BLOCKS_READ_COUNTER: &str = "storage.blocks_read";

/// Counts block reads and converts them to simulated milliseconds.
///
/// Interior mutability lets read-only executor pipelines share one meter
/// without threading `&mut` through every iterator adapter; the counter is
/// atomic so meters (and their recorders) can be shared across threads.
pub struct IoMeter {
    blocks_read: AtomicU64,
    ms_per_block: f64,
    recorder: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for IoMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoMeter")
            .field("blocks_read", &self.blocks_read.load(Ordering::Relaxed))
            .field("ms_per_block", &self.ms_per_block)
            .field("recorded", &self.recorder.is_some())
            .finish()
    }
}

impl Default for IoMeter {
    fn default() -> Self {
        IoMeter::new(DEFAULT_MS_PER_BLOCK)
    }
}

impl IoMeter {
    /// Creates a meter with the given per-block cost in milliseconds.
    pub fn new(ms_per_block: f64) -> Self {
        assert!(ms_per_block.is_finite() && ms_per_block >= 0.0);
        IoMeter {
            blocks_read: AtomicU64::new(0),
            ms_per_block,
            recorder: None,
        }
    }

    /// Creates a meter that also forwards every charge to `recorder`'s
    /// [`BLOCKS_READ_COUNTER`].
    pub fn with_recorder(ms_per_block: f64, recorder: Arc<dyn Recorder>) -> Self {
        let mut meter = IoMeter::new(ms_per_block);
        meter.recorder = Some(recorder);
        meter
    }

    /// Charges `n` block reads.
    pub fn charge(&self, n: u64) {
        self.blocks_read.fetch_add(n, Ordering::Relaxed);
        if let Some(recorder) = &self.recorder {
            recorder.add(BLOCKS_READ_COUNTER, n);
        }
    }

    /// Total block reads charged so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read.load(Ordering::Relaxed)
    }

    /// Simulated elapsed I/O time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.blocks_read.load(Ordering::Relaxed) as f64 * self.ms_per_block
    }

    /// The configured per-block cost.
    pub fn ms_per_block(&self) -> f64 {
        self.ms_per_block
    }

    /// Resets the counter to zero (the recorder's counter, being monotonic,
    /// is not rewound).
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_obs::Obs;

    #[test]
    fn charges_accumulate() {
        let m = IoMeter::new(1.0);
        m.charge(3);
        m.charge(2);
        assert_eq!(m.blocks_read(), 5);
        assert!((m.elapsed_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn custom_block_cost() {
        let m = IoMeter::new(0.5);
        m.charge(4);
        assert!((m.elapsed_ms() - 2.0).abs() < 1e-12);
        assert!((m.ms_per_block() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let m = IoMeter::default();
        m.charge(10);
        m.reset();
        assert_eq!(m.blocks_read(), 0);
        assert_eq!(m.elapsed_ms(), 0.0);
    }

    #[test]
    fn recorder_sees_every_charge() {
        let obs = Arc::new(Obs::new());
        let m = IoMeter::with_recorder(1.0, obs.clone());
        m.charge(7);
        m.reset();
        m.charge(2);
        assert_eq!(m.blocks_read(), 2);
        // Monotonic counter keeps the pre-reset charges too.
        assert_eq!(obs.registry().counter(BLOCKS_READ_COUNTER), 9);
    }

    #[test]
    #[should_panic]
    fn negative_cost_rejected() {
        let _ = IoMeter::new(-1.0);
    }
}
