//! Simulated disk: block-read metering.
//!
//! Section 7.1 of the paper assumes execution cost is I/O only, with `b` the
//! time to read a single block from disk into memory, and `b = 1 ms` in the
//! experiments. The executor charges this meter once per block it reads;
//! "real" execution time for Figure 15 is `blocks_read × ms_per_block` plus
//! the (small) CPU time actually spent.
//!
//! A meter can optionally carry a [`Recorder`]: every charge is then also
//! forwarded to the `storage.blocks_read` counter, which lets the span
//! tracer attribute physical reads to solver phases and engine operators.

use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultPlan, ReadOutcome};
use cqp_obs::Recorder;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-block read cost in milliseconds (`b` in the paper).
pub const DEFAULT_MS_PER_BLOCK: f64 = 1.0;

/// Registry counter fed by metered block reads.
pub const BLOCKS_READ_COUNTER: &str = "storage.blocks_read";

/// Registry counter fed by injected I/O errors.
pub const FAULTS_INJECTED_COUNTER: &str = "storage.faults_injected";

/// Registry counter fed by injected latency spikes.
pub const LATENCY_SPIKES_COUNTER: &str = "storage.latency_spikes";

/// Counts block reads and converts them to simulated milliseconds.
///
/// Interior mutability lets read-only executor pipelines share one meter
/// without threading `&mut` through every iterator adapter; the counter is
/// atomic so meters (and their recorders) can be shared across threads.
pub struct IoMeter {
    blocks_read: AtomicU64,
    /// Simulated extra latency accumulated from injected spikes, in
    /// microseconds (integer so it can live in an atomic).
    extra_us: AtomicU64,
    ms_per_block: f64,
    recorder: Option<Arc<dyn Recorder>>,
    faults: Option<Arc<FaultPlan>>,
}

impl fmt::Debug for IoMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoMeter")
            .field("blocks_read", &self.blocks_read.load(Ordering::Relaxed))
            .field("ms_per_block", &self.ms_per_block)
            .field("recorded", &self.recorder.is_some())
            .field("faulted", &self.faults.is_some())
            .finish()
    }
}

impl Default for IoMeter {
    fn default() -> Self {
        IoMeter::new(DEFAULT_MS_PER_BLOCK)
    }
}

impl IoMeter {
    /// Creates a meter with the given per-block cost in milliseconds.
    pub fn new(ms_per_block: f64) -> Self {
        assert!(ms_per_block.is_finite() && ms_per_block >= 0.0);
        IoMeter {
            blocks_read: AtomicU64::new(0),
            extra_us: AtomicU64::new(0),
            ms_per_block,
            recorder: None,
            faults: None,
        }
    }

    /// Creates a meter that also forwards every charge to `recorder`'s
    /// [`BLOCKS_READ_COUNTER`].
    pub fn with_recorder(ms_per_block: f64, recorder: Arc<dyn Recorder>) -> Self {
        let mut meter = IoMeter::new(ms_per_block);
        meter.recorder = Some(recorder);
        meter
    }

    /// Attaches a fault plan: [`try_charge`](IoMeter::try_charge) consults it
    /// for every block, injecting errors and latency spikes on its schedule.
    /// The infallible [`charge`](IoMeter::charge) ignores the plan.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Charges `n` block reads.
    pub fn charge(&self, n: u64) {
        self.blocks_read.fetch_add(n, Ordering::Relaxed);
        if let Some(recorder) = &self.recorder {
            recorder.add(BLOCKS_READ_COUNTER, n);
        }
    }

    /// Charges `n` block reads, consulting the fault plan (if any) once per
    /// block. Blocks read before an injected failure stay charged, matching
    /// a real scan that dies partway through.
    pub fn try_charge(&self, n: u64) -> StorageResult<()> {
        let Some(plan) = &self.faults else {
            self.charge(n);
            return Ok(());
        };
        for _ in 0..n {
            match plan.on_read() {
                ReadOutcome::Ok => {}
                ReadOutcome::Spike { extra_ms } => {
                    let us = (extra_ms * 1000.0).round().max(0.0) as u64;
                    self.extra_us.fetch_add(us, Ordering::Relaxed);
                    if let Some(recorder) = &self.recorder {
                        recorder.add(LATENCY_SPIKES_COUNTER, 1);
                    }
                }
                ReadOutcome::Fail { read_index } => {
                    if let Some(recorder) = &self.recorder {
                        recorder.add(FAULTS_INJECTED_COUNTER, 1);
                    }
                    return Err(StorageError::InjectedIo { read_index });
                }
            }
            self.charge(1);
        }
        Ok(())
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Total block reads charged so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read.load(Ordering::Relaxed)
    }

    /// Simulated elapsed I/O time in milliseconds, including injected
    /// latency spikes.
    pub fn elapsed_ms(&self) -> f64 {
        self.blocks_read.load(Ordering::Relaxed) as f64 * self.ms_per_block
            + self.extra_us.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The configured per-block cost.
    pub fn ms_per_block(&self) -> f64 {
        self.ms_per_block
    }

    /// Resets the counter to zero (the recorder's counter, being monotonic,
    /// is not rewound).
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.extra_us.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_obs::Obs;

    #[test]
    fn charges_accumulate() {
        let m = IoMeter::new(1.0);
        m.charge(3);
        m.charge(2);
        assert_eq!(m.blocks_read(), 5);
        assert!((m.elapsed_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn custom_block_cost() {
        let m = IoMeter::new(0.5);
        m.charge(4);
        assert!((m.elapsed_ms() - 2.0).abs() < 1e-12);
        assert!((m.ms_per_block() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let m = IoMeter::default();
        m.charge(10);
        m.reset();
        assert_eq!(m.blocks_read(), 0);
        assert_eq!(m.elapsed_ms(), 0.0);
    }

    #[test]
    fn recorder_sees_every_charge() {
        let obs = Arc::new(Obs::new());
        let m = IoMeter::with_recorder(1.0, obs.clone());
        m.charge(7);
        m.reset();
        m.charge(2);
        assert_eq!(m.blocks_read(), 2);
        // Monotonic counter keeps the pre-reset charges too.
        assert_eq!(obs.registry().counter(BLOCKS_READ_COUNTER), 9);
    }

    #[test]
    #[should_panic]
    fn negative_cost_rejected() {
        let _ = IoMeter::new(-1.0);
    }

    #[test]
    fn try_charge_without_plan_is_charge() {
        let m = IoMeter::new(1.0);
        m.try_charge(5).unwrap();
        assert_eq!(m.blocks_read(), 5);
    }

    #[test]
    fn try_charge_injects_on_schedule_and_keeps_partial_reads() {
        use crate::fault::{FaultMode, FaultPlan};
        let plan = Arc::new(FaultPlan::new(1, FaultMode::EveryNth { n: 3 }));
        let m = IoMeter::new(1.0).with_fault_plan(plan.clone());
        // Reads 0 and 1 succeed, read 2 fails: two blocks stay charged.
        let err = m.try_charge(5).unwrap_err();
        assert_eq!(err, StorageError::InjectedIo { read_index: 2 });
        assert_eq!(m.blocks_read(), 2);
        assert_eq!(plan.faults_injected(), 1);
    }

    #[test]
    fn spikes_accumulate_into_elapsed_ms() {
        use crate::fault::{FaultMode, FaultPlan};
        let plan = Arc::new(FaultPlan::new(
            1,
            FaultMode::LatencySpike {
                every: 2,
                spike_ms: 5.0,
            },
        ));
        let m = IoMeter::new(1.0).with_fault_plan(plan);
        m.try_charge(4).unwrap();
        // 4 blocks * 1ms + 2 spikes * 5ms.
        assert!((m.elapsed_ms() - 14.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.elapsed_ms(), 0.0);
    }

    #[test]
    fn fault_counters_reach_recorder() {
        use crate::fault::{FaultMode, FaultPlan};
        let obs = Arc::new(Obs::new());
        let plan = Arc::new(FaultPlan::new(1, FaultMode::FirstK { k: 1 }));
        let m = IoMeter::with_recorder(1.0, obs.clone()).with_fault_plan(plan);
        assert!(m.try_charge(1).is_err());
        m.try_charge(3).unwrap();
        assert_eq!(obs.registry().counter(FAULTS_INJECTED_COUNTER), 1);
        assert_eq!(obs.registry().counter(BLOCKS_READ_COUNTER), 3);
    }
}
