//! # cqp-storage
//!
//! In-memory, block-oriented relational storage used as the database
//! substrate for the reproduction of *"Constrained Optimalities in Query
//! Personalization"* (Koutrika & Ioannidis, SIGMOD 2005).
//!
//! The paper ran its experiments on top of Oracle 9i, but its cost model is
//! deliberately coarse: the execution cost of a sub-query is `b × Σ blocks(R)`
//! over the relations it touches, with `b` the time to read one block from
//! disk (Section 7.1). This crate therefore models exactly the artefacts that
//! model needs:
//!
//! * typed [`Value`]s and tuples,
//! * relation [`schema::RelationSchema`]s collected in a [`catalog::Catalog`],
//! * [`table::Table`]s whose rows live in fixed-capacity [`block::Block`]s so
//!   that `blocks(R)` is well defined,
//! * per-column [`stats::ColumnStats`] (distinct counts, min/max, equi-depth
//!   histograms) for cardinality estimation, and
//! * an [`disk::IoMeter`] that charges a configurable number of milliseconds
//!   per block read, so that executing a query yields a *measured* cost
//!   comparable with the estimated one (paper Figure 15).
//!
//! Everything is deterministic and single-threaded; the CQP algorithms in the
//! paper are sequential, and reproducibility of the experiments matters more
//! than parallel throughput here.
//!
//! ```
//! use cqp_storage::{Database, DataType, RelationSchema, Value};
//!
//! let mut db = Database::with_block_capacity(2);
//! let genre = db
//!     .create_relation(RelationSchema::new(
//!         "GENRE",
//!         vec![("mid", DataType::Int), ("genre", DataType::Str)],
//!     ))
//!     .unwrap();
//! db.insert_into("GENRE", vec![Value::Int(1), Value::str("musical")]).unwrap();
//! db.insert_into("GENRE", vec![Value::Int(2), Value::str("drama")]).unwrap();
//! db.insert_into("GENRE", vec![Value::Int(3), Value::str("musical")]).unwrap();
//!
//! // blocks(R): 3 rows at 2 per block = 2 blocks — the unit of the
//! // paper's cost model.
//! assert_eq!(db.table(genre).unwrap().num_blocks(), 2);
//!
//! // ANALYZE: per-column statistics drive cardinality estimation.
//! let stats = db.analyze();
//! let genre_col = &stats.table(genre.index()).unwrap().columns[1];
//! assert_eq!(genre_col.n_distinct, 2);
//! ```

pub mod block;
pub mod catalog;
pub mod csv;
pub mod database;
pub mod disk;
pub mod error;
pub mod fault;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use csv::{dump_table, load_table, load_table_recorded, CsvError};
pub use database::Database;
pub use disk::{IoMeter, BLOCKS_READ_COUNTER, FAULTS_INJECTED_COUNTER, LATENCY_SPIKES_COUNTER};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultMode, FaultPlan, ReadOutcome, WriteOutcome};
pub use schema::{AttrId, AttributeDef, QualifiedAttr, RelationId, RelationSchema};
pub use stats::{ColumnStats, DbStats, TableStats};
pub use table::Table;
pub use value::{DataType, Tuple, Value};
