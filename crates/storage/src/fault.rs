//! Deterministic fault injection for the simulated disk.
//!
//! A [`FaultPlan`] sits between the executor and the [`IoMeter`]: every
//! metered block read first consults the plan, which may turn the read into
//! an injected I/O error or tax it with a simulated latency spike. All
//! decisions are pure functions of `(seed, global read index, mode)`, so a
//! plan replays identically for a fixed sequence of reads — the property the
//! fault-injection test suite relies on to assert bit-identical results once
//! retries succeed.
//!
//! Under concurrency the *global read order* is whatever interleaving the
//! scheduler produced, so per-index decisions remain deterministic but fault
//! *positions* can move between runs. Tests that need an exact injected-fault
//! count either run single-threaded, use [`FaultMode::FirstK`] (position
//! independent), or cap the plan with [`FaultPlan::with_max_faults`] so the
//! total number of injected errors is fixed regardless of interleaving.
//!
//! [`IoMeter`]: crate::disk::IoMeter

use std::sync::atomic::{AtomicU64, Ordering};

/// What a [`FaultPlan`] does to metered reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Inject an I/O error on every `n`-th read (reads `n-1`, `2n-1`, … in
    /// zero-based order). `n == 0` never fires.
    EveryNth {
        /// Period of the injected errors.
        n: u64,
    },
    /// Inject an I/O error on the first `k` reads, then run clean. This is
    /// the "first-access failure" regime: position independent, hence fully
    /// deterministic even under concurrency.
    FirstK {
        /// Number of leading reads that fail.
        k: u64,
    },
    /// Inject an I/O error on each read independently with probability
    /// `rate`, hashed from `(seed, read index)`.
    Random {
        /// Per-read failure probability in `[0, 1]`.
        rate: f64,
    },
    /// Never error; instead add `spike_ms` of simulated latency to every
    /// `every`-th read. `every == 0` never fires.
    LatencySpike {
        /// Period of the spikes.
        every: u64,
        /// Extra simulated milliseconds charged on a spiking read.
        spike_ms: f64,
    },
    /// A *write*-side fault: the `nth` consulted write (zero-based) is
    /// torn — only `keep_bytes` of its payload reach the disk before the
    /// simulated crash. Reads are never affected. This is the crash model
    /// the WAL recovery tests exercise: an append interrupted mid-record
    /// must be healed by truncate-at-first-bad-record on replay.
    TornWrite {
        /// Zero-based index of the write that tears.
        nth: u64,
        /// Bytes of the torn write's payload that survive.
        keep_bytes: u64,
    },
}

/// Outcome of consulting a plan for one appended write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write proceeds in full.
    Ok,
    /// The write is torn: only the first `keep_bytes` bytes land, then the
    /// writer must behave as if the process crashed (return an error).
    Torn {
        /// Bytes of the payload that reach storage.
        keep_bytes: u64,
    },
}

/// Outcome of consulting a plan for one block read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadOutcome {
    /// The read proceeds normally.
    Ok,
    /// The read fails with an injected I/O error at this global index.
    Fail {
        /// Zero-based global read index that failed.
        read_index: u64,
    },
    /// The read succeeds but costs this many extra simulated milliseconds.
    Spike {
        /// Extra simulated milliseconds.
        extra_ms: f64,
    },
}

/// A seeded, shareable schedule of injected storage faults.
///
/// The plan keeps a global read counter; each consulted read claims the next
/// index and the decision for that index is deterministic. Counters for
/// injected errors and latency spikes are exposed so tests and the batch
/// driver can assert on them.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    mode: FaultMode,
    /// Injection budget: once this many errors have been injected the plan
    /// runs clean. `u64::MAX` means unlimited.
    max_faults: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    injected: AtomicU64,
    spikes: AtomicU64,
    torn: AtomicU64,
}

impl FaultPlan {
    /// Creates a plan with an unlimited injection budget.
    pub fn new(seed: u64, mode: FaultMode) -> Self {
        if let FaultMode::Random { rate } = mode {
            assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        }
        FaultPlan {
            seed,
            mode,
            max_faults: u64::MAX,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            torn: AtomicU64::new(0),
        }
    }

    /// Caps the total number of injected errors at `n`. With a cap, the
    /// injected-error count is deterministic even when thread interleaving
    /// moves the fault positions around.
    pub fn with_max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured mode.
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// Total reads consulted so far.
    pub fn reads_seen(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total I/O errors injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total latency spikes applied so far.
    pub fn spikes_applied(&self) -> u64 {
        self.spikes.load(Ordering::Relaxed)
    }

    /// Total writes consulted so far.
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total writes torn so far.
    pub fn writes_torn(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }

    /// Claims the next global read index and decides its fate.
    pub fn on_read(&self) -> ReadOutcome {
        let i = self.reads.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            FaultMode::EveryNth { n } => {
                if n > 0 && (i + 1) % n == 0 && self.try_take_budget() {
                    ReadOutcome::Fail { read_index: i }
                } else {
                    ReadOutcome::Ok
                }
            }
            FaultMode::FirstK { k } => {
                if i < k && self.try_take_budget() {
                    ReadOutcome::Fail { read_index: i }
                } else {
                    ReadOutcome::Ok
                }
            }
            FaultMode::Random { rate } => {
                if unit_f64(splitmix64(
                    self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )) < rate
                    && self.try_take_budget()
                {
                    ReadOutcome::Fail { read_index: i }
                } else {
                    ReadOutcome::Ok
                }
            }
            FaultMode::LatencySpike { every, spike_ms } => {
                if every > 0 && (i + 1) % every == 0 {
                    self.spikes.fetch_add(1, Ordering::Relaxed);
                    ReadOutcome::Spike { extra_ms: spike_ms }
                } else {
                    ReadOutcome::Ok
                }
            }
            // Write-side mode: reads always proceed.
            FaultMode::TornWrite { .. } => ReadOutcome::Ok,
        }
    }

    /// Claims the next global write index and decides its fate. `len` is
    /// the payload length of the write being attempted; a torn outcome
    /// never keeps more than `len` bytes. Read-side modes leave writes
    /// untouched.
    pub fn on_write(&self, len: u64) -> WriteOutcome {
        let i = self.writes.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            FaultMode::TornWrite { nth, keep_bytes } if i == nth => {
                self.torn.fetch_add(1, Ordering::Relaxed);
                WriteOutcome::Torn {
                    keep_bytes: keep_bytes.min(len),
                }
            }
            _ => WriteOutcome::Ok,
        }
    }

    /// Atomically claims one unit of injection budget; `false` once the cap
    /// is exhausted (the read then proceeds normally).
    fn try_take_budget(&self) -> bool {
        loop {
            let cur = self.injected.load(Ordering::Relaxed);
            if cur >= self.max_faults {
                return false;
            }
            if self
                .injected
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// SplitMix64 — the shared workspace mixer; good enough to decorrelate
/// per-read coin flips from the seed.
use rand::splitmix64_mix as splitmix64;

/// Maps a u64 to a uniform float in `[0, 1)`.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nth_fires_on_schedule() {
        let plan = FaultPlan::new(1, FaultMode::EveryNth { n: 3 });
        let outcomes: Vec<_> = (0..9).map(|_| plan.on_read()).collect();
        for (i, o) in outcomes.iter().enumerate() {
            if (i + 1) % 3 == 0 {
                assert_eq!(
                    *o,
                    ReadOutcome::Fail {
                        read_index: i as u64
                    }
                );
            } else {
                assert_eq!(*o, ReadOutcome::Ok);
            }
        }
        assert_eq!(plan.faults_injected(), 3);
        assert_eq!(plan.reads_seen(), 9);
    }

    #[test]
    fn every_nth_zero_never_fires() {
        let plan = FaultPlan::new(1, FaultMode::EveryNth { n: 0 });
        for _ in 0..16 {
            assert_eq!(plan.on_read(), ReadOutcome::Ok);
        }
        assert_eq!(plan.faults_injected(), 0);
    }

    #[test]
    fn first_k_fails_then_clean() {
        let plan = FaultPlan::new(7, FaultMode::FirstK { k: 2 });
        assert_eq!(plan.on_read(), ReadOutcome::Fail { read_index: 0 });
        assert_eq!(plan.on_read(), ReadOutcome::Fail { read_index: 1 });
        for _ in 0..10 {
            assert_eq!(plan.on_read(), ReadOutcome::Ok);
        }
        assert_eq!(plan.faults_injected(), 2);
    }

    #[test]
    fn max_faults_caps_injections() {
        let plan = FaultPlan::new(1, FaultMode::EveryNth { n: 2 }).with_max_faults(3);
        for _ in 0..100 {
            plan.on_read();
        }
        assert_eq!(plan.faults_injected(), 3);
    }

    #[test]
    fn random_is_deterministic_for_a_seed() {
        let a = FaultPlan::new(42, FaultMode::Random { rate: 0.25 });
        let b = FaultPlan::new(42, FaultMode::Random { rate: 0.25 });
        let oa: Vec<_> = (0..64).map(|_| a.on_read()).collect();
        let ob: Vec<_> = (0..64).map(|_| b.on_read()).collect();
        assert_eq!(oa, ob);
        assert!(
            a.faults_injected() > 0,
            "rate 0.25 over 64 reads should fire"
        );
        assert!(a.faults_injected() < 64);
    }

    #[test]
    fn random_rate_extremes() {
        let never = FaultPlan::new(9, FaultMode::Random { rate: 0.0 });
        for _ in 0..32 {
            assert_eq!(never.on_read(), ReadOutcome::Ok);
        }
        let always = FaultPlan::new(9, FaultMode::Random { rate: 1.0 });
        for i in 0..32u64 {
            assert_eq!(always.on_read(), ReadOutcome::Fail { read_index: i });
        }
    }

    #[test]
    fn latency_spikes_never_error() {
        let plan = FaultPlan::new(
            1,
            FaultMode::LatencySpike {
                every: 4,
                spike_ms: 10.0,
            },
        );
        let mut spikes = 0;
        for _ in 0..16 {
            match plan.on_read() {
                ReadOutcome::Spike { extra_ms } => {
                    assert!((extra_ms - 10.0).abs() < 1e-12);
                    spikes += 1;
                }
                ReadOutcome::Ok => {}
                ReadOutcome::Fail { .. } => panic!("latency mode must not error"),
            }
        }
        assert_eq!(spikes, 4);
        assert_eq!(plan.spikes_applied(), 4);
        assert_eq!(plan.faults_injected(), 0);
    }

    #[test]
    #[should_panic]
    fn random_rate_out_of_range_rejected() {
        let _ = FaultPlan::new(1, FaultMode::Random { rate: 1.5 });
    }

    #[test]
    fn torn_write_fires_exactly_once_at_nth() {
        let plan = FaultPlan::new(
            1,
            FaultMode::TornWrite {
                nth: 2,
                keep_bytes: 5,
            },
        );
        assert_eq!(plan.on_write(100), WriteOutcome::Ok);
        assert_eq!(plan.on_write(100), WriteOutcome::Ok);
        assert_eq!(plan.on_write(100), WriteOutcome::Torn { keep_bytes: 5 });
        for _ in 0..8 {
            assert_eq!(plan.on_write(100), WriteOutcome::Ok);
        }
        assert_eq!(plan.writes_seen(), 11);
        assert_eq!(plan.writes_torn(), 1);
    }

    #[test]
    fn torn_write_keeps_at_most_payload_len() {
        let plan = FaultPlan::new(
            1,
            FaultMode::TornWrite {
                nth: 0,
                keep_bytes: 1_000,
            },
        );
        assert_eq!(plan.on_write(7), WriteOutcome::Torn { keep_bytes: 7 });
    }

    #[test]
    fn torn_write_mode_leaves_reads_alone() {
        let plan = FaultPlan::new(
            1,
            FaultMode::TornWrite {
                nth: 0,
                keep_bytes: 0,
            },
        );
        for _ in 0..16 {
            assert_eq!(plan.on_read(), ReadOutcome::Ok);
        }
        assert_eq!(plan.faults_injected(), 0);
    }

    #[test]
    fn read_modes_leave_writes_alone() {
        let plan = FaultPlan::new(1, FaultMode::FirstK { k: 8 });
        for _ in 0..16 {
            assert_eq!(plan.on_write(64), WriteOutcome::Ok);
        }
        assert_eq!(plan.writes_torn(), 0);
        assert_eq!(plan.writes_seen(), 16);
    }
}
