//! Relation schemas and attribute references.
//!
//! The paper's personalization graph (Section 3) extends the *database
//! schema graph*: relation nodes and attribute nodes come straight from the
//! schema described here; join edges connect attribute nodes.

use crate::value::DataType;
use std::fmt;

/// Index of a relation within a [`crate::catalog::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u16);

impl RelationId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of an attribute within a relation schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fully qualified attribute: `(relation, attribute)`, e.g. `MOVIE.did`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QualifiedAttr {
    /// The relation the attribute belongs to.
    pub relation: RelationId,
    /// The attribute within that relation.
    pub attr: AttrId,
}

impl QualifiedAttr {
    /// Builds a qualified attribute from raw indices.
    pub fn new(relation: u16, attr: u16) -> Self {
        QualifiedAttr {
            relation: RelationId(relation),
            attr: AttrId(attr),
        }
    }
}

/// Definition of one attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Attribute name, e.g. `title`.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl AttributeDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        AttributeDef {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of one relation: a name plus an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, e.g. `MOVIE`.
    pub name: String,
    /// Ordered attribute definitions.
    pub attributes: Vec<AttributeDef>,
}

impl RelationSchema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(name: impl Into<String>, attrs: Vec<(&str, DataType)>) -> Self {
        RelationSchema {
            name: name.into(),
            attributes: attrs
                .into_iter()
                .map(|(n, ty)| AttributeDef::new(n, ty))
                .collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u16))
    }

    /// Returns the definition of an attribute, if the id is in range.
    pub fn attr(&self, id: AttrId) -> Option<&AttributeDef> {
        self.attributes.get(id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_schema() -> RelationSchema {
        RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        )
    }

    #[test]
    fn attr_lookup_by_name() {
        let s = movie_schema();
        assert_eq!(s.attr_id("title"), Some(AttrId(1)));
        assert_eq!(s.attr_id("did"), Some(AttrId(4)));
        assert_eq!(s.attr_id("nope"), None);
        assert_eq!(s.arity(), 5);
    }

    #[test]
    fn attr_def_access() {
        let s = movie_schema();
        let a = s.attr(AttrId(1)).unwrap();
        assert_eq!(a.name, "title");
        assert_eq!(a.ty, DataType::Str);
        assert!(s.attr(AttrId(99)).is_none());
    }

    #[test]
    fn qualified_attr_ordering_and_display() {
        let a = QualifiedAttr::new(0, 4);
        let b = QualifiedAttr::new(1, 0);
        assert!(a < b);
        assert_eq!(RelationId(3).to_string(), "3");
        assert_eq!(AttrId(2).to_string(), "2");
    }
}
