//! Table and column statistics for cardinality estimation.
//!
//! The CQP "Parameter Estimation" module (paper Section 4.3) needs sizes of
//! personalized queries without executing them. We keep the classic set of
//! per-column statistics — row/null/distinct counts, min/max, most common
//! values, and an equi-depth histogram — and derive selectivities from them
//! under the usual uniformity and independence assumptions. The paper itself
//! notes that "one can afford to use a much less detailed cost model in CQP
//! than the one found in a typical query optimizer" (Section 2).

use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Number of most-common values tracked per column.
pub const MCV_TARGET: usize = 8;

/// Number of equi-depth histogram buckets per column.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Statistics for a single column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Rows in the table (including NULLs in this column).
    pub n_rows: usize,
    /// NULL values in this column.
    pub n_nulls: usize,
    /// Distinct non-NULL values.
    pub n_distinct: usize,
    /// Minimum non-NULL value, if any row exists.
    pub min: Option<Value>,
    /// Maximum non-NULL value, if any row exists.
    pub max: Option<Value>,
    /// Most common values with their frequencies, descending by frequency.
    pub mcv: Vec<(Value, usize)>,
    /// Equi-depth bucket upper bounds over [`Value::numeric_key`].
    pub histogram: Vec<f64>,
}

impl ColumnStats {
    /// Computes statistics for one column of a table.
    pub fn compute(table: &Table, attr: usize) -> Self {
        let n_rows = table.num_rows();
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        let mut n_nulls = 0usize;
        for v in table.column(attr) {
            if v.is_null() {
                n_nulls += 1;
            } else {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let n_distinct = counts.len();

        let mut freq: Vec<(&Value, usize)> = counts.iter().map(|(v, c)| (*v, *c)).collect();
        // Sort by frequency descending, then by value for determinism.
        freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mcv: Vec<(Value, usize)> = freq
            .iter()
            .take(MCV_TARGET)
            .map(|(v, c)| ((*v).clone(), *c))
            .collect();

        let min = counts.keys().min().map(|v| (*v).clone());
        let max = counts.keys().max().map(|v| (*v).clone());

        // Equi-depth histogram over the numeric key.
        let mut keys: Vec<f64> = table
            .column(attr)
            .filter(|v| !v.is_null())
            .map(Value::numeric_key)
            .collect();
        keys.sort_by(|a, b| a.partial_cmp(b).expect("numeric keys are not NaN"));
        let histogram = if keys.is_empty() {
            Vec::new()
        } else {
            let mut bounds = Vec::with_capacity(HISTOGRAM_BUCKETS);
            for b in 1..=HISTOGRAM_BUCKETS {
                let idx = (b * keys.len()) / HISTOGRAM_BUCKETS;
                let idx = idx.saturating_sub(1).min(keys.len() - 1);
                bounds.push(keys[idx]);
            }
            bounds
        };

        ColumnStats {
            n_rows,
            n_nulls,
            n_distinct,
            min,
            max,
            mcv,
            histogram,
        }
    }

    /// Fraction of rows with a non-NULL value in this column.
    pub fn non_null_frac(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            (self.n_rows - self.n_nulls) as f64 / self.n_rows as f64
        }
    }

    /// Estimated selectivity of `column = value`.
    ///
    /// Uses exact MCV frequencies where available, and uniformity over the
    /// remaining distinct values otherwise.
    pub fn selectivity_eq(&self, value: &Value) -> f64 {
        if self.n_rows == 0 || value.is_null() {
            return 0.0;
        }
        if let Some((_, c)) = self.mcv.iter().find(|(v, _)| v == value) {
            return *c as f64 / self.n_rows as f64;
        }
        let mcv_rows: usize = self.mcv.iter().map(|(_, c)| *c).sum();
        let rest_rows = (self.n_rows - self.n_nulls).saturating_sub(mcv_rows);
        let rest_distinct = self.n_distinct.saturating_sub(self.mcv.len());
        if rest_distinct == 0 {
            // Value not present at all (every distinct value is an MCV).
            return 0.0;
        }
        (rest_rows as f64 / rest_distinct as f64) / self.n_rows as f64
    }

    /// Estimated selectivity of `column <= value` using the histogram.
    pub fn selectivity_le(&self, value: &Value) -> f64 {
        if self.n_rows == 0 || value.is_null() || self.histogram.is_empty() {
            return 0.0;
        }
        let key = value.numeric_key();
        let below = self.histogram.iter().filter(|&&b| b <= key).count();
        let frac = below as f64 / self.histogram.len() as f64;
        frac.clamp(0.0, 1.0) * self.non_null_frac()
    }

    /// Estimated selectivity of `column >= value` using the histogram.
    pub fn selectivity_ge(&self, value: &Value) -> f64 {
        if self.n_rows == 0 || value.is_null() || self.histogram.is_empty() {
            return 0.0;
        }
        (self.non_null_frac() - self.selectivity_le(value))
            .max(1.0 / self.n_rows as f64)
            .min(1.0)
    }
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Block count — `blocks(R)` of the cost model.
    pub blocks: u64,
    /// Per-column statistics, in attribute order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics for all columns of a table.
    pub fn compute(table: &Table) -> Self {
        let columns = (0..table.schema().arity())
            .map(|i| ColumnStats::compute(table, i))
            .collect();
        TableStats {
            rows: table.num_rows(),
            blocks: table.num_blocks(),
            columns,
        }
    }
}

/// Statistics for every table of a database, indexed by relation id.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    /// Per-table statistics in relation-id order.
    pub tables: Vec<TableStats>,
}

impl DbStats {
    /// Statistics for a relation by id index.
    pub fn table(&self, relation: usize) -> Option<&TableStats> {
        self.tables.get(relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::DataType;

    fn table_with_genres(rows: &[(i64, &str)]) -> Table {
        let schema = RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        );
        let mut t = Table::with_block_capacity(schema, 4);
        for (mid, g) in rows {
            t.insert(vec![Value::Int(*mid), Value::str(*g)]).unwrap();
        }
        t
    }

    #[test]
    fn distinct_and_mcv_counts() {
        let rows: Vec<(i64, &str)> = (0..10)
            .map(|i| (i, if i < 6 { "drama" } else { "musical" }))
            .collect();
        let t = table_with_genres(&rows);
        let s = ColumnStats::compute(&t, 1);
        assert_eq!(s.n_rows, 10);
        assert_eq!(s.n_distinct, 2);
        assert_eq!(s.mcv[0], (Value::str("drama"), 6));
        assert!((s.selectivity_eq(&Value::str("drama")) - 0.6).abs() < 1e-12);
        assert!((s.selectivity_eq(&Value::str("musical")) - 0.4).abs() < 1e-12);
        assert_eq!(s.selectivity_eq(&Value::str("horror")), 0.0);
    }

    #[test]
    fn uniform_fallback_beyond_mcv() {
        // 20 distinct genres, one row each: MCV holds 8 of them, the rest get
        // the uniform estimate (12 rows over 12 distinct) / 20.
        let names: Vec<String> = (0..20).map(|i| format!("g{i:02}")).collect();
        let rows: Vec<(i64, &str)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as i64, n.as_str()))
            .collect();
        let t = table_with_genres(&rows);
        let s = ColumnStats::compute(&t, 1);
        assert_eq!(s.n_distinct, 20);
        assert_eq!(s.mcv.len(), MCV_TARGET);
        let non_mcv = names
            .iter()
            .find(|n| !s.mcv.iter().any(|(v, _)| v == &Value::str(n.as_str())))
            .unwrap();
        let sel = s.selectivity_eq(&Value::str(non_mcv.as_str()));
        assert!((sel - 1.0 / 20.0).abs() < 1e-12, "sel = {sel}");
    }

    #[test]
    fn nulls_are_excluded() {
        let schema = RelationSchema::new("T", vec![("x", DataType::Int)]);
        let mut t = Table::new(schema);
        t.insert(vec![Value::Int(1)]).unwrap();
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Int(1)]).unwrap();
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.n_nulls, 1);
        assert_eq!(s.n_distinct, 1);
        assert!((s.non_null_frac() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.selectivity_eq(&Value::Null), 0.0);
    }

    #[test]
    fn min_max_and_histogram() {
        let schema = RelationSchema::new("T", vec![("x", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 1..=100 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(100)));
        assert_eq!(s.histogram.len(), HISTOGRAM_BUCKETS);
        // About half the rows are <= 50.
        let sel = s.selectivity_le(&Value::Int(50));
        assert!((sel - 0.5).abs() < 0.1, "sel = {sel}");
        let ge = s.selectivity_ge(&Value::Int(50));
        assert!((ge - 0.5).abs() < 0.1, "ge = {ge}");
    }

    #[test]
    fn empty_table_stats() {
        let schema = RelationSchema::new("T", vec![("x", DataType::Int)]);
        let t = Table::new(schema);
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.n_rows, 0);
        assert_eq!(s.n_distinct, 0);
        assert!(s.histogram.is_empty());
        assert_eq!(s.selectivity_eq(&Value::Int(1)), 0.0);
        assert_eq!(s.selectivity_le(&Value::Int(1)), 0.0);
    }

    #[test]
    fn table_stats_cover_all_columns() {
        let t = table_with_genres(&[(1, "a"), (2, "b")]);
        let ts = TableStats::compute(&t);
        assert_eq!(ts.rows, 2);
        assert_eq!(ts.columns.len(), 2);
        assert_eq!(ts.blocks, 1);
    }
}
