//! Typed values and tuples.
//!
//! Values are the atoms stored in tables and compared by selection
//! predicates. The paper's personalization graph has *value nodes* "one for
//! each value that is of any interest to this user" (Section 3); those nodes
//! carry exactly these values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The data types supported by the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (NaN is rejected at construction time).
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// A single attribute value.
///
/// `Value` implements `Eq`, `Ord` and `Hash` (floats are compared by their
/// bit pattern after NaN has been rejected at construction), so values can be
/// used directly as hash-join and group-by keys.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for grouping purposes, but
    /// predicates treat NULL as non-matching (see [`Value::sql_eq`]).
    Null,
    /// Integer value.
    Int(i64),
    /// Float value; guaranteed non-NaN.
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// Constructs a float value, rejecting NaN.
    ///
    /// # Panics
    /// Panics if `v` is NaN; NaN has no place in a total order and would
    /// break grouping and histogram construction.
    pub fn float(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN values are not representable");
        Value::Float(v)
    }

    /// Constructs a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Short type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "VARCHAR",
        }
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL equality: NULL never equals anything (including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }

    /// Approximate heap footprint of the value in bytes, used by the
    /// memory-requirements experiment (paper Figure 13).
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Str(s) => s.capacity(),
            _ => 0,
        }
    }

    /// A numeric view of the value for histogram bucketing; strings hash to a
    /// stable pseudo-position so equi-depth histograms still work on them.
    pub fn numeric_key(&self) -> f64 {
        match self {
            Value::Null => f64::NEG_INFINITY,
            Value::Int(i) => *i as f64,
            Value::Float(v) => *v,
            Value::Str(s) => {
                // First 8 bytes, big-endian: preserves lexicographic order on
                // short ASCII prefixes, which is all histograms need.
                let mut buf = [0u8; 8];
                for (i, b) in s.as_bytes().iter().take(8).enumerate() {
                    buf[i] = *b;
                }
                u64::from_be_bytes(buf) as f64
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < Int/Float (numerically interleaved) < Str.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).expect("NaN rejected at construction"),
            (Int(a), Float(b)) => (*a as f64)
                .partial_cmp(b)
                .expect("NaN rejected at construction"),
            (Float(a), Int(b)) => a
                .partial_cmp(&(*b as f64))
                .expect("NaN rejected at construction"),
            (Int(_), Str(_)) | (Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) | (Str(_), Float(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A row of values.
pub type Tuple = Vec<Value>;

/// Approximate heap footprint of a tuple in bytes.
pub fn tuple_heap_size(t: &Tuple) -> usize {
    t.capacity() * std::mem::size_of::<Value>() + t.iter().map(Value::heap_size).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_eq_treats_null_as_unknown() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(Value::Int(1).sql_eq(&Value::Int(1)));
        assert!(!Value::Int(1).sql_eq(&Value::Int(2)));
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::str("musical");
        let b = Value::str("musical");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Value::float(f64::NAN);
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            Value::str("b"),
            Value::Int(10),
            Value::Null,
            Value::float(3.5),
            Value::str("a"),
            Value::Int(2),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(2));
        assert_eq!(vals[2], Value::float(3.5));
        assert_eq!(vals[3], Value::Int(10));
        assert_eq!(vals[4], Value::str("a"));
        assert_eq!(vals[5], Value::str("b"));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(3).cmp(&Value::float(3.0)), Ordering::Equal);
        assert_eq!(Value::Int(3).cmp(&Value::float(3.5)), Ordering::Less);
        assert_eq!(Value::float(4.0).cmp(&Value::Int(3)), Ordering::Greater);
    }

    #[test]
    fn numeric_key_preserves_string_prefix_order() {
        let a = Value::str("abc").numeric_key();
        let b = Value::str("abd").numeric_key();
        let c = Value::str("b").numeric_key();
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("W. Allen").to_string(), "'W. Allen'");
        assert_eq!(DataType::Str.to_string(), "VARCHAR");
    }

    #[test]
    fn heap_size_counts_string_capacity() {
        assert_eq!(Value::Int(1).heap_size(), 0);
        assert!(Value::str("hello").heap_size() >= 5);
        let t: Tuple = vec![Value::Int(1), Value::str("xy")];
        assert!(tuple_heap_size(&t) >= 2 * std::mem::size_of::<Value>() + 2);
    }
}
