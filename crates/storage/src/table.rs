//! Tables: block-organized tuple storage for one relation.

use crate::block::{Block, DEFAULT_BLOCK_CAPACITY};
use crate::error::{StorageError, StorageResult};
use crate::schema::RelationSchema;
use crate::value::{Tuple, Value};

/// A table stores the tuples of one relation in fixed-capacity blocks.
#[derive(Debug, Clone)]
pub struct Table {
    schema: RelationSchema,
    blocks: Vec<Block>,
    block_capacity: usize,
    num_rows: usize,
}

impl Table {
    /// Creates an empty table with the default block capacity.
    pub fn new(schema: RelationSchema) -> Self {
        Self::with_block_capacity(schema, DEFAULT_BLOCK_CAPACITY)
    }

    /// Creates an empty table with an explicit tuples-per-block capacity.
    ///
    /// # Panics
    /// Panics if `block_capacity` is zero.
    pub fn with_block_capacity(schema: RelationSchema, block_capacity: usize) -> Self {
        assert!(block_capacity > 0, "block capacity must be positive");
        Table {
            schema,
            blocks: Vec::new(),
            block_capacity,
            num_rows: 0,
        }
    }

    /// The relation schema of this table.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of tuples stored.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of blocks occupied — the `blocks(R)` of the paper's cost model.
    pub fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Tuples-per-block capacity.
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    /// Inserts a tuple after checking arity and types (NULL passes any type).
    pub fn insert(&mut self, row: Tuple) -> StorageResult<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (i, (value, def)) in row.iter().zip(&self.schema.attributes).enumerate() {
            if let Some(ty) = value.data_type() {
                if ty != def.ty {
                    return Err(StorageError::TypeMismatch {
                        relation: self.schema.name.clone(),
                        attr: i,
                        expected: match def.ty {
                            crate::value::DataType::Int => "INT",
                            crate::value::DataType::Float => "FLOAT",
                            crate::value::DataType::Str => "VARCHAR",
                        },
                        got: value.type_name(),
                    });
                }
            }
        }
        self.insert_unchecked(row);
        Ok(())
    }

    /// Inserts a tuple without schema validation (used by bulk loaders that
    /// construct well-typed rows by design).
    pub fn insert_unchecked(&mut self, row: Tuple) {
        let needs_new = match self.blocks.last() {
            Some(b) => b.is_full(self.block_capacity),
            None => true,
        };
        if needs_new {
            self.blocks.push(Block::with_capacity(self.block_capacity));
        }
        self.blocks
            .last_mut()
            .expect("a block was just ensured")
            .push(row);
        self.num_rows += 1;
    }

    /// The blocks of this table, for executors that meter I/O per block.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Iterates over all tuples without I/O metering (loaders, statistics).
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.blocks.iter().flat_map(|b| b.rows().iter())
    }

    /// Returns the values of one column without I/O metering.
    pub fn column(&self, attr: usize) -> impl Iterator<Item = &Value> {
        self.rows().map(move |r| &r[attr])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::DataType;

    fn genre_table(block_capacity: usize) -> Table {
        let schema = RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        );
        Table::with_block_capacity(schema, block_capacity)
    }

    #[test]
    fn rows_spill_into_blocks() {
        let mut t = genre_table(3);
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::str("musical")])
                .unwrap();
        }
        assert_eq!(t.num_rows(), 10);
        // ceil(10 / 3) = 4 blocks
        assert_eq!(t.num_blocks(), 4);
        assert_eq!(t.blocks()[0].len(), 3);
        assert_eq!(t.blocks()[3].len(), 1);
    }

    #[test]
    fn arity_is_checked() {
        let mut t = genre_table(4);
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn types_are_checked_but_null_passes() {
        let mut t = genre_table(4);
        let err = t
            .insert(vec![Value::str("x"), Value::str("y")])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { attr: 0, .. }));
        t.insert(vec![Value::Null, Value::str("drama")]).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn column_iteration() {
        let mut t = genre_table(2);
        t.insert(vec![Value::Int(1), Value::str("musical")])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::str("drama")]).unwrap();
        let genres: Vec<_> = t.column(1).cloned().collect();
        assert_eq!(genres, vec![Value::str("musical"), Value::str("drama")]);
    }

    #[test]
    fn empty_table_has_zero_blocks() {
        let t = genre_table(4);
        assert_eq!(t.num_blocks(), 0);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "block capacity")]
    fn zero_capacity_rejected() {
        let _ = genre_table(0);
    }
}
