//! Error types shared across the storage layer.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// An attribute name was not found in a relation.
    UnknownAttribute {
        /// Relation searched.
        relation: String,
        /// Attribute that was missing.
        attribute: String,
    },
    /// A relation id was out of range for the catalog.
    RelationIdOutOfRange(usize),
    /// An attribute id was out of range for its relation.
    AttrIdOutOfRange {
        /// Relation the attribute was looked up in.
        relation: String,
        /// The offending index.
        attr: usize,
    },
    /// A tuple's arity did not match the relation schema.
    ArityMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Expected number of attributes.
        expected: usize,
        /// Number of values in the tuple.
        got: usize,
    },
    /// A value's type did not match the attribute's declared type.
    TypeMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Attribute position.
        attr: usize,
        /// Declared type name.
        expected: &'static str,
        /// Actual type name.
        got: &'static str,
    },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// An I/O error injected by a [`FaultPlan`](crate::fault::FaultPlan).
    /// Transient by construction: a retry re-reads under a later read index
    /// and (unless the plan says otherwise) succeeds.
    InjectedIo {
        /// Zero-based global read index at which the fault fired.
        read_index: u64,
    },
}

impl StorageError {
    /// Whether a retry of the failed operation could plausibly succeed.
    /// Catalog and schema errors are permanent; only injected I/O faults
    /// (standing in for the flaky-disk regime) are transient.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::InjectedIo { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "unknown attribute `{attribute}` in relation `{relation}`"
                )
            }
            StorageError::RelationIdOutOfRange(id) => {
                write!(f, "relation id {id} out of range")
            }
            StorageError::AttrIdOutOfRange { relation, attr } => {
                write!(
                    f,
                    "attribute id {attr} out of range for relation `{relation}`"
                )
            }
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "tuple arity mismatch for relation `{relation}`: expected {expected}, got {got}"
            ),
            StorageError::TypeMismatch {
                relation,
                attr,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for `{relation}` attribute {attr}: expected {expected}, got {got}"
            ),
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            StorageError::InjectedIo { read_index } => {
                write!(f, "injected I/O error at block read {read_index}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias for storage results.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::UnknownRelation("MOVIE".into());
        assert!(e.to_string().contains("MOVIE"));

        let e = StorageError::UnknownAttribute {
            relation: "MOVIE".into(),
            attribute: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
        assert!(e.to_string().contains("MOVIE"));

        let e = StorageError::ArityMismatch {
            relation: "GENRE".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&StorageError::RelationIdOutOfRange(7));
    }

    #[test]
    fn only_injected_io_is_transient() {
        assert!(StorageError::InjectedIo { read_index: 3 }.is_transient());
        assert!(!StorageError::UnknownRelation("X".into()).is_transient());
        assert!(!StorageError::RelationIdOutOfRange(7).is_transient());
    }
}
