//! The catalog: the set of relation schemas, addressable by name or id.

use crate::error::{StorageError, StorageResult};
use crate::schema::{AttrId, QualifiedAttr, RelationId, RelationSchema};
use std::sync::atomic::{AtomicU64, Ordering};

/// A catalog of relation schemas.
///
/// `RelationId`s are indices into the catalog's insertion order, which keeps
/// every cross-crate reference (queries, preferences, statistics) a plain
/// integer. Every lookup (by id or by name) ticks an internal counter
/// (atomic, so a shared database can serve concurrent readers) so
/// observability layers can report catalog traffic without the catalog
/// depending on them; see [`Catalog::lookups`].
#[derive(Debug, Default)]
pub struct Catalog {
    relations: Vec<RelationSchema>,
    lookups: AtomicU64,
}

impl Clone for Catalog {
    fn clone(&self) -> Self {
        Catalog {
            relations: self.relations.clone(),
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
        }
    }
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a relation schema, returning its id.
    pub fn add_relation(&mut self, schema: RelationSchema) -> StorageResult<RelationId> {
        if self.relations.iter().any(|r| r.name == schema.name) {
            return Err(StorageError::DuplicateRelation(schema.name));
        }
        let id = RelationId(self.relations.len() as u16);
        self.relations.push(schema);
        Ok(id)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// All relation schemas in id order.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// Looks a relation up by id.
    pub fn relation(&self, id: RelationId) -> StorageResult<&RelationSchema> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.relations
            .get(id.index())
            .ok_or(StorageError::RelationIdOutOfRange(id.index()))
    }

    /// Looks a relation up by name.
    pub fn relation_id(&self, name: &str) -> StorageResult<RelationId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelationId(i as u16))
            .ok_or_else(|| StorageError::UnknownRelation(name.to_owned()))
    }

    /// Total schema lookups served (by id or name) since creation, for
    /// observability. Cloning a catalog copies the count taken so far.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Resolves `REL.attr` notation to a [`QualifiedAttr`].
    pub fn resolve(&self, relation: &str, attribute: &str) -> StorageResult<QualifiedAttr> {
        let rid = self.relation_id(relation)?;
        let schema = self.relation(rid)?;
        let attr = schema
            .attr_id(attribute)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: relation.to_owned(),
                attribute: attribute.to_owned(),
            })?;
        Ok(QualifiedAttr {
            relation: rid,
            attr,
        })
    }

    /// Human-readable name of a qualified attribute, e.g. `MOVIE.title`.
    pub fn attr_name(&self, qa: QualifiedAttr) -> String {
        match self.relation(qa.relation) {
            Ok(schema) => {
                let attr = schema
                    .attr(qa.attr)
                    .map(|a| a.name.as_str())
                    .unwrap_or("<bad-attr>");
                format!("{}.{}", schema.name, attr)
            }
            Err(_) => format!("<bad-rel>.{}", qa.attr),
        }
    }

    /// Validates that a qualified attribute exists.
    pub fn check_attr(&self, qa: QualifiedAttr) -> StorageResult<()> {
        let schema = self.relation(qa.relation)?;
        if schema.attr(qa.attr).is_none() {
            return Err(StorageError::AttrIdOutOfRange {
                relation: schema.name.clone(),
                attr: qa.attr.index(),
            });
        }
        Ok(())
    }

    /// Looks up an attribute id within a relation by name.
    pub fn attr_id(&self, rid: RelationId, attribute: &str) -> StorageResult<AttrId> {
        let schema = self.relation(rid)?;
        schema
            .attr_id(attribute)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: schema.name.clone(),
                attribute: attribute.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    /// The movie schema of the paper's Section 3.
    pub fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn lookups_by_name_and_id() {
        let c = paper_catalog();
        assert_eq!(c.len(), 3);
        let movie = c.relation_id("MOVIE").unwrap();
        assert_eq!(movie, RelationId(0));
        assert_eq!(c.relation(movie).unwrap().name, "MOVIE");
        assert!(c.relation_id("RESTAURANT").is_err());
    }

    #[test]
    fn resolve_qualified_attribute() {
        let c = paper_catalog();
        let qa = c.resolve("DIRECTOR", "name").unwrap();
        assert_eq!(qa.relation, RelationId(1));
        assert_eq!(qa.attr, AttrId(1));
        assert_eq!(c.attr_name(qa), "DIRECTOR.name");
        assert!(c.resolve("DIRECTOR", "genre").is_err());
        assert!(c.resolve("NOPE", "name").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = paper_catalog();
        let err = c
            .add_relation(RelationSchema::new("MOVIE", vec![("x", DataType::Int)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }

    #[test]
    fn lookup_counter_ticks() {
        let c = paper_catalog();
        assert_eq!(c.lookups(), 0);
        let movie = c.relation_id("MOVIE").unwrap();
        let _ = c.relation(movie).unwrap();
        let _ = c.resolve("GENRE", "genre").unwrap();
        assert!(c.lookups() >= 3, "lookups = {}", c.lookups());
    }

    #[test]
    fn check_attr_bounds() {
        let c = paper_catalog();
        assert!(c.check_attr(QualifiedAttr::new(2, 1)).is_ok());
        assert!(c.check_attr(QualifiedAttr::new(2, 9)).is_err());
        assert!(c.check_attr(QualifiedAttr::new(9, 0)).is_err());
    }
}
