//! CSV bulk load and dump.
//!
//! Lets users bring their own data into the engine (and examine generated
//! data outside it) without any external dependency. The dialect is
//! deliberately simple: comma-separated, `"`-quoted fields with `""`
//! escapes, a mandatory header naming the attributes, and the literal
//! `NULL` (unquoted) for SQL NULL. Values are parsed according to the
//! relation schema's declared types.

use crate::database::Database;
use crate::error::{StorageError, StorageResult};
use crate::schema::RelationId;
use crate::value::{DataType, Value};
use cqp_obs::Recorder;
use std::fmt;
use std::path::Path;

/// Errors from CSV parsing (wrapped around storage errors on insert).
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or type failure at a given 1-based line.
    Parse {
        /// Line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The header did not match the relation schema.
    HeaderMismatch {
        /// What the schema wants.
        expected: String,
        /// What the file had.
        got: String,
    },
    /// Insertion failed (arity/type checks).
    Storage(StorageError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
            CsvError::HeaderMismatch { expected, got } => {
                write!(f, "header mismatch: expected `{expected}`, got `{got}`")
            }
            CsvError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<StorageError> for CsvError {
    fn from(e: StorageError) -> Self {
        CsvError::Storage(e)
    }
}

/// Splits one CSV record into `(field, was_quoted)` pairs, honouring
/// quotes. Quoting matters downstream: only an *unquoted* `NULL` is SQL
/// NULL.
fn split_record(line: &str, line_no: usize) -> Result<Vec<(String, bool)>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    let mut was_quoted = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                ',' => {
                    fields.push(finish_field(cur, was_quoted));
                    cur = String::new();
                    was_quoted = false;
                }
                '"' if cur.is_empty() => {
                    in_quotes = true;
                    was_quoted = true;
                }
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Parse {
            line: line_no,
            reason: "unterminated quoted field".into(),
        });
    }
    fields.push(finish_field(cur, was_quoted));
    Ok(fields)
}

/// Quoted fields keep their content verbatim; unquoted fields are trimmed.
fn finish_field(raw: String, was_quoted: bool) -> (String, bool) {
    if was_quoted {
        (raw, true)
    } else {
        (raw.trim().to_owned(), false)
    }
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s == "NULL" {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Serializes a table to CSV text (header + one record per tuple).
pub fn dump_table(db: &Database, relation: RelationId) -> StorageResult<String> {
    let table = db.table(relation)?;
    let schema = table.schema();
    let mut out = String::new();
    let header: Vec<&str> = schema.attributes.iter().map(|a| a.name.as_str()).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => "NULL".to_owned(),
                Value::Str(s) => quote_field(s),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    Ok(out)
}

/// Writes a table to a CSV file.
pub fn dump_table_to(db: &Database, relation: RelationId, path: &Path) -> Result<(), CsvError> {
    let text = dump_table(db, relation)?;
    std::fs::write(path, text)?;
    Ok(())
}

/// Loads CSV text into a relation, validating the header against the
/// schema and parsing each field by its declared type. Returns the number
/// of rows inserted.
pub fn load_table(db: &mut Database, relation: RelationId, text: &str) -> Result<usize, CsvError> {
    load_table_recorded(db, relation, text, &cqp_obs::NoopRecorder)
}

/// [`load_table`], reporting progress to `recorder`: a `storage.csv_load`
/// span wrapping the parse, plus `storage.csv_rows_loaded` /
/// `storage.csv_bytes_parsed` counters.
pub fn load_table_recorded(
    db: &mut Database,
    relation: RelationId,
    text: &str,
    recorder: &dyn Recorder,
) -> Result<usize, CsvError> {
    let _span = cqp_obs::record::span_guard(recorder, "storage.csv_load");
    let inserted = load_table_inner(db, relation, text)?;
    recorder.add("storage.csv_rows_loaded", inserted as u64);
    recorder.add("storage.csv_bytes_parsed", text.len() as u64);
    Ok(inserted)
}

fn load_table_inner(
    db: &mut Database,
    relation: RelationId,
    text: &str,
) -> Result<usize, CsvError> {
    let schema = db.table(relation)?.schema().clone();
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::Parse {
        line: 1,
        reason: "empty input (missing header)".into(),
    })?;
    let expected: Vec<&str> = schema.attributes.iter().map(|a| a.name.as_str()).collect();
    let got: Vec<String> = split_record(header, 1)?
        .into_iter()
        .map(|(f, _)| f)
        .collect();
    if got != expected {
        return Err(CsvError::HeaderMismatch {
            expected: expected.join(","),
            got: got.join(","),
        });
    }

    let mut inserted = 0usize;
    for (i, raw) in lines {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let fields = split_record(raw, line_no)?;
        if fields.len() != schema.arity() {
            return Err(CsvError::Parse {
                line: line_no,
                reason: format!("expected {} fields, got {}", schema.arity(), fields.len()),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for ((field, quoted), attr) in fields.iter().zip(&schema.attributes) {
            let value = if field == "NULL" && !quoted {
                Value::Null
            } else {
                match attr.ty {
                    DataType::Int => {
                        Value::Int(field.parse::<i64>().map_err(|_| CsvError::Parse {
                            line: line_no,
                            reason: format!("`{field}` is not an integer ({})", attr.name),
                        })?)
                    }
                    DataType::Float => {
                        let v = field.parse::<f64>().map_err(|_| CsvError::Parse {
                            line: line_no,
                            reason: format!("`{field}` is not a float ({})", attr.name),
                        })?;
                        if !v.is_finite() {
                            return Err(CsvError::Parse {
                                line: line_no,
                                reason: format!("non-finite float in {}", attr.name),
                            });
                        }
                        Value::Float(v)
                    }
                    DataType::Str => Value::Str(field.clone()),
                }
            };
            row.push(value);
        }
        db.insert(relation, row)?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Reads a CSV file into a relation.
pub fn load_table_from(
    db: &mut Database,
    relation: RelationId,
    path: &Path,
) -> Result<usize, CsvError> {
    load_table_from_recorded(db, relation, path, &cqp_obs::NoopRecorder)
}

/// [`load_table_from`] with observability, as in [`load_table_recorded`].
pub fn load_table_from_recorded(
    db: &mut Database,
    relation: RelationId,
    path: &Path,
    recorder: &dyn Recorder,
) -> Result<usize, CsvError> {
    let text = std::fs::read_to_string(path)?;
    load_table_recorded(db, relation, &text, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn movie_db() -> (Database, RelationId) {
        let mut db = Database::with_block_capacity(4);
        let rid = db
            .create_relation(RelationSchema::new(
                "MOVIE",
                vec![
                    ("mid", DataType::Int),
                    ("title", DataType::Str),
                    ("rating", DataType::Float),
                ],
            ))
            .unwrap();
        (db, rid)
    }

    #[test]
    fn roundtrip_with_quotes_and_nulls() {
        let (mut db, rid) = movie_db();
        db.insert(
            rid,
            vec![Value::Int(1), Value::str("Plain"), Value::float(7.5)],
        )
        .unwrap();
        db.insert(
            rid,
            vec![
                Value::Int(2),
                Value::str("Comma, The \"Movie\""),
                Value::Null,
            ],
        )
        .unwrap();
        db.insert(
            rid,
            vec![Value::Int(3), Value::str("NULL"), Value::float(1.0)],
        )
        .unwrap();

        let text = dump_table(&db, rid).unwrap();
        assert!(text.starts_with("mid,title,rating\n"));
        assert!(text.contains("\"Comma, The \"\"Movie\"\"\""));
        // The *string* "NULL" is quoted to distinguish it from SQL NULL.
        assert!(text.contains("3,\"NULL\",1"));

        let (mut db2, rid2) = movie_db();
        let n = load_table(&mut db2, rid2, &text).unwrap();
        assert_eq!(n, 3);
        let a: Vec<_> = db.table(rid).unwrap().rows().cloned().collect();
        let b: Vec<_> = db2.table(rid2).unwrap().rows().cloned().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn header_is_validated() {
        let (mut db, rid) = movie_db();
        let err = load_table(&mut db, rid, "mid,nope,rating\n1,x,2.0\n").unwrap_err();
        assert!(matches!(err, CsvError::HeaderMismatch { .. }));
    }

    #[test]
    fn type_errors_carry_line_numbers() {
        let (mut db, rid) = movie_db();
        let err = load_table(&mut db, rid, "mid,title,rating\n1,x,2.0\nnope,y,3.0\n").unwrap_err();
        match err {
            CsvError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("not an integer"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn arity_and_quoting_errors() {
        let (mut db, rid) = movie_db();
        let err = load_table(&mut db, rid, "mid,title,rating\n1,x\n").unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
        let err = load_table(&mut db, rid, "mid,title,rating\n1,\"open,2.0\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn file_roundtrip() {
        let (mut db, rid) = movie_db();
        db.insert(rid, vec![Value::Int(1), Value::str("A"), Value::float(5.0)])
            .unwrap();
        let path = std::env::temp_dir().join("cqp_csv_roundtrip.csv");
        dump_table_to(&db, rid, &path).unwrap();
        let (mut db2, rid2) = movie_db();
        assert_eq!(load_table_from(&mut db2, rid2, &path).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_skipped_and_empty_input_rejected() {
        let (mut db, rid) = movie_db();
        let n = load_table(&mut db, rid, "mid,title,rating\n\n1,x,2.0\n\n").unwrap();
        assert_eq!(n, 1);
        let err = load_table(&mut db, rid, "").unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }));
    }
}
