//! Fixed-capacity blocks of tuples.
//!
//! The paper's cost model counts *blocks*: `cost(qi) = b × Σ blocks(Rij)`
//! (Section 7.1). Rows are therefore stored in blocks of a configurable
//! tuple capacity, and `blocks(R)` is simply the number of blocks a table
//! occupies. Reading a block through the executor charges the
//! [`crate::disk::IoMeter`].

use crate::value::Tuple;

/// Default number of tuples per block.
///
/// With ~100-byte tuples this corresponds roughly to an 8 KiB page, the
/// classic default of the systems the paper ran on.
pub const DEFAULT_BLOCK_CAPACITY: usize = 64;

/// A block: up to `capacity` tuples stored contiguously.
#[derive(Debug, Clone, Default)]
pub struct Block {
    rows: Vec<Tuple>,
}

impl Block {
    /// Creates an empty block with room for `capacity` rows.
    pub fn with_capacity(capacity: usize) -> Self {
        Block {
            rows: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True if the block cannot accept another row under `capacity`.
    pub fn is_full(&self, capacity: usize) -> bool {
        self.rows.len() >= capacity
    }

    /// Appends a row. The caller (the table) enforces capacity.
    pub fn push(&mut self, row: Tuple) {
        self.rows.push(row);
    }

    /// The rows of this block.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn block_fills_up() {
        let mut b = Block::with_capacity(2);
        assert!(b.is_empty());
        assert!(!b.is_full(2));
        b.push(vec![Value::Int(1)]);
        b.push(vec![Value::Int(2)]);
        assert_eq!(b.len(), 2);
        assert!(b.is_full(2));
        assert!(!b.is_full(3));
        assert_eq!(b.rows()[1], vec![Value::Int(2)]);
    }
}
