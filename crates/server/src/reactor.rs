//! The epoll serving backend: a readiness-driven reactor pool.
//!
//! The threaded backend spends one OS thread per connection; this module
//! spends one *registration* per connection. A small pool of reactor
//! threads (each owning its own [`Epoll`] set) multiplexes every socket:
//! reactor 0 additionally owns the non-blocking listener and deals
//! accepted connections round-robin across the pool (cross-reactor
//! hand-off via an inbox + [`EventFd`] doorbell). Bytes are parsed
//! incrementally ([`RequestParser`]) as they arrive in arbitrary
//! fragments; a complete request is handed to a resident
//! [`Executor`](cqp_par::Executor) worker pool so the event loop never
//! runs solver work, and the finished response flows back through a
//! completion queue plus eventfd wakeup.
//!
//! ## Connection state machine
//!
//! ```text
//!              first byte                 request complete
//!   Idle ───────────────────▶ Reading ─────────────────────▶ Dispatched
//!    ▲                          │ parse error → Writing           │
//!    │                          │ deadline    → 408/Writing       │ worker done
//!    │        response flushed  ▼                                 ▼
//!    └───────────────────────  Writing  ◀─────────────────────────┘
//! ```
//!
//! Interest follows state: `READ` while Idle/Reading, `NONE` while
//! Dispatched (backpressure: a conn cannot pipeline past its in-flight
//! request), `WRITE` while a response is partially flushed. Deadlines are
//! a `BinaryHeap` of `(Instant, token)` pairs with lazy invalidation —
//! expiry semantics mirror the threaded backend exactly: Idle → reaped
//! silently (`server.idle_reaped`), Reading → `408` + close
//! (`server.read_timeouts`), Writing → severed (`server.write_timeouts`).
//!
//! ## Drain protocol
//!
//! [`EpollHandle::drain`] flips the phase (done by the caller), rings
//! every reactor's doorbell, and waits for the active-connection gauge to
//! hit zero. On the wakeup each reactor closes the listener (reactor 0)
//! and every *idle* connection immediately; Reading/Dispatched/Writing
//! connections finish their request — the shared
//! [`handle_request`] answers new work `503 + Connection: close` with the
//! same health/metrics/debug exemption as the threaded backend — and
//! close on write completion. Past the deadline a force-stop flag severs
//! whatever remains (counted in `DrainStats::forced`), reactors are
//! joined, then the worker pool is joined. Nothing is detached.

use crate::http::{HttpError, RequestParser, Response};
use crate::server::{
    handle_request, http_error_response, read_timeout_response, Phase, ServerState,
};
use cqp_obs::Recorder;
use cqp_par::Executor;
use cqp_sys::{Epoll, Event, EventFd, Interest};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reactor-internal token for the wakeup eventfd.
const TOKEN_WAKE: u64 = 0;
/// Reactor-internal token for the listener (reactor 0 only).
const TOKEN_LISTENER: u64 = 1;
/// First token handed to a connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Readiness events fetched per `epoll_wait`.
const EVENTS_PER_WAIT: usize = 1024;
/// Longest nap between housekeeping passes even with no deadline due.
const TICK: Duration = Duration::from_millis(500);
/// Most bytes read from one connection per readiness event, so a
/// firehose peer cannot starve its reactor's other connections.
const MAX_READ_PER_EVENT: usize = 1 << 20;

/// A finished response travelling from a worker back to its reactor.
#[derive(Debug)]
struct Completion {
    token: u64,
    response: Response,
    keep: bool,
}

/// The cross-thread face of one reactor.
#[derive(Debug)]
struct ReactorShared {
    /// Doorbell: rung for inbox hand-offs, completions, drain, and stop.
    wake: EventFd,
    /// Connections accepted by reactor 0, awaiting adoption here.
    inbox: Mutex<Vec<TcpStream>>,
    /// Finished responses awaiting write-out here.
    done: Mutex<Vec<Completion>>,
    /// Sever-everything-now flag, set at the drain deadline.
    force_stop: AtomicBool,
    /// Connections this reactor currently owns (gauge).
    conns_live: AtomicUsize,
}

impl ReactorShared {
    fn new() -> io::Result<ReactorShared> {
        Ok(ReactorShared {
            wake: EventFd::new()?,
            inbox: Mutex::new(Vec::new()),
            done: Mutex::new(Vec::new()),
            force_stop: AtomicBool::new(false),
            conns_live: AtomicUsize::new(0),
        })
    }
}

/// What one connection is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Keep-alive, between requests; idle deadline armed.
    Idle,
    /// Request bytes arriving; per-request read deadline armed.
    Reading,
    /// A complete request is executing on a worker; no interest, no
    /// deadline (the solver has its own `Budget`).
    Dispatched,
    /// Response partially flushed; write deadline armed.
    Writing,
}

/// One connection owned by a reactor thread.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    interest: Interest,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Requests parsed off this connection (the keep-alive cap input).
    served: usize,
    /// Active deadline, if any; heap entries not matching it are stale.
    deadline: Option<Instant>,
    /// Whether to return to Idle (true) or close after the current write.
    keep_after_write: bool,
    /// First-byte instant of the request currently being read.
    req_t0: Option<Instant>,
    /// Peer closed its write half (read returned 0).
    eof: bool,
}

/// The epoll backend's owner handle, held inside `ServerHandle`.
#[derive(Debug)]
pub(crate) struct EpollHandle {
    reactors: Vec<Arc<ReactorShared>>,
    threads: Vec<Option<JoinHandle<usize>>>,
    executor: Arc<Executor>,
}

impl EpollHandle {
    /// Spawns the reactor pool over an already-bound listener. Fails only
    /// on resource exhaustion (epoll/eventfd creation).
    pub(crate) fn start(listener: TcpListener, state: Arc<ServerState>) -> io::Result<EpollHandle> {
        listener.set_nonblocking(true)?;
        let n = state.config.reactor_threads.max(1);
        let workers = match state.config.worker_threads {
            // Auto: wide enough that every admissible (slot or queued)
            // request gets a worker, keeping the admission gate — not
            // this pool — the shedding bottleneck.
            0 => state.config.max_inflight + state.config.queue_cap + 2,
            w => w,
        };
        let executor = Arc::new(Executor::new(workers));
        let reactors = (0..n)
            .map(|_| ReactorShared::new().map(Arc::new))
            .collect::<io::Result<Vec<_>>>()?;
        let mut listener_slot = Some(listener);
        let mut threads = Vec::with_capacity(n);
        for idx in 0..n {
            let epoll = Epoll::with_capacity(EVENTS_PER_WAIT)?;
            let mut reactor = Reactor {
                idx,
                state: Arc::clone(&state),
                me: Arc::clone(&reactors[idx]),
                all: reactors.clone(),
                executor: Arc::clone(&executor),
                epoll,
                listener: if idx == 0 { listener_slot.take() } else { None },
                conns: HashMap::new(),
                timers: BinaryHeap::new(),
                next_token: TOKEN_FIRST_CONN,
                rr: 0,
                forced: 0,
                drained: false,
            };
            threads.push(Some(std::thread::spawn(move || reactor.run())));
        }
        Ok(EpollHandle {
            reactors,
            threads,
            executor,
        })
    }

    /// Wakes every reactor so it notices the phase flip, waits for the
    /// active-connection gauge to reach zero (or the deadline), then
    /// severs stragglers, joins every reactor thread, and joins the
    /// worker pool. Returns how many connections were severed.
    pub(crate) fn drain(&mut self, state: &Arc<ServerState>, deadline: Instant) -> usize {
        for r in &self.reactors {
            r.wake.notify();
        }
        while Instant::now() < deadline {
            if state.active_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        for r in &self.reactors {
            r.force_stop.store(true, Ordering::Release);
            r.wake.notify();
        }
        let mut forced = 0;
        for t in &mut self.threads {
            if let Some(h) = t.take() {
                forced += h.join().unwrap_or(0);
            }
        }
        self.executor.shutdown();
        forced
    }

    /// Idempotent late join for the already-drained path.
    pub(crate) fn join_all(&mut self) {
        for r in &self.reactors {
            r.force_stop.store(true, Ordering::Release);
            r.wake.notify();
        }
        for t in &mut self.threads {
            if let Some(h) = t.take() {
                let _ = h.join();
            }
        }
        self.executor.shutdown();
    }
}

/// One reactor thread's private world.
struct Reactor {
    idx: usize,
    state: Arc<ServerState>,
    me: Arc<ReactorShared>,
    all: Vec<Arc<ReactorShared>>,
    executor: Arc<Executor>,
    epoll: Epoll,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Min-heap of `(deadline, token)`; entries whose instant no longer
    /// matches the conn's `deadline` are stale and skipped.
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    next_token: u64,
    /// Round-robin cursor for dealing accepted connections.
    rr: usize,
    forced: usize,
    drained: bool,
}

impl Reactor {
    fn read_timeout(&self) -> Duration {
        Duration::from_millis(self.state.config.read_timeout_ms.max(1))
    }

    fn write_timeout(&self) -> Duration {
        Duration::from_millis(self.state.config.write_timeout_ms.max(1))
    }

    /// The event loop; returns how many connections it force-severed.
    fn run(&mut self) -> usize {
        if self
            .epoll
            .add(self.me.wake.raw_fd(), TOKEN_WAKE, Interest::READ)
            .is_err()
        {
            return 0;
        }
        if let Some(l) = &self.listener {
            if self
                .epoll
                .add(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                .is_err()
            {
                return 0;
            }
        }
        loop {
            self.adopt_inbox();
            self.process_completions();
            self.check_drain();
            if self.me.force_stop.load(Ordering::Acquire) {
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                self.forced += tokens.len();
                for t in tokens {
                    self.close_conn(t);
                }
                self.state.obs.add("server.reactor.stops", 1);
                return self.forced;
            }
            if self.drained && self.conns.is_empty() {
                return self.forced;
            }
            let timeout = match self.timers.peek() {
                Some(&Reverse((when, _))) => {
                    when.saturating_duration_since(Instant::now()).min(TICK)
                }
                None => TICK,
            };
            let events: Vec<Event> = match self.epoll.wait(Some(timeout)) {
                Ok(evs) => evs.to_vec(),
                Err(_) => Vec::new(),
            };
            for ev in events {
                match ev.token {
                    TOKEN_WAKE => {
                        self.me.wake.drain();
                        self.state.obs.add("server.reactor.wakeups", 1);
                    }
                    TOKEN_LISTENER => self.accept_ready(),
                    _ => self.conn_event(ev),
                }
            }
            self.fire_timers();
        }
    }

    /// Registers connections handed over by reactor 0 (or closes them if
    /// the drain started before adoption).
    fn adopt_inbox(&mut self) {
        let pending: Vec<TcpStream> = {
            let mut inbox = self.me.inbox.lock().unwrap_or_else(|p| p.into_inner());
            inbox.drain(..).collect()
        };
        for stream in pending {
            if self.drained || self.state.phase() != Phase::Live {
                drop(stream);
                continue;
            }
            self.adopt(stream);
        }
    }

    /// Takes ownership of one accepted connection.
    fn adopt(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .epoll
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.state.active_conns.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + self.read_timeout();
        self.conns.insert(
            token,
            Conn {
                stream,
                parser: RequestParser::new(),
                state: ConnState::Idle,
                interest: Interest::READ,
                write_buf: Vec::new(),
                write_pos: 0,
                served: 0,
                deadline: Some(deadline),
                keep_after_write: false,
                req_t0: None,
                eof: false,
            },
        );
        self.me.conns_live.store(self.conns.len(), Ordering::SeqCst);
        self.timers.push(Reverse((deadline, token)));
    }

    /// Accepts everything the listener has ready, dealing connections
    /// round-robin across the reactor pool.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.state.active_connections() >= self.state.config.max_connections {
                        // Over the fd budget: refuse by immediate close.
                        self.state.obs.add("server.reactor.over_capacity", 1);
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.state.obs.add("server.reactor.accepted", 1);
                    let target = self.rr % self.all.len();
                    self.rr += 1;
                    if target == self.idx {
                        self.adopt(stream);
                    } else {
                        {
                            let mut inbox = self.all[target]
                                .inbox
                                .lock()
                                .unwrap_or_else(|p| p.into_inner());
                            inbox.push(stream);
                        }
                        self.all[target].wake.notify();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Writes out every response the workers finished.
    fn process_completions(&mut self) {
        let pending: Vec<Completion> = {
            let mut done = self.me.done.lock().unwrap_or_else(|p| p.into_inner());
            done.drain(..).collect()
        };
        for c in pending {
            // The connection may have been severed while the request
            // executed; its response is dropped, same as the threaded
            // backend's write failing on a severed socket.
            if self.conns.contains_key(&c.token) {
                self.respond(c.token, c.response, c.keep);
            }
        }
    }

    /// One-time drain transition: close the listener and every idle
    /// connection; everything mid-request finishes normally.
    fn check_drain(&mut self) {
        if self.drained || self.state.phase() == Phase::Live {
            return;
        }
        self.drained = true;
        if let Some(l) = self.listener.take() {
            let _ = self.epoll.delete(l.as_raw_fd());
            drop(l);
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Idle)
            .map(|(&t, _)| t)
            .collect();
        for t in idle {
            self.close_conn(t);
        }
    }

    /// Removes, deregisters, and severs one connection.
    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.state.active_conns.fetch_sub(1, Ordering::SeqCst);
            self.me.conns_live.store(self.conns.len(), Ordering::SeqCst);
        }
    }

    /// Points a connection's registration at a new interest set.
    fn set_interest(&mut self, token: u64, interest: Interest) {
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.interest != interest {
                let _ = self.epoll.modify(conn.stream.as_raw_fd(), token, interest);
                conn.interest = interest;
            }
        }
    }

    /// Routes one readiness notification.
    fn conn_event(&mut self, ev: Event) {
        if ev.error {
            // EPOLLERR/EPOLLHUP: the peer is gone in both directions —
            // nothing useful can be read or written.
            self.close_conn(ev.token);
            return;
        }
        if ev.readable || ev.read_closed {
            self.on_readable(ev.token);
        }
        if ev.writable {
            self.flush(ev.token);
        }
    }

    /// Reads whatever the socket has buffered and advances the parser.
    fn on_readable(&mut self, token: u64) {
        let read_timeout = self.read_timeout();
        let mut closed = false;
        let mut new_deadline = None;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !matches!(conn.state, ConnState::Idle | ConnState::Reading) {
                return;
            }
            let mut buf = [0u8; 16 * 1024];
            let mut total = 0usize;
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.state == ConnState::Idle {
                            // First byte of a request: the per-request
                            // read deadline starts now, exactly like the
                            // threaded backend's request clock.
                            conn.state = ConnState::Reading;
                            let t0 = Instant::now();
                            conn.req_t0 = Some(t0);
                            let dl = t0 + read_timeout;
                            conn.deadline = Some(dl);
                            new_deadline = Some(dl);
                        }
                        conn.parser.feed(&buf[..n]);
                        total += n;
                        if total >= MAX_READ_PER_EVENT {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
        }
        if let Some(dl) = new_deadline {
            self.timers.push(Reverse((dl, token)));
        }
        if closed {
            self.close_conn(token);
            return;
        }
        self.pump(token);
    }

    /// Tries to complete a request off the parse buffer; dispatches it,
    /// answers a parse error, or (on EOF) closes — mirroring the
    /// threaded backend's error arms exactly.
    fn pump(&mut self, token: u64) {
        let parsed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !matches!(conn.state, ConnState::Idle | ConnState::Reading) {
                return;
            }
            conn.parser.try_next()
        };
        match parsed {
            Ok(Some(req)) => self.dispatch(token, req),
            Ok(None) => {
                let eof = self.conns.get(&token).is_some_and(|c| c.eof);
                if eof {
                    // Clean close, truncated head, or mid-body disconnect:
                    // the threaded backend returns silently on all three
                    // (`ConnectionClosed` / `Io(_)` arms) — reap, don't
                    // answer.
                    self.close_conn(token);
                }
            }
            Err(e) => match e {
                HttpError::ConnectionClosed | HttpError::Io(_) => self.close_conn(token),
                e => {
                    self.state.obs.add("server.http_errors", 1);
                    self.respond(token, http_error_response(&e), false);
                }
            },
        }
    }

    /// Hands one complete request to the worker pool.
    fn dispatch(&mut self, token: u64, req: crate::http::Request) {
        let (served, t0) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.served += 1;
            conn.state = ConnState::Dispatched;
            conn.deadline = None;
            (conn.served, conn.req_t0.take().unwrap_or_else(Instant::now))
        };
        self.set_interest(token, Interest::NONE);
        let parse_us = t0.elapsed().as_micros() as u64;
        let state = Arc::clone(&self.state);
        let me = Arc::clone(&self.me);
        let spawned = self.executor.spawn(move || {
            let (response, keep) = handle_request(&state, &req, served, t0, parse_us);
            {
                let mut done = me.done.lock().unwrap_or_else(|p| p.into_inner());
                done.push(Completion {
                    token,
                    response,
                    keep,
                });
            }
            me.wake.notify();
        });
        if !spawned {
            // Executor already stopping (shutdown raced ahead): the
            // connection cannot be answered anymore.
            self.close_conn(token);
        }
    }

    /// Serializes a response and starts (or finishes) flushing it.
    fn respond(&mut self, token: u64, response: Response, keep: bool) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.write_buf.clear();
            conn.write_pos = 0;
            // Writing into a Vec cannot fail.
            let _ = response.write_to(&mut conn.write_buf, keep);
            conn.keep_after_write = keep;
            conn.state = ConnState::Writing;
            conn.deadline = None;
        }
        self.flush(token);
    }

    /// Pushes buffered response bytes to the socket until done or blocked.
    fn flush(&mut self, token: u64) {
        enum Outcome {
            Finished,
            Blocked,
            Dead,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Writing {
                return;
            }
            loop {
                if conn.write_pos >= conn.write_buf.len() {
                    break Outcome::Finished;
                }
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => break Outcome::Dead,
                    Ok(n) => conn.write_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Outcome::Blocked,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Outcome::Dead,
                }
            }
        };
        match outcome {
            Outcome::Dead => self.close_conn(token),
            Outcome::Blocked => {
                let dl = Instant::now() + self.write_timeout();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.deadline = Some(dl);
                }
                self.timers.push(Reverse((dl, token)));
                self.set_interest(token, Interest::WRITE);
            }
            Outcome::Finished => self.finish_write(token),
        }
    }

    /// After a fully-flushed response: close, go idle, or start on the
    /// next pipelined request already sitting in the parse buffer.
    fn finish_write(&mut self, token: u64) {
        enum Next {
            Close,
            Idle,
            Pipelined,
        }
        let read_timeout = self.read_timeout();
        let (next, deadline) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.keep_after_write {
                (Next::Close, None)
            } else {
                conn.write_buf.clear();
                conn.write_pos = 0;
                let now = Instant::now();
                let dl = now + read_timeout;
                conn.deadline = Some(dl);
                if conn.parser.buffered() > 0 {
                    // The next request's bytes are already here — its
                    // clock starts now, same as the threaded backend
                    // seeing buffered bytes right after a response.
                    conn.state = ConnState::Reading;
                    conn.req_t0 = Some(now);
                    (Next::Pipelined, Some(dl))
                } else if conn.eof {
                    (Next::Close, None)
                } else {
                    conn.state = ConnState::Idle;
                    conn.req_t0 = None;
                    (Next::Idle, Some(dl))
                }
            }
        };
        if let Some(dl) = deadline {
            self.timers.push(Reverse((dl, token)));
        }
        match next {
            Next::Close => self.close_conn(token),
            Next::Idle => {
                if self.drained {
                    // Keep-alive between requests during drain: close,
                    // same as the threaded idle-wait drain check.
                    self.close_conn(token);
                } else {
                    self.set_interest(token, Interest::READ);
                }
            }
            Next::Pipelined => {
                self.set_interest(token, Interest::READ);
                self.pump(token);
            }
        }
    }

    /// Fires every expired deadline with the threaded backend's exact
    /// expiry semantics.
    fn fire_timers(&mut self) {
        let now = Instant::now();
        loop {
            match self.timers.peek() {
                Some(&Reverse((when, _))) if when <= now => {}
                _ => break,
            }
            let Reverse((when, token)) = self.timers.pop().expect("peeked entry");
            let state = {
                let Some(conn) = self.conns.get(&token) else {
                    continue;
                };
                if conn.deadline != Some(when) {
                    continue; // stale entry; the real deadline moved
                }
                conn.state
            };
            match state {
                ConnState::Idle => {
                    self.state.obs.add("server.idle_reaped", 1);
                    self.close_conn(token);
                }
                ConnState::Reading => {
                    self.state.obs.add("server.read_timeouts", 1);
                    self.respond(token, read_timeout_response(), false);
                }
                ConnState::Writing => {
                    self.state.obs.add("server.write_timeouts", 1);
                    self.close_conn(token);
                }
                ConnState::Dispatched => {}
            }
        }
    }
}
