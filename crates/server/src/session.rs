//! The session profile store: per-user personalization state.
//!
//! The paper treats the profile as an input handed to the personalization
//! step; a serving deployment needs somewhere for those profiles to *live*
//! between requests. [`SessionStore`] is that place: a sharded, versioned,
//! in-memory map from user id to [`Profile`], seeded from `cqp-datagen`
//! generators and updated through the wire-format upserts the
//! `POST /profiles/{user}` endpoint accepts.
//!
//! Versions are per-user monotone counters bumped on every upsert, so a
//! response can state which profile version produced it — the closest
//! zero-dependency analog of an MVCC read timestamp.

use crate::wal::{PutRecord, RecoveryReport, Wal};
use cqp_prefs::{from_text, to_text, Profile, ProfileParseError};
use cqp_storage::Catalog;
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A profile plus its monotone version.
#[derive(Debug, Clone)]
pub struct StoredProfile {
    /// The user's personalization graph.
    pub profile: Profile,
    /// Bumped on every upsert; starts at 1 for seeded/first-write entries.
    pub version: u64,
}

/// How an upsert combines with an existing profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertMode {
    /// The posted profile replaces the stored one.
    Replace,
    /// The posted preferences are appended to the stored graph — the
    /// incremental "my tastes grew" path.
    Merge,
}

/// The durability half of a [`SessionStore`]: the WAL every upsert is
/// logged to before it is applied, plus the catalog needed to render
/// profiles into the wire format the log stores.
#[derive(Debug)]
struct Durable {
    wal: Arc<Wal>,
    catalog: Catalog,
}

/// Observer invoked after every version-bumping profile write with the
/// user id and the new version — the answer cache's invalidation hook.
pub type WriteListener = Arc<dyn Fn(&str, u64) + Send + Sync>;

/// Holds the optional write listener; a manual `Debug` because closures
/// have none.
#[derive(Default)]
struct ListenerCell(Mutex<Option<WriteListener>>);

impl std::fmt::Debug for ListenerCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ListenerCell")
    }
}

/// Sharded, versioned in-memory profile store, optionally backed by a
/// write-ahead log (see [`SessionStore::recover`]).
#[derive(Debug)]
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<String, StoredProfile>>>,
    durable: Option<Durable>,
    write_listener: ListenerCell,
    upserts: AtomicU64,
    lookups: AtomicU64,
    misses: AtomicU64,
}

/// FNV-1a over the user id (the shared workspace hash) — stable across
/// runs, so shard placement is deterministic.
fn hash_user(user: &str) -> u64 {
    cqp_core::answer_cache::fnv1a(cqp_core::answer_cache::FNV_OFFSET, user.as_bytes())
}

impl SessionStore {
    /// An empty store with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        SessionStore {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            durable: None,
            write_listener: ListenerCell::default(),
            upserts: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) the WAL in `dir`, replays it, and returns the
    /// reconstructed store — durably backed from here on — plus what
    /// recovery found. Replay is idempotent (records carry post-upsert
    /// state) and version-exact (records carry the version counter), so
    /// the recovered store is identical to the pre-crash one up to the
    /// last intact record.
    pub fn recover(
        shards: usize,
        dir: &Path,
        catalog: &Catalog,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let opened = Wal::open(dir)?;
        let mut store = SessionStore::new(shards);
        let mut report = opened.report;
        for rec in &opened.records {
            match from_text(&rec.profile_text, catalog) {
                Ok(profile) => store.restore(&rec.user, profile, rec.version),
                // A checksummed record whose profile no longer parses can
                // only mean the catalog changed shape under the store;
                // dropping the record is the availability-preserving move.
                Err(_) => report.parse_skipped += 1,
            }
        }
        store.durable = Some(Durable {
            wal: Arc::new(opened.wal),
            catalog: catalog.clone(),
        });
        Ok((store, report))
    }

    /// The WAL backing this store, when durable.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.durable.as_ref().map(|d| &d.wal)
    }

    /// Installs the post-write observer. Fired by [`SessionStore::put`]
    /// (and everything routed through it) *after* the shard lock is
    /// released; deliberately **not** fired by WAL replay
    /// ([`SessionStore::restore`]) — recovery rebuilds into a fresh
    /// process whose caches are empty, so replay invalidations would only
    /// add noise to the counters.
    pub fn set_write_listener(&self, listener: WriteListener) {
        *self
            .write_listener
            .0
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(listener);
    }

    /// Applies a replayed record: no version bump, no WAL append. Skips
    /// records older than what the store already holds — a crash between
    /// a compaction's snapshot rename and its log truncation leaves a
    /// *stale* log after a *fresh* snapshot, and blind insertion would
    /// regress versions during replay.
    fn restore(&self, user: &str, profile: Profile, version: u64) {
        let mut shard = self.shard(user).lock().unwrap_or_else(|p| p.into_inner());
        match shard.get(user) {
            Some(existing) if existing.version > version => {}
            _ => {
                shard.insert(user.to_string(), StoredProfile { profile, version });
            }
        }
    }

    fn shard(&self, user: &str) -> &Mutex<HashMap<String, StoredProfile>> {
        &self.shards[(hash_user(user) % self.shards.len() as u64) as usize]
    }

    /// Seeds `count` users (`user0001`, `user0002`, …) with deterministic
    /// `cqp-datagen` movie profiles derived from `base_seed`.
    pub fn seed_from_datagen(&self, catalog: &Catalog, count: usize, base_seed: u64) {
        for i in 0..count {
            let cfg = cqp_datagen::ProfileGenConfig::tiny(base_seed.wrapping_add(i as u64));
            let profile = cqp_datagen::generate_movie_profile(catalog, &cfg);
            self.put(&format!("user{:04}", i + 1), profile);
        }
    }

    /// Inserts or replaces `user`'s profile directly (version-bumping).
    /// On a durable store the upsert is logged write-ahead under the
    /// shard lock; if the append fails (disk full, injected torn write)
    /// the in-memory apply still proceeds — availability over durability,
    /// with the failure visible in [`Wal::counters`].
    pub fn put(&self, user: &str, profile: Profile) -> u64 {
        self.upserts.fetch_add(1, Ordering::Relaxed);
        let version = {
            let mut shard = self.shard(user).lock().unwrap_or_else(|p| p.into_inner());
            let version = shard.get(user).map_or(1, |e| e.version + 1);
            if let Some(d) = &self.durable {
                // Write-ahead, while the shard lock serializes same-user
                // appends so log order matches version order.
                let _ = d
                    .wal
                    .append_put(user, version, &to_text(&profile, &d.catalog));
            }
            shard.insert(user.to_string(), StoredProfile { profile, version });
            version
        };
        // Outside the shard lock: the listener may take its own locks
        // (the answer cache's shards), and a reader that beats the
        // invalidation is still safe — version keying rejects stale
        // entries on lookup.
        let listener = self
            .write_listener
            .0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(listener) = listener {
            listener(user, version);
        }
        version
    }

    /// Applies one record received over the replication stream: persists
    /// the raw `frame` bytes to this store's own WAL verbatim (so a
    /// promoted follower can itself recover and re-ship), installs the
    /// profile at *exactly* the replicated version — no bump, unlike
    /// [`SessionStore::put`] — and fires the write listener so a warm
    /// answer cache drops entries for the superseded version. Unlike
    /// startup replay ([`SessionStore::restore`]) the process is already
    /// serving divergent-routed reads, so the invalidation is load-bearing.
    pub fn apply_replicated(
        &self,
        frame: &[u8],
        rec: &PutRecord,
        catalog: &Catalog,
    ) -> Result<(), ProfileParseError> {
        let profile = from_text(&rec.profile_text, catalog)?;
        {
            let mut shard = self
                .shard(&rec.user)
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            if let Some(d) = &self.durable {
                // Same availability-over-durability stance as put(): a
                // failed local append keeps the in-memory apply.
                let _ = d.wal.append_raw_frame(frame);
            }
            shard.insert(
                rec.user.clone(),
                StoredProfile {
                    profile,
                    version: rec.version,
                },
            );
        }
        let listener = self
            .write_listener
            .0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(listener) = listener {
            listener(&rec.user, rec.version);
        }
        Ok(())
    }

    /// Every `(user, (version, wire text))` pair, sorted by user — the
    /// canonical representation differential tests compare.
    pub fn dump(&self, catalog: &Catalog) -> BTreeMap<String, (u64, String)> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            for (user, stored) in shard.iter() {
                out.insert(
                    user.clone(),
                    (stored.version, to_text(&stored.profile, catalog)),
                );
            }
        }
        out
    }

    /// Compacts the WAL: snapshots the current contents and truncates the
    /// log. No-op on a non-durable store.
    pub fn compact(&self) -> std::io::Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let dump = self.dump(&d.catalog);
        d.wal.compact(
            dump.iter()
                .map(|(user, (version, text))| (user.as_str(), *version, text.as_str())),
        )
    }

    /// Applies a `# cqp-profile v1` wire-format upsert for `user`.
    /// Returns the new `(version, total preferences)` on success.
    pub fn upsert_text(
        &self,
        user: &str,
        text: &str,
        catalog: &Catalog,
        mode: UpsertMode,
    ) -> Result<(u64, usize), ProfileParseError> {
        let incoming = from_text(text, catalog)?;
        let merged = match mode {
            UpsertMode::Replace => incoming,
            UpsertMode::Merge => match self.get(user) {
                None => incoming,
                Some(existing) => {
                    let mut base = existing.profile;
                    for s in incoming.graph().selections() {
                        base.graph_mut().add_selection(s.clone());
                    }
                    for j in incoming.graph().joins() {
                        base.graph_mut().add_join(j.clone());
                    }
                    base
                }
            },
        };
        let prefs = merged.num_preferences();
        let version = self.put(user, merged);
        Ok((version, prefs))
    }

    /// The stored profile (cloned) and version for `user`.
    pub fn get(&self, user: &str) -> Option<StoredProfile> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(user).lock().unwrap_or_else(|p| p.into_inner());
        let found = shard.get(user).cloned();
        if found.is_none() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// The profile for `user` restricted to its `top_k` highest-doi
    /// selection preferences (the paper's progressive personalization
    /// depth); `None` depth returns the full profile.
    pub fn select(&self, user: &str, top_k: Option<usize>) -> Option<StoredProfile> {
        let stored = self.get(user)?;
        Some(match top_k {
            None => stored,
            Some(k) => StoredProfile {
                profile: stored.profile.with_top_k_selections(k),
                version: stored.version,
            },
        })
    }

    /// Renders `user`'s stored profile in the wire format.
    pub fn render_text(&self, user: &str, catalog: &Catalog) -> Option<String> {
        self.get(user).map(|s| to_text(&s.profile, catalog))
    }

    /// Users stored, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// True when no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(upserts, lookups, misses)` counter snapshot.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.upserts.load(Ordering::Relaxed),
            self.lookups.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    const WIRE: &str = "# cqp-profile v1\nprofile al\nselect 0.7 GENRE.genre eq \"comedy\"\njoin 0.9 MOVIE.mid GENRE.mid\n";

    #[test]
    fn upserts_bump_versions_per_user() {
        let c = catalog();
        let store = SessionStore::new(4);
        let (v1, n1) = store
            .upsert_text("al", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        assert_eq!((v1, n1), (1, 2));
        let (v2, _) = store
            .upsert_text("al", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        assert_eq!(v2, 2);
        // Another user's version counter is independent.
        let (v1b, _) = store
            .upsert_text("bo", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        assert_eq!(v1b, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("al").unwrap().version, 2);
        assert!(store.get("nobody").is_none());
        let (ups, looks, misses) = store.counters();
        assert_eq!(ups, 3);
        assert!(looks >= 2 && misses >= 1);
    }

    #[test]
    fn merge_mode_appends_preferences() {
        let c = catalog();
        let store = SessionStore::new(2);
        store
            .upsert_text("al", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        let more = "# cqp-profile v1\nprofile al\nselect 0.4 MOVIE.year ge 1990\n";
        let (v, prefs) = store
            .upsert_text("al", more, &c, UpsertMode::Merge)
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(prefs, 3);
        // Merge into an absent user behaves like a plain insert.
        let (v, prefs) = store
            .upsert_text("cy", more, &c, UpsertMode::Merge)
            .unwrap();
        assert_eq!((v, prefs), (1, 1));
    }

    #[test]
    fn malformed_wire_text_is_a_typed_error_and_no_write() {
        let c = catalog();
        let store = SessionStore::new(2);
        assert!(store
            .upsert_text("al", "select nonsense", &c, UpsertMode::Replace)
            .is_err());
        assert!(store.get("al").is_none());
    }

    #[test]
    fn select_applies_top_k_depth() {
        let c = catalog();
        let store = SessionStore::new(2);
        let wire = "# cqp-profile v1\nprofile al\nselect 0.3 GENRE.genre eq \"noir\"\nselect 0.9 GENRE.genre eq \"comedy\"\njoin 1.0 MOVIE.mid GENRE.mid\n";
        store
            .upsert_text("al", wire, &c, UpsertMode::Replace)
            .unwrap();
        let full = store.select("al", None).unwrap();
        assert_eq!(full.profile.graph().selections().len(), 2);
        let top1 = store.select("al", Some(1)).unwrap();
        assert_eq!(top1.profile.graph().selections().len(), 1);
        assert_eq!(top1.profile.graph().joins().len(), 1);
        assert_eq!(top1.version, full.version);
        // The surviving selection is the highest-doi one.
        assert_eq!(top1.profile.graph().selections()[0].doi.value(), 0.9);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cqp-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_store_recovers_contents_and_versions() {
        let c = catalog();
        let dir = tmpdir("recover");
        {
            let (store, report) = SessionStore::recover(4, &dir, &c).unwrap();
            assert_eq!(report.records_replayed(), 0);
            store
                .upsert_text("al", WIRE, &c, UpsertMode::Replace)
                .unwrap();
            store
                .upsert_text("al", WIRE, &c, UpsertMode::Replace)
                .unwrap();
            store
                .upsert_text("bo", WIRE, &c, UpsertMode::Replace)
                .unwrap();
        }
        let (recovered, report) = SessionStore::recover(4, &dir, &c).unwrap();
        assert_eq!(report.records_replayed(), 3);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered.get("al").unwrap().version, 2);
        assert_eq!(recovered.get("bo").unwrap().version, 1);
        // The recovered store keeps logging: the next upsert bumps to 3
        // and survives another restart.
        recovered
            .upsert_text("al", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        let (again, _) = SessionStore::recover(4, &dir, &c).unwrap();
        assert_eq!(again.get("al").unwrap().version, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dump_is_identical_across_recovery() {
        let c = catalog();
        let dir = tmpdir("dump");
        let (store, _) = SessionStore::recover(2, &dir, &c).unwrap();
        store
            .upsert_text("al", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        let more = "# cqp-profile v1\nprofile al\nselect 0.4 MOVIE.year ge 1990\n";
        store
            .upsert_text("al", more, &c, UpsertMode::Merge)
            .unwrap();
        store
            .upsert_text("cy", more, &c, UpsertMode::Replace)
            .unwrap();
        let before = store.dump(&c);
        drop(store);
        let (recovered, _) = SessionStore::recover(8, &dir, &c).unwrap();
        assert_eq!(recovered.dump(&c), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_dump_and_resets_log() {
        let c = catalog();
        let dir = tmpdir("compact");
        let (store, _) = SessionStore::recover(2, &dir, &c).unwrap();
        for i in 0..6 {
            store
                .upsert_text(&format!("u{i}"), WIRE, &c, UpsertMode::Replace)
                .unwrap();
            store
                .upsert_text(&format!("u{i}"), WIRE, &c, UpsertMode::Replace)
                .unwrap();
        }
        let before = store.dump(&c);
        store.compact().unwrap();
        drop(store);
        let (recovered, report) = SessionStore::recover(2, &dir, &c).unwrap();
        // All state now comes from the snapshot; the log is empty.
        assert_eq!(report.snapshot_records, 6);
        assert_eq!(report.log_records, 0);
        assert_eq!(recovered.dump(&c), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_durable_store_compact_is_a_noop() {
        let store = SessionStore::new(2);
        assert!(store.wal().is_none());
        store.compact().unwrap();
    }

    #[test]
    fn write_listener_fires_on_puts_but_not_on_replay() {
        let c = catalog();
        let dir = tmpdir("listener");
        {
            let (store, _) = SessionStore::recover(2, &dir, &c).unwrap();
            store
                .upsert_text("al", WIRE, &c, UpsertMode::Replace)
                .unwrap();
            store
                .upsert_text("al", WIRE, &c, UpsertMode::Replace)
                .unwrap();
        }
        let (recovered, report) = SessionStore::recover(2, &dir, &c).unwrap();
        let events: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        recovered.set_write_listener(Arc::new(move |user, version| {
            sink.lock().unwrap().push((user.to_string(), version));
        }));
        // Replay happened before the listener existed, and replay itself
        // never routes through put(): nothing observed yet.
        assert_eq!(report.records_replayed(), 2);
        assert!(events.lock().unwrap().is_empty());
        // A real write fires the listener with the bumped version.
        recovered
            .upsert_text("al", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        recovered
            .upsert_text("bo", WIRE, &c, UpsertMode::Replace)
            .unwrap();
        assert_eq!(
            events.lock().unwrap().clone(),
            vec![("al".to_string(), 3), ("bo".to_string(), 1)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeding_populates_deterministic_users() {
        // The datagen generator needs the full movie schema (CASTS/ACTOR).
        let db = cqp_datagen::generate_movie_db(&cqp_datagen::MovieDbConfig::tiny(1));
        let c = db.catalog().clone();
        let a = SessionStore::new(4);
        a.seed_from_datagen(&c, 5, 42);
        assert_eq!(a.len(), 5);
        let b = SessionStore::new(4);
        b.seed_from_datagen(&c, 5, 42);
        let (pa, pb) = (a.get("user0003").unwrap(), b.get("user0003").unwrap());
        assert_eq!(to_text(&pa.profile, &c), to_text(&pb.profile, &c));
        assert_eq!(pa.version, 1);
    }
}
