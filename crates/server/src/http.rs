//! A minimal HTTP/1.1 codec over blocking streams.
//!
//! Only what the serving layer needs: request-line + headers +
//! `Content-Length` bodies (no chunked encoding, no TLS, no HTTP/2), with
//! hard limits on header and body size so a misbehaving client cannot make
//! the server allocate unboundedly. Every malformed input maps to a typed
//! [`HttpError`] the router turns into a 4xx — parsing never panics.

use std::io::{self, BufRead, Write};

/// Longest accepted request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parse-level failure; each maps to one 4xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived (a
    /// clean close between keep-alive requests surfaces as this with
    /// zero bytes consumed).
    ConnectionClosed,
    /// Malformed request line (wanted `METHOD PATH HTTP/1.x`).
    BadRequestLine(String),
    /// A header line without a `:` separator.
    BadHeader(String),
    /// `Content-Length` missing on a method that requires a body, or not
    /// a number.
    BadContentLength,
    /// Head grew past [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Declared body length exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// Underlying socket error.
    Io(io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::BadRequestLine(l) => write!(f, "malformed request line: {l:?}"),
            HttpError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            HttpError::BadContentLength => write!(f, "missing or invalid content-length"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
            HttpError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.kind())
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/personalize` (query strings are kept).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited; empty when absent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path split into `/`-separated segments, query string dropped.
    pub fn segments(&self) -> Vec<&str> {
        let path = self.path.split('?').next().unwrap_or("");
        path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Value of `key` in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let qs = self.path.split_once('?')?.1;
        qs.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Strips trailing `\n`/`\r` bytes and decodes lossily — the one line
/// normalization both parsers share.
fn finish_line(line: &[u8]) -> String {
    let mut end = line.len();
    while end > 0 && (line[end - 1] == b'\n' || line[end - 1] == b'\r') {
        end -= 1;
    }
    // Lossy is fine: header values the router cares about are ASCII, and
    // a garbled line fails its downstream parse with a typed error.
    String::from_utf8_lossy(&line[..end]).into_owned()
}

/// Parses the request line into `(method, path, keep_alive_default)`.
/// HTTP/1.1 defaults to keep-alive, 1.0 to close.
fn parse_request_line(request_line: String) -> Result<(String, String, bool), HttpError> {
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if v.starts_with("HTTP/1.") && p.starts_with('/') => {
            Ok((m.to_ascii_uppercase(), p.to_string(), v != "HTTP/1.0"))
        }
        _ => Err(HttpError::BadRequestLine(request_line)),
    }
}

/// Parses one header line into `(lowercase name, trimmed value)`,
/// flipping `keep_alive` on `connection: close`.
fn parse_header_line(line: String, keep_alive: &mut bool) -> Result<(String, String), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| HttpError::BadHeader(line.clone()))?;
    let name = name.trim().to_ascii_lowercase();
    let value = value.trim().to_string();
    if name == "connection" {
        *keep_alive = !value.eq_ignore_ascii_case("close");
    }
    Ok((name, value))
}

/// Decides how many body bytes the head declares. `POST`/`PUT` without a
/// `Content-Length` is a typed error; declared bodies above
/// [`MAX_BODY_BYTES`] are rejected before any allocation.
fn declared_body_len(method: &str, headers: &[(String, String)]) -> Result<usize, HttpError> {
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| HttpError::BadContentLength))
        .transpose()?;
    match content_length {
        None if method == "POST" || method == "PUT" => Err(HttpError::BadContentLength),
        None | Some(0) => Ok(0),
        Some(n) if n > MAX_BODY_BYTES => Err(HttpError::BodyTooLarge(n)),
        Some(n) => Ok(n),
    }
}

/// Reads one line terminated by `\n`, stripping `\r\n`/`\n`. Returns
/// `None` on a clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::ConnectionClosed);
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map_or(buf.len(), |i| i + 1);
        if take > *budget {
            return Err(HttpError::HeadTooLarge);
        }
        *budget -= take;
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if nl.is_some() {
            break;
        }
    }
    Ok(Some(finish_line(&line)))
}

/// Parses one request from `reader`. Blocks until a full head (and body,
/// when declared) arrives or the connection closes.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Err(HttpError::ConnectionClosed),
        Some(l) => l,
    };
    let (method, path, mut keep_alive) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(HttpError::ConnectionClosed),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(line, &mut keep_alive)?);
    }

    let body = match declared_body_len(&method, &headers)? {
        0 => Vec::new(),
        n => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
    };
    Ok(Request {
        method,
        path,
        headers,
        body,
        keep_alive,
    })
}

/// How far an incremental parse has progressed through one request.
#[derive(Debug)]
enum ParsePhase {
    /// Waiting for the request line to complete.
    RequestLine,
    /// Request line parsed; consuming header lines.
    Headers {
        method: String,
        path: String,
        keep_alive: bool,
        headers: Vec<(String, String)>,
    },
    /// Head complete; waiting for `body_len` body bytes.
    Body {
        method: String,
        path: String,
        keep_alive: bool,
        headers: Vec<(String, String)>,
        body_len: usize,
    },
}

/// An incremental (resumable) request parser for readiness-driven I/O.
///
/// The epoll backend reads whatever fragment the socket has and calls
/// [`RequestParser::feed`] + [`RequestParser::try_next`]; the parser
/// consumes bytes as lines complete and yields a [`Request`] exactly when
/// the blocking [`parse_request`] would have, with byte-for-byte identical
/// results and identical typed errors **regardless of how the input is
/// fragmented** (the `http_fuzz` suite replays every corpus at every split
/// point to prove it). Pipelined requests are supported: leftover bytes
/// stay buffered for the next `try_next`.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed offset into `buf` (everything before it belongs to
    /// already-yielded requests).
    start: usize,
    /// Start of the line currently being scanned (absolute).
    line_start: usize,
    /// Resume point for the newline scan (absolute, `>= line_start`).
    scan: usize,
    /// Head bytes consumed by completed lines of the current request.
    head_bytes: usize,
    phase: ParsePhase,
    /// A parse error is terminal for the connection; it is sticky so a
    /// caller that polls again gets the same answer.
    failed: Option<HttpError>,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// An empty parser at the start of a connection.
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            start: 0,
            line_start: 0,
            scan: 0,
            head_bytes: 0,
            phase: ParsePhase::RequestLine,
            failed: None,
        }
    }

    /// Appends newly-read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered (a nonzero value between
    /// requests means a pipelined request is already arriving).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True once any byte of the *current* request has arrived.
    pub fn mid_request(&self) -> bool {
        self.buffered() > 0 || !matches!(self.phase, ParsePhase::RequestLine)
    }

    /// The error the blocking parser would report if the peer closed the
    /// connection right now: `Io(UnexpectedEof)` mid-body, otherwise
    /// `ConnectionClosed` (which is also the clean between-requests EOF).
    pub fn eof_error(&self) -> HttpError {
        match self.phase {
            ParsePhase::Body { .. } => HttpError::Io(io::ErrorKind::UnexpectedEof),
            _ => HttpError::ConnectionClosed,
        }
    }

    /// Advances the parse as far as the buffered bytes allow. Returns
    /// `Ok(Some(request))` when one request completed, `Ok(None)` when
    /// more bytes are needed, or the same typed error [`parse_request`]
    /// would produce. Errors are sticky and terminal.
    pub fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        match self.advance() {
            Err(e) => {
                self.failed = Some(e.clone());
                Err(e)
            }
            Ok(out) => Ok(out),
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            if let ParsePhase::Body { body_len, .. } = &self.phase {
                let body_len = *body_len;
                if self.buffered() < body_len {
                    return Ok(None);
                }
                let body = self.buf[self.start..self.start + body_len].to_vec();
                let phase = std::mem::replace(&mut self.phase, ParsePhase::RequestLine);
                let ParsePhase::Body {
                    method,
                    path,
                    keep_alive,
                    headers,
                    ..
                } = phase
                else {
                    unreachable!("phase checked above");
                };
                self.start += body_len;
                self.finish_request();
                return Ok(Some(Request {
                    method,
                    path,
                    headers,
                    body,
                    keep_alive,
                }));
            }

            // Head phase: hunt for the next newline from the resume point.
            let Some(rel) = self.buf[self.scan..].iter().position(|&b| b == b'\n') else {
                self.scan = self.buf.len();
                // The blocking parser consumes partial-line bytes as they
                // arrive and trips the head budget as soon as cumulative
                // consumption would exceed it — even mid-line.
                if self.head_bytes + (self.scan - self.line_start) > MAX_HEAD_BYTES {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(None);
            };
            let nl = self.scan + rel;
            let take = nl + 1 - self.line_start;
            if self.head_bytes + take > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            self.head_bytes += take;
            let line = finish_line(&self.buf[self.line_start..=nl]);
            self.line_start = nl + 1;
            self.scan = self.line_start;
            self.start = self.line_start;

            match std::mem::replace(&mut self.phase, ParsePhase::RequestLine) {
                ParsePhase::RequestLine => {
                    let (method, path, keep_alive) = parse_request_line(line)?;
                    self.phase = ParsePhase::Headers {
                        method,
                        path,
                        keep_alive,
                        headers: Vec::new(),
                    };
                }
                ParsePhase::Headers {
                    method,
                    path,
                    mut keep_alive,
                    mut headers,
                } => {
                    if line.is_empty() {
                        // Head complete: the body plan (and its typed
                        // errors) is decided here, same as the blocking
                        // parser deciding it right after the header loop.
                        let body_len = declared_body_len(&method, &headers)?;
                        self.phase = ParsePhase::Body {
                            method,
                            path,
                            keep_alive,
                            headers,
                            body_len,
                        };
                    } else {
                        headers.push(parse_header_line(line, &mut keep_alive)?);
                        self.phase = ParsePhase::Headers {
                            method,
                            path,
                            keep_alive,
                            headers,
                        };
                    }
                }
                ParsePhase::Body { .. } => unreachable!("body handled before line scan"),
            }
        }
    }

    /// Resets per-request state and compacts the buffer once the consumed
    /// prefix grows past the head cap (keeps long-lived keep-alive
    /// connections from accreting memory).
    fn finish_request(&mut self) {
        self.head_bytes = 0;
        self.line_start = self.start;
        self.scan = self.start;
        if self.start == self.buf.len() {
            self.buf.clear();
        } else if self.start > MAX_HEAD_BYTES {
            self.buf.drain(..self.start);
        } else {
            return;
        }
        self.line_start -= self.start;
        self.scan -= self.start;
        self.start = 0;
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Content-Type`.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &cqp_obs::Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.render().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain",
        }
    }

    /// A text response with an explicit `Content-Type` — the Prometheus
    /// exposition endpoint needs `text/plain; version=0.0.4; charset=utf-8`.
    pub fn text_with_type(
        status: u16,
        body: impl Into<String>,
        content_type: &'static str,
    ) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type,
        }
    }

    /// Adds a header (builder-style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    /// Serializes the response onto `writer` (one flat write + flush).
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        writer.write_all(&out)?;
        writer.flush()
    }
}

/// A client-side view of one response (used by the load generator and the
/// socket tests; not a general client).
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response off `reader`.
pub fn parse_response<R: BufRead>(reader: &mut R) -> Result<ClientResponse, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let status_line = match read_line(reader, &mut budget)? {
        None => return Err(HttpError::ConnectionClosed),
        Some(l) => l,
    };
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::BadRequestLine(status_line.clone()))?;
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(HttpError::ConnectionClosed),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let n = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; n];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, HttpError> {
        parse_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_with_headers_and_query() {
        let req = parse(
            "GET /profiles/al?merge=true HTTP/1.1\r\nHost: x\r\nX-Cqp-Deadline-Ms: 25\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.segments(), vec!["profiles", "al"]);
        assert_eq!(req.query_param("merge"), Some("true"));
        assert_eq!(req.query_param("nope"), None);
        assert_eq!(req.header("x-cqp-deadline-ms"), Some("25"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse("POST /personalize HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}ab").unwrap();
        assert_eq!(req.body, b"{}ab");
    }

    #[test]
    fn post_without_content_length_is_typed_error() {
        assert_eq!(
            parse("POST /x HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert!(matches!(
            parse("BLARG\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse("GET x HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
    }

    #[test]
    fn oversized_declared_body_is_rejected_without_allocating() {
        let head = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&head), Err(HttpError::BodyTooLarge(_))));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn response_round_trips_through_client_parser() {
        let body = cqp_obs::Json::obj(vec![("ok", cqp_obs::Json::Bool(true))]);
        let resp = Response::json(429, &body).with_header("retry-after", "1");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let parsed = parse_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(parsed.body_text(), r#"{"ok":true}"#);
    }
}
