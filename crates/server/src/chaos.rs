//! Deterministic connection-level chaos client.
//!
//! Production clients misbehave in a small number of canonical ways, and
//! each one is a distinct server-side code path: a truncated head is an
//! EOF mid-parse, a mid-body disconnect is an EOF mid-read, a slowloris
//! is a byte-drip that never finishes, and garbage bytes are a parse
//! failure. [`run_chaos`] drives all four against a live server in a
//! seeded, reproducible sequence, and classifies how each connection
//! ended — a well-formed error response, or a clean reap (the server
//! closed without answering because no answerable request ever arrived).
//!
//! The harness is *pure client*: it needs only an address, so it works
//! against the in-process test server and an external `serverd` alike.
//! Determinism comes from the seed — attack payloads and lengths are
//! `splitmix64` functions of `(seed, mode, iteration)` — so a failing
//! case replays exactly.

use crate::http::parse_response;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One way a client can misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Sends a prefix of a valid request head, then closes.
    TruncatedHead,
    /// Sends a full head with a `Content-Length`, a prefix of the body,
    /// then closes.
    MidBodyDisconnect,
    /// Drips head bytes slower than the server's read deadline.
    Slowloris,
    /// Sends seeded random bytes that are not HTTP at all.
    GarbageBytes,
}

impl ChaosMode {
    /// All modes, in the order the harness runs them.
    pub const ALL: [ChaosMode; 4] = [
        ChaosMode::TruncatedHead,
        ChaosMode::MidBodyDisconnect,
        ChaosMode::Slowloris,
        ChaosMode::GarbageBytes,
    ];

    /// Stable lowercase tag for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChaosMode::TruncatedHead => "truncated_head",
            ChaosMode::MidBodyDisconnect => "mid_body_disconnect",
            ChaosMode::Slowloris => "slowloris",
            ChaosMode::GarbageBytes => "garbage_bytes",
        }
    }
}

/// How one attacked connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The server answered with a well-formed HTTP response of this
    /// status before closing.
    Answered {
        /// The response status code.
        status: u16,
    },
    /// The server closed the connection without a response — the correct
    /// end for a connection that never produced an answerable request.
    Reaped,
    /// The connection was still open when the client's patience ran out.
    /// Always a failure: the server is leaking the connection.
    Leaked,
}

/// Harness parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Server address, e.g. `127.0.0.1:9142`.
    pub addr: String,
    /// Seed for payload generation.
    pub seed: u64,
    /// Attacks per mode.
    pub iterations: usize,
    /// How long the client waits for the server to answer or reap before
    /// declaring the connection leaked. Must comfortably exceed the
    /// server's per-connection read deadline.
    pub patience_ms: u64,
    /// Milliseconds between dripped slowloris bytes.
    pub drip_interval_ms: u64,
    /// Total bytes a slowloris connection drips before going silent.
    pub drip_bytes: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            addr: "127.0.0.1:0".into(),
            seed: 0xC4A05,
            iterations: 4,
            patience_ms: 5_000,
            drip_interval_ms: 20,
            drip_bytes: 24,
        }
    }
}

/// Per-mode outcomes of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// `(mode, outcomes)` in execution order.
    pub outcomes: Vec<(ChaosMode, Vec<ChaosOutcome>)>,
}

impl ChaosReport {
    /// All outcomes for `mode`.
    pub fn for_mode(&self, mode: ChaosMode) -> &[ChaosOutcome] {
        self.outcomes
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, o)| o.as_slice())
            .unwrap_or(&[])
    }

    /// Connections the server never answered nor reaped.
    pub fn leaked(&self) -> usize {
        self.outcomes
            .iter()
            .flat_map(|(_, o)| o)
            .filter(|o| matches!(o, ChaosOutcome::Leaked))
            .count()
    }

    /// Connections answered with a status in `[400, 500)`.
    pub fn answered_4xx(&self) -> usize {
        self.outcomes
            .iter()
            .flat_map(|(_, o)| o)
            .filter(
                |o| matches!(o, ChaosOutcome::Answered { status } if (400..500).contains(status)),
            )
            .count()
    }

    /// Connections the server reaped without answering.
    pub fn reaped(&self) -> usize {
        self.outcomes
            .iter()
            .flat_map(|(_, o)| o)
            .filter(|o| matches!(o, ChaosOutcome::Reaped))
            .count()
    }
}

use rand::splitmix64_mix as splitmix64;

fn mix(seed: u64, mode: usize, iteration: usize) -> u64 {
    splitmix64(seed ^ splitmix64(mode as u64 ^ splitmix64(iteration as u64)))
}

/// A valid personalize request head + body the attacks truncate.
fn template_request(addr: &str) -> (String, String) {
    let body = r#"{"user":"user0001","sql":"SELECT title FROM MOVIE","problem":{"kind":"p2","cost_limit":100}}"#;
    let head = format!(
        "POST /personalize HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    (head, body.to_string())
}

/// Runs every mode `iterations` times against `cfg.addr`.
pub fn run_chaos(cfg: &ChaosConfig) -> std::io::Result<ChaosReport> {
    let mut outcomes = Vec::new();
    for (mi, mode) in ChaosMode::ALL.iter().enumerate() {
        let mut per_mode = Vec::new();
        for i in 0..cfg.iterations {
            per_mode.push(attack(cfg, *mode, mix(cfg.seed, mi, i))?);
        }
        outcomes.push((*mode, per_mode));
    }
    Ok(ChaosReport { outcomes })
}

/// Runs one attack and classifies how the connection ended.
fn attack(cfg: &ChaosConfig, mode: ChaosMode, r: u64) -> std::io::Result<ChaosOutcome> {
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let (head, body) = template_request(&cfg.addr);
    match mode {
        ChaosMode::TruncatedHead => {
            // Cut strictly inside the head: at least 1 byte sent, and the
            // terminating blank line never arrives.
            let cut = 1 + (r as usize % (head.len() - 4));
            send_then_shutdown(&stream, &head.as_bytes()[..cut])?;
        }
        ChaosMode::MidBodyDisconnect => {
            let cut = r as usize % body.len();
            let mut payload = head.into_bytes();
            payload.extend_from_slice(&body.as_bytes()[..cut]);
            send_then_shutdown(&stream, &payload)?;
        }
        ChaosMode::Slowloris => {
            // Drip head bytes, never finishing, then go silent with the
            // connection open: only the server's read deadline can end it.
            let n = cfg.drip_bytes.min(head.len() - 4).max(1);
            let mut s = &stream;
            for b in head.as_bytes().iter().take(n) {
                if s.write_all(std::slice::from_ref(b)).is_err() {
                    break; // server already gave up on us — fine
                }
                std::thread::sleep(Duration::from_millis(cfg.drip_interval_ms));
            }
        }
        ChaosMode::GarbageBytes => {
            let len = 16 + (r as usize % 64);
            let garbage: Vec<u8> = (0..len)
                .map(|i| (splitmix64(r ^ i as u64) % 256) as u8)
                // Avoid an accidental newline terminating a "request line"
                // cleanly — raw garbage should fail the parser, and a
                // huge line without a newline exercises the head cap.
                .map(|b| if b == b'\n' || b == b'\r' { b'X' } else { b })
                .collect();
            let mut s = &stream;
            s.write_all(&garbage)?;
            s.write_all(b"\r\n")?; // terminate the line: parser sees garbage
        }
    }
    wait_for_end(stream, cfg.patience_ms)
}

fn send_then_shutdown(mut stream: &TcpStream, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(payload)?;
    stream.shutdown(std::net::Shutdown::Write)?;
    Ok(())
}

/// Reads until the server answers, closes, or `patience_ms` elapses.
fn wait_for_end(stream: TcpStream, patience_ms: u64) -> std::io::Result<ChaosOutcome> {
    stream.set_read_timeout(Some(Duration::from_millis(patience_ms.max(1))))?;
    let mut reader = BufReader::new(stream);
    match parse_response(&mut reader) {
        Ok(resp) => Ok(ChaosOutcome::Answered {
            status: resp.status,
        }),
        Err(crate::http::HttpError::ConnectionClosed) => Ok(ChaosOutcome::Reaped),
        Err(crate::http::HttpError::Io(kind))
            if kind == std::io::ErrorKind::WouldBlock || kind == std::io::ErrorKind::TimedOut =>
        {
            Ok(ChaosOutcome::Leaked)
        }
        // A half-written response still proves the server answered-ish;
        // classify by whether any bytes arrived. Treat parse failures of
        // a real byte stream as reaped-with-noise.
        Err(_) => Ok(ChaosOutcome::Reaped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_per_seed() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
        assert_ne!(mix(1, 0, 0), mix(1, 1, 0));
    }

    #[test]
    fn mode_tags_are_stable() {
        let tags: Vec<_> = ChaosMode::ALL.iter().map(|m| m.as_str()).collect();
        assert_eq!(
            tags,
            [
                "truncated_head",
                "mid_body_disconnect",
                "slowloris",
                "garbage_bytes"
            ]
        );
    }

    #[test]
    fn report_counters_classify_outcomes() {
        let report = ChaosReport {
            outcomes: vec![
                (
                    ChaosMode::GarbageBytes,
                    vec![ChaosOutcome::Answered { status: 400 }, ChaosOutcome::Reaped],
                ),
                (ChaosMode::Slowloris, vec![ChaosOutcome::Leaked]),
            ],
        };
        assert_eq!(report.answered_4xx(), 1);
        assert_eq!(report.reaped(), 1);
        assert_eq!(report.leaked(), 1);
        assert_eq!(report.for_mode(ChaosMode::Slowloris).len(), 1);
        assert_eq!(report.for_mode(ChaosMode::TruncatedHead).len(), 0);
    }
}
