//! A deterministic closed-loop load generator driving real sockets.
//!
//! Closed loop: each client thread keeps exactly one request in flight
//! over one keep-alive connection, so offered load adapts to observed
//! latency (the classic benchmarking discipline that avoids coordinated
//! omission *on the offered side* — we measure what a well-behaved client
//! sees, not queue blow-up of an open firehose).
//!
//! Determinism: the request *mix* is a pure function of `(seed, client,
//! request index)` through a splitmix64 generator — same config, same
//! sequence of users/queries/algorithms/deadlines, every run. Latencies
//! are wall-clock and vary; the mix does not.

use crate::http::{parse_response, ClientResponse, HttpError};
use crate::json;
use crate::server::ServerHandle;
use cqp_obs::{Histogram, Json};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Shape of the generated load.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Mix seed.
    pub seed: u64,
    /// User ids to draw from (must exist on the server).
    pub users: Vec<String>,
    /// Base SQL texts to draw from.
    pub queries: Vec<String>,
    /// Algorithm tokens to draw from (as accepted by the API).
    pub algorithms: Vec<String>,
    /// Problem objects to draw from, each rendered as a JSON fragment
    /// (e.g. `{"kind":"p2","cmax":500}`).
    pub problems: Vec<String>,
    /// Per-mille of requests sent with a 0-ms deadline — these must come
    /// back 200 but *degraded* (the resilience path under load).
    pub zero_deadline_permille: u32,
    /// Personalization depths to draw from; a negative entry means the
    /// full profile.
    pub top_k_choices: Vec<i64>,
    /// Send an explicit `x-cqp-trace-id` header on every Nth request per
    /// client (0 = never). The ID is a pure function of `(seed, client,
    /// index)`, and the client verifies the server echoes it back.
    pub trace_every: u64,
    /// Zipf skew of the user draw: `0.0` keeps the historical uniform
    /// pick bit-for-bit; `θ > 0` weights rank `i` (0-based position in
    /// `users`) by `1/(i+1)^θ`, concentrating load on the head — the
    /// regime where a cross-request answer cache earns its keep.
    pub zipf_theta: f64,
    /// Per-mille of requests that first merge a mutation into the drawn
    /// user's profile (`POST /profiles/{user}?merge=true`) before
    /// personalizing — the write-then-read race the staleness counter
    /// audits. Decided on its own generator stream per `(seed, client,
    /// index)`, so enabling mutations never perturbs the request mix.
    pub mutate_permille: u32,
    /// `# cqp-profile v1` wire texts the mutations draw from; mutations
    /// are disabled while this is empty.
    pub mutation_texts: Vec<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 25,
            seed: 42,
            users: Vec::new(),
            queries: Vec::new(),
            algorithms: vec!["c_maxbounds".to_string(), "d_maxdoi".to_string()],
            problems: vec!["{\"kind\":\"p2\",\"cmax\":2000}".to_string()],
            zero_deadline_permille: 100,
            top_k_choices: vec![-1, 2, 4],
            trace_every: 0,
            zipf_theta: 0.0,
            mutate_permille: 0,
            mutation_texts: Vec::new(),
        }
    }
}

/// What the generated load observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: u64,
    /// 200s.
    pub ok: u64,
    /// 200s whose solution was budget-degraded.
    pub degraded: u64,
    /// 429s (admission shed).
    pub rejected: u64,
    /// 503s (queue timeout / transient backend).
    pub unavailable: u64,
    /// Other 4xx.
    pub client_errors: u64,
    /// 5xx other than 503.
    pub server_errors: u64,
    /// Requests lost to socket-level failures.
    pub io_errors: u64,
    /// End-to-end latency quantiles over 200 responses, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Wall-clock of the whole run, seconds.
    pub wall_secs: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Requests sent with an explicit trace-ID header.
    pub traced: u64,
    /// Traced responses whose `x-cqp-trace-id` echo did not match.
    pub trace_mismatches: u64,
    /// Profile mutations merged before personalize requests.
    pub mutations: u64,
    /// 200s served at a profile version older than one this client had
    /// already observed for the user — must stay zero (read-your-writes).
    pub stale_answers: u64,
    /// 200s served from the answer cache's exact tier.
    pub cache_exact: u64,
    /// 200s served via the warm tier (space reuse + pruning seed).
    pub cache_warm: u64,
    /// 200s served via the repair tier (delta-repaired space).
    pub cache_repair: u64,
    /// 200s that missed the answer cache.
    pub cache_miss: u64,
    /// 200s served with the answer cache absent or bypassed.
    pub cache_off: u64,
}

impl LoadReport {
    /// The report as a JSON object (for `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        let rate = |n: u64| {
            if self.requests == 0 {
                0.0
            } else {
                n as f64 / self.requests as f64
            }
        };
        Json::obj(vec![
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("degraded", Json::from(self.degraded)),
            ("rejected", Json::from(self.rejected)),
            ("unavailable", Json::from(self.unavailable)),
            ("client_errors", Json::from(self.client_errors)),
            ("server_errors", Json::from(self.server_errors)),
            ("io_errors", Json::from(self.io_errors)),
            ("degraded_rate", Json::from(rate(self.degraded))),
            ("reject_rate", Json::from(rate(self.rejected))),
            ("p50_us", Json::from(self.p50_us)),
            ("p95_us", Json::from(self.p95_us)),
            ("p99_us", Json::from(self.p99_us)),
            ("wall_secs", Json::from(self.wall_secs)),
            ("requests_per_sec", Json::from(self.requests_per_sec)),
            ("traced", Json::from(self.traced)),
            ("trace_mismatches", Json::from(self.trace_mismatches)),
            ("mutations", Json::from(self.mutations)),
            ("stale_answers", Json::from(self.stale_answers)),
            ("cache_exact", Json::from(self.cache_exact)),
            ("cache_warm", Json::from(self.cache_warm)),
            ("cache_repair", Json::from(self.cache_repair)),
            ("cache_miss", Json::from(self.cache_miss)),
            ("cache_off", Json::from(self.cache_off)),
            ("cache_hit_rate", Json::from(self.cache_hit_rate())),
        ])
    }

    /// Fraction of 200s that avoided a cold solve via the exact or warm
    /// tier — the headline reuse number `BENCH_cache.json` gates on.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            (self.cache_exact + self.cache_warm) as f64 / self.ok as f64
        }
    }
}

/// splitmix64 — the mix stream is a pure function of the seed.
use rand::splitmix64;

fn pick<'a, T>(items: &'a [T], state: &mut u64) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[(splitmix64(state) % items.len() as u64) as usize])
    }
}

/// One HTTP client over one keep-alive connection, reconnecting when the
/// server closes it.
struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr,
            stream,
            reader,
        })
    }

    fn post(
        &mut self,
        path: &str,
        headers: &[(&str, String)],
        body: &str,
    ) -> Result<ClientResponse, HttpError> {
        let mut attempt = 0;
        loop {
            let r = self.post_once(path, headers, body);
            match r {
                // One reconnect per request: a keep-alive close between
                // requests is normal, a second failure is a real error.
                Err(HttpError::ConnectionClosed) | Err(HttpError::Io(_)) if attempt == 0 => {
                    attempt = 1;
                    match Client::connect(self.addr) {
                        Ok(fresh) => *self = fresh,
                        Err(e) => return Err(HttpError::from(e)),
                    }
                }
                other => return other,
            }
        }
    }

    fn post_once(
        &mut self,
        path: &str,
        headers: &[(&str, String)],
        body: &str,
    ) -> Result<ClientResponse, HttpError> {
        let mut head = format!(
            "POST {path} HTTP/1.1\r\nhost: cqp\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        parse_response(&mut self.reader)
    }
}

/// Draws a user index: uniform at `zipf_theta == 0` (bit-identical to the
/// historical mix) or Zipf-weighted (`1/(rank+1)^θ` over list position)
/// otherwise. Exactly one generator draw either way, so enabling skew
/// perturbs nothing downstream of the user pick.
fn pick_user<'a>(config: &'a LoadConfig, state: &mut u64) -> Option<&'a String> {
    if config.users.is_empty() {
        return None;
    }
    let r = splitmix64(state);
    if config.zipf_theta <= 0.0 {
        return Some(&config.users[(r % config.users.len() as u64) as usize]);
    }
    // Inverse-CDF over the (small) user list; the 53-bit mantissa draw
    // keeps the unit sample unbiased.
    let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
    let weight = |i: usize| 1.0 / ((i + 1) as f64).powf(config.zipf_theta);
    let total: f64 = (0..config.users.len()).map(weight).sum();
    let mut target = unit * total;
    for (i, user) in config.users.iter().enumerate() {
        target -= weight(i);
        if target <= 0.0 {
            return Some(user);
        }
    }
    config.users.last()
}

/// Renders the personalize body for `(client, index)` of the mix,
/// returning `(body, zero_deadline, user)`. Shared with the
/// connection-scale generator so both draw one mix.
pub(crate) fn render_request(
    config: &LoadConfig,
    client: usize,
    index: usize,
) -> Option<(String, bool, String)> {
    let mut state = config
        .seed
        .wrapping_mul(0x5851_f42d_4c95_7f2d)
        .wrapping_add((client as u64) << 32)
        .wrapping_add(index as u64);
    // Warm the stream so nearby (client, index) pairs decorrelate.
    splitmix64(&mut state);
    let user = pick_user(config, &mut state)?;
    let sql = pick(&config.queries, &mut state)?;
    let problem = pick(&config.problems, &mut state)?;
    let algorithm = pick(&config.algorithms, &mut state);
    let top_k = pick(&config.top_k_choices, &mut state).copied();
    let zero_deadline = splitmix64(&mut state) % 1000 < u64::from(config.zero_deadline_permille);
    let mut body = format!(
        "{{\"user\":{},\"sql\":{},\"problem\":{problem}",
        Json::from(user.as_str()).render(),
        Json::from(sql.as_str()).render(),
    );
    if let Some(a) = algorithm {
        body.push_str(&format!(
            ",\"algorithm\":{}",
            Json::from(a.as_str()).render()
        ));
    }
    if let Some(k) = top_k {
        if k >= 0 {
            body.push_str(&format!(",\"top_k\":{k}"));
        }
    }
    if zero_deadline {
        body.push_str(",\"deadline_ms\":0");
    }
    body.push('}');
    Some((body, zero_deadline, user.clone()))
}

/// Whether request `(client, index)` merges a profile mutation first, and
/// with which wire text. A distinct splitmix64 stream from both the body
/// mix and the trace IDs, so turning mutations on (or changing the rate)
/// never changes which users/queries/deadlines the mix draws.
fn mutation_for(config: &LoadConfig, client: usize, index: usize) -> Option<&String> {
    if config.mutate_permille == 0 || config.mutation_texts.is_empty() {
        return None;
    }
    let mut state = config
        .seed
        .wrapping_mul(0x8f0c_93a1_6f12_c52b)
        .wrapping_add((client as u64) << 32)
        .wrapping_add(index as u64);
    splitmix64(&mut state);
    if splitmix64(&mut state) % 1000 >= u64::from(config.mutate_permille) {
        return None;
    }
    pick(&config.mutation_texts, &mut state)
}

/// The deterministic trace ID for `(seed, client, index)` — a distinct
/// stream from the body mix so adding tracing never perturbs the mix.
fn trace_id_for(config: &LoadConfig, client: usize, index: usize) -> String {
    let mut state = config
        .seed
        .wrapping_mul(0xa076_1d64_78bd_642f)
        .wrapping_add((client as u64) << 32)
        .wrapping_add(index as u64);
    format!("{:016x}", splitmix64(&mut state))
}

/// Runs the configured load against a server and aggregates what the
/// clients saw. Returns an `io::Error` only when a client cannot connect
/// at all; per-request socket failures are counted in the report.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> std::io::Result<LoadReport> {
    run_load_targets(&[addr], config)
}

/// Multi-target [`run_load`]: client `i` drives `targets[i % len]`, so a
/// cluster's router processes (or replicas under test) split the closed
/// loop deterministically. The per-client request streams are identical
/// to single-target runs — only the socket each client dials differs.
pub fn run_load_targets(
    targets: &[SocketAddr],
    config: &LoadConfig,
) -> std::io::Result<LoadReport> {
    if config.users.is_empty() || config.queries.is_empty() || config.problems.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "load config needs at least one user, query, and problem",
        ));
    }
    if targets.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "load needs at least one target address",
        ));
    }
    let t0 = Instant::now();
    let per_client: Vec<(Vec<u64>, LoadReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|c| {
                let addr = targets[c % targets.len()];
                s.spawn(move || client_loop(addr, config, c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(r)) => r,
                // A client that died whole-sale: count its planned
                // requests as io errors.
                _ => (
                    Vec::new(),
                    LoadReport {
                        requests: config.requests_per_client as u64,
                        io_errors: config.requests_per_client as u64,
                        ..LoadReport::default()
                    },
                ),
            })
            .collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut report = LoadReport::default();
    let mut latencies = Histogram::default();
    let mut completed = 0u64;
    for (lats, partial) in per_client {
        report.requests += partial.requests;
        report.ok += partial.ok;
        report.degraded += partial.degraded;
        report.rejected += partial.rejected;
        report.unavailable += partial.unavailable;
        report.client_errors += partial.client_errors;
        report.server_errors += partial.server_errors;
        report.io_errors += partial.io_errors;
        report.traced += partial.traced;
        report.trace_mismatches += partial.trace_mismatches;
        report.mutations += partial.mutations;
        report.stale_answers += partial.stale_answers;
        report.cache_exact += partial.cache_exact;
        report.cache_warm += partial.cache_warm;
        report.cache_repair += partial.cache_repair;
        report.cache_miss += partial.cache_miss;
        report.cache_off += partial.cache_off;
        completed += partial.requests - partial.io_errors;
        for l in lats {
            latencies.observe(l);
        }
    }
    report.p50_us = latencies.quantile(0.50);
    report.p95_us = latencies.quantile(0.95);
    report.p99_us = latencies.quantile(0.99);
    report.wall_secs = wall_secs;
    report.requests_per_sec = if wall_secs > 0.0 {
        completed as f64 / wall_secs
    } else {
        0.0
    };
    Ok(report)
}

fn client_loop(
    addr: SocketAddr,
    config: &LoadConfig,
    client_id: usize,
) -> std::io::Result<(Vec<u64>, LoadReport)> {
    let mut client = Client::connect(addr)?;
    let mut report = LoadReport::default();
    let mut latencies = Vec::with_capacity(config.requests_per_client);
    // Highest profile version this client has observed per user — from
    // its own mutation acks and from personalize responses. HTTP here is
    // synchronous per client, so any later 200 below the high-water mark
    // is a genuinely stale cached answer.
    let mut seen_versions: std::collections::HashMap<String, u64> =
        std::collections::HashMap::new();
    for i in 0..config.requests_per_client {
        let (body, _, user) = match render_request(config, client_id, i) {
            Some(r) => r,
            None => break,
        };
        if let Some(text) = mutation_for(config, client_id, i) {
            let path = format!("/profiles/{user}?merge=true");
            match client.post(&path, &[], text) {
                Ok(resp) if resp.status == 200 => {
                    report.mutations += 1;
                    if let Some(v) = json::parse(&resp.body_text())
                        .ok()
                        .and_then(|j| j.get("version").and_then(Json::as_u64))
                    {
                        let seen = seen_versions.entry(user.clone()).or_insert(0);
                        *seen = (*seen).max(v);
                    }
                }
                Ok(_) => report.client_errors += 1,
                Err(_) => report.io_errors += 1,
            }
        }
        report.requests += 1;
        let trace_id = (config.trace_every > 0 && (i as u64) % config.trace_every == 0)
            .then(|| trace_id_for(config, client_id, i));
        let headers: Vec<(&str, String)> = match &trace_id {
            Some(id) => vec![(crate::telemetry::TRACE_ID_HEADER, id.clone())],
            None => Vec::new(),
        };
        let t = Instant::now();
        match client.post("/personalize", &headers, &body) {
            Err(_) => report.io_errors += 1,
            Ok(resp) => {
                let us = t.elapsed().as_micros() as u64;
                if let Some(id) = &trace_id {
                    report.traced += 1;
                    if resp.header(crate::telemetry::TRACE_ID_HEADER) != Some(id.as_str()) {
                        report.trace_mismatches += 1;
                    }
                }
                match resp.status {
                    200 => {
                        report.ok += 1;
                        latencies.push(us);
                        let parsed = json::parse(&resp.body_text()).ok();
                        let field = |k: &str| parsed.as_ref().and_then(|j| j.get(k).cloned());
                        if field("solution")
                            .and_then(|s| s.get("degraded").cloned())
                            .is_some_and(|d| !matches!(d, Json::Null))
                        {
                            report.degraded += 1;
                        }
                        match field("cache").as_ref().and_then(Json::as_str) {
                            Some("exact") => report.cache_exact += 1,
                            Some("warm") => report.cache_warm += 1,
                            Some("repair") => report.cache_repair += 1,
                            Some("miss") => report.cache_miss += 1,
                            _ => report.cache_off += 1,
                        }
                        if let Some(v) = field("profile_version").and_then(|v| v.as_u64()) {
                            let seen = seen_versions.entry(user.clone()).or_insert(0);
                            if v < *seen {
                                report.stale_answers += 1;
                            }
                            *seen = (*seen).max(v);
                        }
                    }
                    429 => report.rejected += 1,
                    503 => report.unavailable += 1,
                    400..=499 => report.client_errors += 1,
                    _ => report.server_errors += 1,
                }
            }
        }
    }
    Ok((latencies, report))
}

/// What a deliberate overload burst observed.
#[derive(Debug, Clone, Default)]
pub struct ProbeReport {
    /// Requests fired while every execution slot was held.
    pub attempts: u64,
    /// 429s received.
    pub rejected: u64,
    /// 503s received.
    pub unavailable: u64,
    /// First `Retry-After` header seen on a 429 (milliseconds as sent).
    pub retry_after: Option<String>,
}

impl ProbeReport {
    /// The probe as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("attempts", Json::from(self.attempts)),
            ("rejected", Json::from(self.rejected)),
            ("unavailable", Json::from(self.unavailable)),
            (
                "retry_after",
                self.retry_after.as_deref().map_or(Json::Null, Json::from),
            ),
        ])
    }
}

/// Deterministic overload: holds *every* execution slot through the
/// server handle, fires `attempts` personalize requests (`body` must be a
/// valid request), and reports how the admission controller shed them.
/// With a zero-length queue every attempt is a 429 — the deterministic
/// admission-reject measurement `BENCH_serve.json` carries.
pub fn overload_probe(
    handle: &ServerHandle,
    attempts: usize,
    body: &str,
) -> std::io::Result<ProbeReport> {
    let gate = &handle.state().gate;
    let mut permits = Vec::with_capacity(gate.max_inflight());
    while permits.len() < gate.max_inflight() {
        match gate.admit(Duration::ZERO) {
            Ok(p) => permits.push(p),
            Err(_) => break,
        }
    }
    let mut client = Client::connect(handle.addr())?;
    let mut report = ProbeReport::default();
    for _ in 0..attempts {
        report.attempts += 1;
        match client.post("/personalize", &[], body) {
            Ok(resp) if resp.status == 429 => {
                report.rejected += 1;
                if report.retry_after.is_none() {
                    report.retry_after = resp.header("retry-after").map(str::to_string);
                }
            }
            Ok(resp) if resp.status == 503 => report.unavailable += 1,
            _ => {}
        }
    }
    drop(permits);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_is_deterministic_in_the_seed() {
        let config = LoadConfig {
            users: vec!["a".into(), "b".into(), "c".into()],
            queries: vec![
                "SELECT title FROM MOVIE".into(),
                "SELECT name FROM DIRECTOR".into(),
            ],
            ..LoadConfig::default()
        };
        for client in 0..3 {
            for i in 0..10 {
                assert_eq!(
                    render_request(&config, client, i),
                    render_request(&config, client, i)
                );
            }
        }
        // Different seeds really change the mix somewhere in the stream.
        let reseeded = LoadConfig {
            seed: 43,
            ..config.clone()
        };
        let differs =
            (0..50).any(|i| render_request(&config, 0, i) != render_request(&reseeded, 0, i));
        assert!(differs);
    }

    #[test]
    fn rendered_body_is_valid_json_with_required_fields() {
        let config = LoadConfig {
            users: vec!["al\"ice".into()], // a user id that needs escaping
            queries: vec!["SELECT title FROM MOVIE".into()],
            zero_deadline_permille: 1000,
            ..LoadConfig::default()
        };
        let (body, zero_deadline, user) = render_request(&config, 0, 0).unwrap();
        assert!(zero_deadline);
        assert_eq!(user, "al\"ice");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("user").and_then(Json::as_str), Some("al\"ice"));
        assert!(parsed.get("sql").is_some());
        assert!(parsed.get("problem").and_then(|p| p.get("kind")).is_some());
        assert_eq!(parsed.get("deadline_ms").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn zipf_skew_concentrates_on_head_users_without_perturbing_rest() {
        let uniform = LoadConfig {
            users: (0..10).map(|i| format!("u{i}")).collect(),
            queries: vec!["SELECT title FROM MOVIE".into()],
            ..LoadConfig::default()
        };
        let skewed = LoadConfig {
            zipf_theta: 1.2,
            ..uniform.clone()
        };
        let mut head_uniform = 0;
        let mut head_skewed = 0;
        for i in 0..400 {
            let (bu, zu, _) = render_request(&uniform, 0, i).unwrap();
            let (bs, zs, us) = render_request(&skewed, 0, i).unwrap();
            // Only the user draw changes: the same single generator draw
            // feeds both paths, so everything after the user segment of
            // the body is identical.
            assert_eq!(zu, zs);
            assert_eq!(
                bu.split("\"sql\"").nth(1),
                bs.split("\"sql\"").nth(1),
                "skew must not perturb the non-user mix at index {i}"
            );
            if bu.contains("\"u0\"") {
                head_uniform += 1;
            }
            if us == "u0" {
                head_skewed += 1;
            }
        }
        // θ = 1.2 over 10 users puts ~40% of draws on the head vs 10%.
        assert!(head_skewed > head_uniform * 2);
        // θ = 0 is bit-identical to the historical mix.
        let zero = LoadConfig {
            zipf_theta: 0.0,
            ..uniform.clone()
        };
        for i in 0..50 {
            assert_eq!(render_request(&uniform, 1, i), render_request(&zero, 1, i));
        }
    }

    #[test]
    fn mutations_are_deterministic_and_do_not_perturb_the_mix() {
        let base = LoadConfig {
            users: vec!["a".into(), "b".into()],
            queries: vec!["SELECT title FROM MOVIE".into()],
            ..LoadConfig::default()
        };
        let mutating = LoadConfig {
            mutate_permille: 300,
            mutation_texts: vec!["# cqp-profile v1\nprofile m\n".into()],
            ..base.clone()
        };
        // The request mix is untouched by the mutation knobs…
        for i in 0..50 {
            assert_eq!(render_request(&base, 0, i), render_request(&mutating, 0, i));
        }
        // …the mutation schedule is deterministic, fires at roughly the
        // configured rate, and is off when texts are missing.
        let fired: Vec<bool> = (0..1000)
            .map(|i| mutation_for(&mutating, 0, i).is_some())
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|i| mutation_for(&mutating, 0, i).is_some())
            .collect();
        assert_eq!(fired, again);
        let count = fired.iter().filter(|&&f| f).count();
        assert!((150..450).contains(&count), "rate off: {count}");
        assert!(mutation_for(&base, 0, 0).is_none());
    }

    #[test]
    fn empty_mix_is_rejected() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(run_load(addr, &LoadConfig::default()).is_err());
    }
}
