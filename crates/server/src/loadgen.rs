//! A deterministic closed-loop load generator driving real sockets.
//!
//! Closed loop: each client thread keeps exactly one request in flight
//! over one keep-alive connection, so offered load adapts to observed
//! latency (the classic benchmarking discipline that avoids coordinated
//! omission *on the offered side* — we measure what a well-behaved client
//! sees, not queue blow-up of an open firehose).
//!
//! Determinism: the request *mix* is a pure function of `(seed, client,
//! request index)` through a splitmix64 generator — same config, same
//! sequence of users/queries/algorithms/deadlines, every run. Latencies
//! are wall-clock and vary; the mix does not.

use crate::http::{parse_response, ClientResponse, HttpError};
use crate::json;
use crate::server::ServerHandle;
use cqp_obs::{Histogram, Json};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Shape of the generated load.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Mix seed.
    pub seed: u64,
    /// User ids to draw from (must exist on the server).
    pub users: Vec<String>,
    /// Base SQL texts to draw from.
    pub queries: Vec<String>,
    /// Algorithm tokens to draw from (as accepted by the API).
    pub algorithms: Vec<String>,
    /// Problem objects to draw from, each rendered as a JSON fragment
    /// (e.g. `{"kind":"p2","cmax":500}`).
    pub problems: Vec<String>,
    /// Per-mille of requests sent with a 0-ms deadline — these must come
    /// back 200 but *degraded* (the resilience path under load).
    pub zero_deadline_permille: u32,
    /// Personalization depths to draw from; a negative entry means the
    /// full profile.
    pub top_k_choices: Vec<i64>,
    /// Send an explicit `x-cqp-trace-id` header on every Nth request per
    /// client (0 = never). The ID is a pure function of `(seed, client,
    /// index)`, and the client verifies the server echoes it back.
    pub trace_every: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 25,
            seed: 42,
            users: Vec::new(),
            queries: Vec::new(),
            algorithms: vec!["c_maxbounds".to_string(), "d_maxdoi".to_string()],
            problems: vec!["{\"kind\":\"p2\",\"cmax\":2000}".to_string()],
            zero_deadline_permille: 100,
            top_k_choices: vec![-1, 2, 4],
            trace_every: 0,
        }
    }
}

/// What the generated load observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: u64,
    /// 200s.
    pub ok: u64,
    /// 200s whose solution was budget-degraded.
    pub degraded: u64,
    /// 429s (admission shed).
    pub rejected: u64,
    /// 503s (queue timeout / transient backend).
    pub unavailable: u64,
    /// Other 4xx.
    pub client_errors: u64,
    /// 5xx other than 503.
    pub server_errors: u64,
    /// Requests lost to socket-level failures.
    pub io_errors: u64,
    /// End-to-end latency quantiles over 200 responses, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Wall-clock of the whole run, seconds.
    pub wall_secs: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Requests sent with an explicit trace-ID header.
    pub traced: u64,
    /// Traced responses whose `x-cqp-trace-id` echo did not match.
    pub trace_mismatches: u64,
}

impl LoadReport {
    /// The report as a JSON object (for `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        let rate = |n: u64| {
            if self.requests == 0 {
                0.0
            } else {
                n as f64 / self.requests as f64
            }
        };
        Json::obj(vec![
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("degraded", Json::from(self.degraded)),
            ("rejected", Json::from(self.rejected)),
            ("unavailable", Json::from(self.unavailable)),
            ("client_errors", Json::from(self.client_errors)),
            ("server_errors", Json::from(self.server_errors)),
            ("io_errors", Json::from(self.io_errors)),
            ("degraded_rate", Json::from(rate(self.degraded))),
            ("reject_rate", Json::from(rate(self.rejected))),
            ("p50_us", Json::from(self.p50_us)),
            ("p95_us", Json::from(self.p95_us)),
            ("p99_us", Json::from(self.p99_us)),
            ("wall_secs", Json::from(self.wall_secs)),
            ("requests_per_sec", Json::from(self.requests_per_sec)),
            ("traced", Json::from(self.traced)),
            ("trace_mismatches", Json::from(self.trace_mismatches)),
        ])
    }
}

/// splitmix64 — the mix stream is a pure function of the seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick<'a, T>(items: &'a [T], state: &mut u64) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[(splitmix64(state) % items.len() as u64) as usize])
    }
}

/// One HTTP client over one keep-alive connection, reconnecting when the
/// server closes it.
struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr,
            stream,
            reader,
        })
    }

    fn post(
        &mut self,
        path: &str,
        headers: &[(&str, String)],
        body: &str,
    ) -> Result<ClientResponse, HttpError> {
        let mut attempt = 0;
        loop {
            let r = self.post_once(path, headers, body);
            match r {
                // One reconnect per request: a keep-alive close between
                // requests is normal, a second failure is a real error.
                Err(HttpError::ConnectionClosed) | Err(HttpError::Io(_)) if attempt == 0 => {
                    attempt = 1;
                    match Client::connect(self.addr) {
                        Ok(fresh) => *self = fresh,
                        Err(e) => return Err(HttpError::from(e)),
                    }
                }
                other => return other,
            }
        }
    }

    fn post_once(
        &mut self,
        path: &str,
        headers: &[(&str, String)],
        body: &str,
    ) -> Result<ClientResponse, HttpError> {
        let mut head = format!(
            "POST {path} HTTP/1.1\r\nhost: cqp\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        parse_response(&mut self.reader)
    }
}

/// Renders the personalize body for `(client, index)` of the mix.
fn render_request(config: &LoadConfig, client: usize, index: usize) -> Option<(String, bool)> {
    let mut state = config
        .seed
        .wrapping_mul(0x5851_f42d_4c95_7f2d)
        .wrapping_add((client as u64) << 32)
        .wrapping_add(index as u64);
    // Warm the stream so nearby (client, index) pairs decorrelate.
    splitmix64(&mut state);
    let user = pick(&config.users, &mut state)?;
    let sql = pick(&config.queries, &mut state)?;
    let problem = pick(&config.problems, &mut state)?;
    let algorithm = pick(&config.algorithms, &mut state);
    let top_k = pick(&config.top_k_choices, &mut state).copied();
    let zero_deadline = splitmix64(&mut state) % 1000 < u64::from(config.zero_deadline_permille);
    let mut body = format!(
        "{{\"user\":{},\"sql\":{},\"problem\":{problem}",
        Json::from(user.as_str()).render(),
        Json::from(sql.as_str()).render(),
    );
    if let Some(a) = algorithm {
        body.push_str(&format!(
            ",\"algorithm\":{}",
            Json::from(a.as_str()).render()
        ));
    }
    if let Some(k) = top_k {
        if k >= 0 {
            body.push_str(&format!(",\"top_k\":{k}"));
        }
    }
    if zero_deadline {
        body.push_str(",\"deadline_ms\":0");
    }
    body.push('}');
    Some((body, zero_deadline))
}

/// The deterministic trace ID for `(seed, client, index)` — a distinct
/// stream from the body mix so adding tracing never perturbs the mix.
fn trace_id_for(config: &LoadConfig, client: usize, index: usize) -> String {
    let mut state = config
        .seed
        .wrapping_mul(0xa076_1d64_78bd_642f)
        .wrapping_add((client as u64) << 32)
        .wrapping_add(index as u64);
    format!("{:016x}", splitmix64(&mut state))
}

/// Runs the configured load against a server and aggregates what the
/// clients saw. Returns an `io::Error` only when a client cannot connect
/// at all; per-request socket failures are counted in the report.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> std::io::Result<LoadReport> {
    if config.users.is_empty() || config.queries.is_empty() || config.problems.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "load config needs at least one user, query, and problem",
        ));
    }
    let t0 = Instant::now();
    let per_client: Vec<(Vec<u64>, LoadReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|c| s.spawn(move || client_loop(addr, config, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(r)) => r,
                // A client that died whole-sale: count its planned
                // requests as io errors.
                _ => (
                    Vec::new(),
                    LoadReport {
                        requests: config.requests_per_client as u64,
                        io_errors: config.requests_per_client as u64,
                        ..LoadReport::default()
                    },
                ),
            })
            .collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut report = LoadReport::default();
    let mut latencies = Histogram::default();
    let mut completed = 0u64;
    for (lats, partial) in per_client {
        report.requests += partial.requests;
        report.ok += partial.ok;
        report.degraded += partial.degraded;
        report.rejected += partial.rejected;
        report.unavailable += partial.unavailable;
        report.client_errors += partial.client_errors;
        report.server_errors += partial.server_errors;
        report.io_errors += partial.io_errors;
        report.traced += partial.traced;
        report.trace_mismatches += partial.trace_mismatches;
        completed += partial.requests - partial.io_errors;
        for l in lats {
            latencies.observe(l);
        }
    }
    report.p50_us = latencies.quantile(0.50);
    report.p95_us = latencies.quantile(0.95);
    report.p99_us = latencies.quantile(0.99);
    report.wall_secs = wall_secs;
    report.requests_per_sec = if wall_secs > 0.0 {
        completed as f64 / wall_secs
    } else {
        0.0
    };
    Ok(report)
}

fn client_loop(
    addr: SocketAddr,
    config: &LoadConfig,
    client_id: usize,
) -> std::io::Result<(Vec<u64>, LoadReport)> {
    let mut client = Client::connect(addr)?;
    let mut report = LoadReport::default();
    let mut latencies = Vec::with_capacity(config.requests_per_client);
    for i in 0..config.requests_per_client {
        let (body, _) = match render_request(config, client_id, i) {
            Some(r) => r,
            None => break,
        };
        report.requests += 1;
        let trace_id = (config.trace_every > 0 && (i as u64) % config.trace_every == 0)
            .then(|| trace_id_for(config, client_id, i));
        let headers: Vec<(&str, String)> = match &trace_id {
            Some(id) => vec![(crate::telemetry::TRACE_ID_HEADER, id.clone())],
            None => Vec::new(),
        };
        let t = Instant::now();
        match client.post("/personalize", &headers, &body) {
            Err(_) => report.io_errors += 1,
            Ok(resp) => {
                let us = t.elapsed().as_micros() as u64;
                if let Some(id) = &trace_id {
                    report.traced += 1;
                    if resp.header(crate::telemetry::TRACE_ID_HEADER) != Some(id.as_str()) {
                        report.trace_mismatches += 1;
                    }
                }
                match resp.status {
                    200 => {
                        report.ok += 1;
                        latencies.push(us);
                        if response_is_degraded(&resp) {
                            report.degraded += 1;
                        }
                    }
                    429 => report.rejected += 1,
                    503 => report.unavailable += 1,
                    400..=499 => report.client_errors += 1,
                    _ => report.server_errors += 1,
                }
            }
        }
    }
    Ok((latencies, report))
}

/// Whether a 200 body reports a degraded solution.
fn response_is_degraded(resp: &ClientResponse) -> bool {
    json::parse(&resp.body_text())
        .ok()
        .and_then(|j| {
            j.get("solution")
                .and_then(|s| s.get("degraded"))
                .map(|d| !matches!(d, Json::Null))
        })
        .unwrap_or(false)
}

/// What a deliberate overload burst observed.
#[derive(Debug, Clone, Default)]
pub struct ProbeReport {
    /// Requests fired while every execution slot was held.
    pub attempts: u64,
    /// 429s received.
    pub rejected: u64,
    /// 503s received.
    pub unavailable: u64,
    /// First `Retry-After` header seen on a 429 (milliseconds as sent).
    pub retry_after: Option<String>,
}

impl ProbeReport {
    /// The probe as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("attempts", Json::from(self.attempts)),
            ("rejected", Json::from(self.rejected)),
            ("unavailable", Json::from(self.unavailable)),
            (
                "retry_after",
                self.retry_after.as_deref().map_or(Json::Null, Json::from),
            ),
        ])
    }
}

/// Deterministic overload: holds *every* execution slot through the
/// server handle, fires `attempts` personalize requests (`body` must be a
/// valid request), and reports how the admission controller shed them.
/// With a zero-length queue every attempt is a 429 — the deterministic
/// admission-reject measurement `BENCH_serve.json` carries.
pub fn overload_probe(
    handle: &ServerHandle,
    attempts: usize,
    body: &str,
) -> std::io::Result<ProbeReport> {
    let gate = &handle.state().gate;
    let mut permits = Vec::with_capacity(gate.max_inflight());
    while permits.len() < gate.max_inflight() {
        match gate.admit(Duration::ZERO) {
            Ok(p) => permits.push(p),
            Err(_) => break,
        }
    }
    let mut client = Client::connect(handle.addr())?;
    let mut report = ProbeReport::default();
    for _ in 0..attempts {
        report.attempts += 1;
        match client.post("/personalize", &[], body) {
            Ok(resp) if resp.status == 429 => {
                report.rejected += 1;
                if report.retry_after.is_none() {
                    report.retry_after = resp.header("retry-after").map(str::to_string);
                }
            }
            Ok(resp) if resp.status == 503 => report.unavailable += 1,
            _ => {}
        }
    }
    drop(permits);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_is_deterministic_in_the_seed() {
        let config = LoadConfig {
            users: vec!["a".into(), "b".into(), "c".into()],
            queries: vec![
                "SELECT title FROM MOVIE".into(),
                "SELECT name FROM DIRECTOR".into(),
            ],
            ..LoadConfig::default()
        };
        for client in 0..3 {
            for i in 0..10 {
                assert_eq!(
                    render_request(&config, client, i),
                    render_request(&config, client, i)
                );
            }
        }
        // Different seeds really change the mix somewhere in the stream.
        let reseeded = LoadConfig {
            seed: 43,
            ..config.clone()
        };
        let differs =
            (0..50).any(|i| render_request(&config, 0, i) != render_request(&reseeded, 0, i));
        assert!(differs);
    }

    #[test]
    fn rendered_body_is_valid_json_with_required_fields() {
        let config = LoadConfig {
            users: vec!["al\"ice".into()], // a user id that needs escaping
            queries: vec!["SELECT title FROM MOVIE".into()],
            zero_deadline_permille: 1000,
            ..LoadConfig::default()
        };
        let (body, zero_deadline) = render_request(&config, 0, 0).unwrap();
        assert!(zero_deadline);
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("user").and_then(Json::as_str), Some("al\"ice"));
        assert!(parsed.get("sql").is_some());
        assert!(parsed.get("problem").and_then(|p| p.get("kind")).is_some());
        assert_eq!(parsed.get("deadline_ms").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn empty_mix_is_rejected() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(run_load(addr, &LoadConfig::default()).is_err());
    }
}
