//! Admission control: a bounded waiting room in front of the solver.
//!
//! The serving layer must degrade *predictably* under overload: rather
//! than queueing unboundedly (latency grows without limit, every request
//! eventually times out), requests past the bound are rejected immediately
//! with a `Retry-After` hint. Two limits apply:
//!
//! * `max_inflight` — requests allowed to run the personalization
//!   pipeline concurrently;
//! * `queue_cap` — requests allowed to *wait* for an execution slot.
//!
//! A request beyond both is shed with [`AdmissionError::Overloaded`].
//! Waiters are woken FIFO-fairly by a condvar; a waiter whose own deadline
//! expires before a slot frees gives up with
//! [`AdmissionError::QueueTimeout`] (503 — the server was too slow, not
//! the client too greedy).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Both the execution slots and the waiting queue are full → 429.
    Overloaded {
        /// Suggested client back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// A queue slot was granted but no execution slot freed before the
    /// request's deadline → 503.
    QueueTimeout,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    waiting: usize,
}

/// The admission gate. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct AdmissionController {
    state: Mutex<GateState>,
    freed: Condvar,
    max_inflight: usize,
    queue_cap: usize,
    retry_after_ms: u64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
}

impl AdmissionController {
    /// A gate with `max_inflight` execution slots and `queue_cap` waiting
    /// slots (each clamped to ≥ 1 / ≥ 0).
    pub fn new(max_inflight: usize, queue_cap: usize, retry_after_ms: u64) -> Self {
        AdmissionController {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_cap,
            retry_after_ms,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
        }
    }

    /// Acquires an execution slot, waiting up to `max_wait` in the bounded
    /// queue if all slots are busy. The returned [`Permit`] frees the slot
    /// on drop.
    pub fn admit(&self, max_wait: Duration) -> Result<Permit<'_>, AdmissionError> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.queue_cap {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Overloaded {
                retry_after_ms: self.retry_after_ms,
            });
        }
        state.waiting += 1;
        let deadline = Instant::now() + max_wait;
        loop {
            if state.inflight < self.max_inflight {
                state.waiting -= 1;
                state.inflight += 1;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit { gate: self });
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                state.waiting -= 1;
                self.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::QueueTimeout);
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(state, left)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
    }

    /// `(admitted, rejected, queue-timeouts)` counter snapshot.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.admitted.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.timed_out.load(Ordering::Relaxed),
        )
    }

    /// Currently executing requests.
    pub fn inflight(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .inflight
    }

    /// Requests currently parked in the waiting queue — the admission
    /// queue depth gauge `/metrics` exports.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).waiting
    }

    /// Execution slots.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Waiting slots.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }
}

/// An execution slot; freed (and one waiter woken) on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionController,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap_or_else(|p| p.into_inner());
        state.inflight = state.inflight.saturating_sub(1);
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_max_inflight_then_queues_then_sheds() {
        let gate = AdmissionController::new(2, 1, 250);
        let a = gate.admit(Duration::ZERO).unwrap();
        let b = gate.admit(Duration::ZERO).unwrap();
        assert_eq!(gate.inflight(), 2);
        // Slots full, zero patience → the queue slot times out.
        assert_eq!(
            gate.admit(Duration::ZERO).err(),
            Some(AdmissionError::QueueTimeout)
        );
        drop(a);
        let c = gate.admit(Duration::ZERO).unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.inflight(), 0);
        let (admitted, rejected, timed_out) = gate.counters();
        assert_eq!((admitted, rejected, timed_out), (3, 0, 1));
    }

    #[test]
    fn overflow_past_queue_cap_is_rejected_with_retry_after() {
        let gate = Arc::new(AdmissionController::new(1, 1, 250));
        let held = gate.admit(Duration::ZERO).unwrap();
        // Fill the single waiting slot from another thread (it will wait).
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(Duration::from_secs(5)).map(|_| ()))
        };
        // Wait until the waiter occupies the queue slot.
        for _ in 0..200 {
            if gate.state.lock().unwrap().waiting == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            gate.admit(Duration::from_secs(5)).err(),
            Some(AdmissionError::Overloaded {
                retry_after_ms: 250
            })
        );
        drop(held); // waiter gets the slot and returns
        waiter.join().unwrap().unwrap();
        let (_, rejected, _) = gate.counters();
        assert_eq!(rejected, 1);
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let gate = Arc::new(AdmissionController::new(1, 4, 250));
        let held = gate.admit(Duration::ZERO).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || gate.admit(Duration::from_secs(10)).map(|_| ()))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        for h in handles {
            h.join().unwrap().unwrap();
        }
        let (admitted, rejected, timed_out) = gate.counters();
        assert_eq!((admitted, rejected, timed_out), (4, 0, 0));
        assert_eq!(gate.inflight(), 0);
    }
}
