//! A recursive-descent JSON parser producing [`cqp_obs::Json`] values.
//!
//! cqp-obs ships only the *writer* half (reports are write-only); the
//! server needs the reader half for request bodies. Standard JSON with two
//! deliberate simplifications: `\uXXXX` escapes outside the BMP are not
//! combined into surrogate pairs (each half decodes to U+FFFD), and depth
//! is capped so a hostile body cannot overflow the stack.

use cqp_obs::Json;

/// Maximum nesting depth accepted.
const MAX_DEPTH: usize = 64;

/// Where and why parsing failed.
#[derive(Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected byte {:?}", c as char)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `]`");
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected string key");
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.err("expected `:`");
            }
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(members));
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `}`");
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = match self.peek() {
                        None => return self.err("unterminated escape"),
                        Some(e) => e,
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex {
                                None => return self.err("bad \\u escape"),
                                Some(cp) => {
                                    self.pos += 4;
                                    out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                }
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (bodies arrive as bytes).
                    let rest = &self.bytes[self.pos..];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            // Safe: the prefix was just validated.
                            std::str::from_utf8(&rest[..e.valid_up_to()]).unwrap_or("\u{fffd}")
                        }
                        Err(_) => return self.err("invalid utf-8 in string"),
                    };
                    match s.chars().next() {
                        None => return self.err("invalid utf-8 in string"),
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(format!("bad number {text:?}")),
        }
    }
}

/// Parses `text` as a single JSON document (trailing garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse(r#"[1, "x", [false]]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("x".into()),
                Json::Arr(vec![Json::Bool(false)])
            ])
        );
        let obj = parse(r#"{"user":"al","k":3}"#).unwrap();
        assert_eq!(obj.get("user").and_then(Json::as_str), Some("al"));
        assert_eq!(obj.get("k").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn round_trips_the_writer_output() {
        let original = Json::obj(vec![
            ("s", Json::Str("quote \" slash \\ nl \n".into())),
            ("nums", Json::Arr(vec![Json::Num(0.5), Json::Num(-3.0)])),
            ("nested", Json::obj(vec![("empty", Json::Arr(vec![]))])),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
        ]);
        assert_eq!(parse(&original.render()).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("A\u{e9}".into())
        );
        assert_eq!(
            parse(r#""é direct""#).unwrap(),
            Json::Str("é direct".into())
        );
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "01x",
            r#""unterminated"#,
            "{} trailing",
            "nul",
            "[1 2]",
            r#"{"a":1,}"#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = parse(r#"{"a": }"#).unwrap_err();
        assert!(e.offset > 0 && e.to_string().contains("byte"));
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }
}
