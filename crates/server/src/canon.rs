//! SQL template canonicalization for the answer cache.
//!
//! Two requests that spell the same query differently — extra whitespace,
//! different keyword or identifier case, `007` vs `7` — must land on the
//! same cache family, or the answer cache degenerates into a per-spelling
//! cache. [`canonicalize_sql`] maps textual variants onto one canonical
//! template:
//!
//! * everything *outside* single-quoted string literals is lowercased;
//! * whitespace runs collapse to single separators, placed by token kind
//!   (none before `, ) . ;`, none after `( .`);
//! * numeric literals are normalized through an `f64` round-trip
//!   (`007` → `7`, `1990.0` → `1990`), so equal values spelled
//!   differently hash identically while *different* values stay distinct;
//! * string literal *content* is preserved byte-for-byte (including the
//!   `''` escape) — `'Drama'` and `'drama'` are different constants;
//! * multi-character comparison operators (`<=`, `>=`, `<>`, `!=`) are
//!   kept as single tokens.
//!
//! The canonical text is hashed together with the *parsed* query's debug
//! form ([`template_hash`]): the text catches spelling variance, the
//! parsed form is a semantic backstop so two texts that canonicalize
//! alike but parse differently can never share a family.

use cqp_core::answer_cache::{fnv1a, FNV_OFFSET};
use cqp_engine::ConjunctiveQuery;

/// One lexed piece of the input, carrying enough kind information for the
/// joiner to place separators.
enum Tok {
    Word(String),
    Number(String),
    Str(String),
    Punct(String),
}

/// Canonicalizes a SQL text (see the module docs for the exact rules).
/// Purely textual — invalid SQL still canonicalizes deterministically,
/// which is fine because the parser has its own say in [`template_hash`].
pub fn canonicalize_sql(sql: &str) -> String {
    let toks = lex(sql);
    let mut out = String::with_capacity(sql.len());
    let mut prev_glues_right = true; // no leading space
    for tok in &toks {
        let (text, glue_left, glue_right) = match tok {
            Tok::Word(w) | Tok::Number(w) | Tok::Str(w) => (w.as_str(), false, false),
            Tok::Punct(p) => match p.as_str() {
                "," | ")" | ";" => (p.as_str(), true, false),
                "(" => (p.as_str(), false, true),
                "." => (p.as_str(), true, true),
                _ => (p.as_str(), false, false),
            },
        };
        if !out.is_empty() && !prev_glues_right && !glue_left {
            out.push(' ');
        }
        out.push_str(text);
        prev_glues_right = glue_right;
    }
    out
}

/// Hashes a request's SQL into its cache-template identity: FNV over the
/// canonical text, chained with the parsed query's debug rendering.
pub fn template_hash(sql: &str, query: &ConjunctiveQuery) -> u64 {
    let h = fnv1a(FNV_OFFSET, canonicalize_sql(sql).as_bytes());
    fnv1a(h, format!("{query:?}").as_bytes())
}

fn lex(sql: &str) -> Vec<Tok> {
    let bytes = sql.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b == b'\'' {
            let (lit, next) = lex_string(sql, i);
            toks.push(Tok::Str(lit));
            i = next;
        } else if b.is_ascii_digit()
            || (b == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
        {
            let (num, next) = lex_number(sql, i);
            toks.push(Tok::Number(num));
            i = next;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
            {
                i += 1;
            }
            toks.push(Tok::Word(sql[start..i].to_ascii_lowercase()));
        } else {
            // Punctuation / operator; greedy two-byte comparison forms.
            let two = bytes.get(i + 1).map(|&n| [b, n]);
            let op = match two {
                Some(pair) if matches!(&pair, b"<=" | b">=" | b"<>" | b"!=" | b"==" | b"||") => {
                    i += 2;
                    String::from_utf8_lossy(&pair).into_owned()
                }
                _ => {
                    let ch = sql[i..].chars().next().unwrap_or(' ');
                    i += ch.len_utf8();
                    ch.to_lowercase().collect()
                }
            };
            toks.push(Tok::Punct(op));
        }
    }
    toks
}

/// Consumes a `'...'` literal starting at `start`, honoring the `''`
/// escape. Content is preserved verbatim; an unterminated literal runs to
/// the end of the text (still deterministic).
fn lex_string(sql: &str, start: usize) -> (String, usize) {
    let bytes = sql.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                i += 2; // escaped quote, keep going
            } else {
                i += 1; // closing quote
                break;
            }
        } else {
            i += 1;
        }
    }
    (sql[start..i].to_string(), i)
}

/// Consumes a numeric literal and normalizes it through `f64` when the
/// round-trip is exact enough to be value-preserving for our purposes.
fn lex_number(sql: &str, start: usize) -> (String, usize) {
    let bytes = sql.as_bytes();
    let mut i = start;
    let mut seen_dot = false;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_digit() {
            i += 1;
        } else if b == b'.' && !seen_dot {
            seen_dot = true;
            i += 1;
        } else {
            break;
        }
    }
    let raw = &sql[start..i];
    let norm = raw
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .map_or_else(|| raw.to_string(), |v| format!("{v}"));
    (norm, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_and_case_variants_collapse() {
        let a = canonicalize_sql("SELECT title FROM MOVIE WHERE year >= 1990");
        let b = canonicalize_sql("select   title\n  from movie\twhere YEAR>=1990");
        assert_eq!(a, b);
        assert_eq!(a, "select title from movie where year >= 1990");
    }

    #[test]
    fn numeric_literals_normalize_but_stay_distinct() {
        assert_eq!(
            canonicalize_sql("where year = 007"),
            canonicalize_sql("where YEAR=7")
        );
        assert_eq!(
            canonicalize_sql("where size > 10.50"),
            canonicalize_sql("where size > 10.5")
        );
        assert_ne!(
            canonicalize_sql("where year = 1990"),
            canonicalize_sql("where year = 1991")
        );
    }

    #[test]
    fn string_literal_content_is_preserved_verbatim() {
        let c = canonicalize_sql("SELECT * FROM MOVIE WHERE Title = 'The BIG Sleep'");
        assert!(c.contains("'The BIG Sleep'"));
        assert_ne!(
            canonicalize_sql("where g = 'Drama'"),
            canonicalize_sql("where g = 'drama'")
        );
        // The '' escape stays inside the literal instead of ending it.
        let esc = canonicalize_sql("WHERE name = 'O''Hara' AND x = 1");
        assert!(esc.contains("'O''Hara'"));
        assert!(esc.ends_with("and x = 1"));
    }

    #[test]
    fn punctuation_spacing_is_canonical() {
        let a = canonicalize_sql("SELECT m.title , g.genre FROM MOVIE m,GENRE g");
        let b = canonicalize_sql("select M . Title, G.GENRE from movie m , genre g");
        assert_eq!(a, b);
        assert_eq!(a, "select m.title, g.genre from movie m, genre g");
        assert_eq!(
            canonicalize_sql("WHERE a IN ( 1 , 2 )"),
            canonicalize_sql("where a in(1,2)")
        );
    }

    #[test]
    fn comparison_operators_are_single_tokens() {
        assert_eq!(canonicalize_sql("a<=b"), "a <= b");
        assert_eq!(canonicalize_sql("a <> b"), "a <> b");
        assert_eq!(canonicalize_sql("a<b"), "a < b");
    }

    #[test]
    fn unterminated_literal_is_deterministic() {
        let a = canonicalize_sql("where x = 'oops");
        let b = canonicalize_sql("where x = 'oops");
        assert_eq!(a, b);
    }
}
