//! `cqp-server` — a zero-dependency personalization serving layer.
//!
//! The paper evaluates constrained query personalization as an offline
//! pipeline: profile in, personalized query out. This crate puts that
//! pipeline behind a socket, which is where its *constrained* framing
//! earns its keep — a serving deployment has exactly the resources the
//! paper's Table 1 constrains (execution cost, result size, personalization
//! depth), plus two of its own: concurrency and time.
//!
//! Layers, bottom up:
//!
//! * [`http`] — a minimal HTTP/1.1 codec over `std::net` (no TLS, no
//!   chunking), with hard head/body limits and typed parse errors.
//! * [`json`] — a bounded recursive-descent parser producing the same
//!   [`Json`](cqp_obs::Json) tree `cqp-obs` renders, so the server reads
//!   and writes one JSON dialect.
//! * [`canon`] — SQL template canonicalization, so spelling variants of
//!   one query land on one answer-cache family.
//! * [`session`] — the sharded, versioned profile store; profiles arrive
//!   via the `# cqp-profile v1` wire format and live across requests.
//! * [`admission`] — bounded-queue admission control: predictable 429/503
//!   shedding instead of unbounded queueing.
//! * [`server`] — the router and request lifecycle, mapping HTTP requests
//!   onto [`BatchDriver::submit`](cqp_core::prelude::BatchDriver) with
//!   per-request deadlines ([`Budget`](cqp_core::prelude::Budget)).
//! * [`wal`] — the append-only, checksummed write-ahead log that makes
//!   the session store survive crashes (torn tails healed on replay).
//! * [`repl`] — synchronous WAL shipping to a follower replica, with
//!   follower roles and `POST /admin/promote` failover (the WAL record
//!   format doubles as the replication wire format).
//! * [`telemetry`] — per-server trace identity and sampling, trace
//!   retention (ring + slow-query log), SLO time series, and the labeled
//!   request counters behind the Prometheus `/metrics` endpoint.
//! * [`loadgen`] — a deterministic closed-loop load generator over real
//!   sockets, feeding `BENCH_serve.json`.
//! * [`chaos`] — a seeded connection-level chaos client (truncated heads,
//!   mid-body disconnects, slowloris, garbage) for the robustness suite.
//!
//! Everything is `std`-only, same as the rest of the workspace.

pub mod admission;
pub mod canon;
pub mod chaos;
pub mod connscale;
pub mod http;
pub mod json;
pub mod loadgen;
pub(crate) mod reactor;
pub mod repl;
pub mod server;
pub mod session;
pub mod telemetry;
pub mod wal;

pub use admission::{AdmissionController, AdmissionError, Permit};
pub use canon::{canonicalize_sql, template_hash};
pub use chaos::{run_chaos, ChaosConfig, ChaosMode, ChaosOutcome, ChaosReport};
pub use connscale::{run_conn_scale, ConnScaleConfig, ConnScaleReport};
pub use loadgen::{
    overload_probe, run_load, run_load_targets, LoadConfig, LoadReport, ProbeReport,
};
pub use repl::{Repl, Role};
pub use server::{start, Backend, ServerConfig, ServerHandle, ServerState};
pub use session::{SessionStore, StoredProfile, UpsertMode, WriteListener};
pub use telemetry::{Telemetry, DEADLINE_REMAINING_HEADER, TRACE_ID_HEADER};
pub use wal::{OpenedWal, PutRecord, RecoveryReport, Wal};
