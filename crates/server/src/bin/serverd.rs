//! `serverd` — a standalone cqp-server process for crash testing.
//!
//! The in-process test harness can exercise graceful drain, but only a
//! real process can be SIGKILLed. This binary boots a server over a
//! deterministic datagen movie database with a WAL-backed session store,
//! prints the bound address, and parks until killed — CI's
//! kill-and-restart smoke drives it with curl.
//!
//! ```text
//! serverd --addr 127.0.0.1:9142 --wal-dir /tmp/cqp-wal --seed 42 [--seed-users 8]
//!         [--trace-sample N] [--slo-ms N] [--chrome-trace PATH]
//!         [--backend threaded|epoll] [--read-timeout-ms N] [--max-conns N]
//!         [--repl-listen HOST:PORT | --follow HOST:PORT]
//! ```
//!
//! `--repl-listen` / `--follow` form primary/follower pairs: the primary
//! ships its WAL synchronously to the follower, and `POST /admin/promote`
//! fails the follower over (see `cqp_server::repl`). `serverd --help`
//! documents every flag.
//!
//! `--backend` picks the serving core (defaults to `CQP_SERVER_BACKEND`,
//! then `threaded`); the connection-scale bench boots `--backend epoll`
//! as a child process so the 10k-connection herd lives in its own fd
//! table.
//!
//! `--chrome-trace PATH` periodically dumps the trace retention ring as a
//! Chrome trace-event document (loadable in `chrome://tracing` or
//! Perfetto), written atomically via tmp-file + rename so a reader never
//! sees a torn JSON file.

use cqp_obs::reqtrace::traces_to_chrome;
use cqp_server::{start, Backend, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Writes `content` to `path` atomically (tmp + rename).
fn write_atomic(path: &PathBuf, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..Default::default()
    };
    let mut db_seed = 7u64;
    let mut chrome_trace: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("serverd: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--wal-dir" => config.wal_dir = Some(value("--wal-dir").into()),
            "--seed" => {
                db_seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --seed must be an integer");
                    std::process::exit(2);
                })
            }
            "--seed-users" => {
                config.seed_users = value("--seed-users").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --seed-users must be an integer");
                    std::process::exit(2);
                })
            }
            "--trace-sample" => {
                config.trace_sample_every = value("--trace-sample").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --trace-sample must be an integer (0 = off)");
                    std::process::exit(2);
                })
            }
            "--slo-ms" => {
                config.slo_objective_ms = value("--slo-ms").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --slo-ms must be an integer");
                    std::process::exit(2);
                })
            }
            "--chrome-trace" => chrome_trace = Some(value("--chrome-trace").into()),
            "--no-answer-cache" => config.answer_cache = false,
            "--repl-listen" => config.repl_listen = Some(value("--repl-listen")),
            "--follow" => config.follow = Some(value("--follow")),
            "--backend" => {
                let v = value("--backend");
                config.backend = Backend::parse(&v).unwrap_or_else(|| {
                    eprintln!("serverd: --backend must be 'threaded' or 'epoll'");
                    std::process::exit(2);
                })
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms = value("--read-timeout-ms").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --read-timeout-ms must be an integer");
                    std::process::exit(2);
                })
            }
            "--max-conns" => {
                config.max_connections = value("--max-conns").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --max-conns must be an integer");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "serverd — a standalone cqp-server process\n\
                     \n\
                     usage: serverd [FLAGS]\n\
                     \n\
                     serving:\n\
                     \x20 --addr HOST:PORT         bind address (default 127.0.0.1:0 = ephemeral port)\n\
                     \x20 --backend threaded|epoll serving core (default $CQP_SERVER_BACKEND, then threaded)\n\
                     \x20 --max-conns N            epoll backend: most connections held open at once\n\
                     \x20 --read-timeout-ms N      per-request read deadline / keep-alive idle timeout\n\
                     \n\
                     data:\n\
                     \x20 --wal-dir DIR            journal the session store to a WAL in DIR and\n\
                     \x20                          recover from it on startup\n\
                     \x20 --seed N                 datagen database seed (default 7)\n\
                     \x20 --seed-users N           pre-seed N deterministic user profiles (0 = none;\n\
                     \x20                          only applies when recovery left the store empty)\n\
                     \x20 --no-answer-cache        disable the cross-request answer cache\n\
                     \n\
                     replication:\n\
                     \x20 --repl-listen HOST:PORT  act as a primary: ship the WAL to whichever\n\
                     \x20                          follower connects here (requires --wal-dir)\n\
                     \x20 --follow HOST:PORT       act as a follower of the primary whose replication\n\
                     \x20                          listener is at this address (requires --wal-dir;\n\
                     \x20                          POST /admin/promote fails over); mutually\n\
                     \x20                          exclusive with --repl-listen\n\
                     \n\
                     observability:\n\
                     \x20 --trace-sample N         capture one span tree every N personalize requests\n\
                     \x20                          (0 = off; explicit x-cqp-trace-id always captured)\n\
                     \x20 --slo-ms N               latency objective for SLO burn accounting\n\
                     \x20 --chrome-trace PATH      periodically dump the trace ring as a Chrome\n\
                     \x20                          trace-event document (atomic tmp+rename)\n\
                     \n\
                     The readiness contract: the last line printed on successful boot is\n\
                     `listening on ADDR (recovered N records)`; with --repl-listen a\n\
                     `replication on ADDR` line precedes it."
                );
                return;
            }
            other => {
                eprintln!("serverd: unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    config.seed = db_seed;
    if config.backend == Backend::Epoll {
        // A C10k herd needs fd headroom: one fd per connection plus the
        // reactor plumbing. Best effort — the kernel hard cap rules.
        let want = (config.max_connections as u64)
            .saturating_mul(2)
            .saturating_add(64);
        let got = cqp_sys::raise_nofile_limit(want).unwrap_or(0);
        if got < want {
            eprintln!("serverd: nofile limit {got} < requested {want}; large herds may shed");
        }
    }
    let db = Arc::new(cqp_datagen::generate_movie_db(
        &cqp_datagen::MovieDbConfig::tiny(db_seed),
    ));
    let handle = match start(db, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serverd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = chrome_trace {
        let state = Arc::clone(handle.state());
        std::thread::spawn(move || loop {
            let traces = state.telemetry.ring.recent(usize::MAX);
            let doc = traces_to_chrome(&traces).render();
            if let Err(e) = write_atomic(&path, &doc) {
                eprintln!("serverd: chrome trace dump failed: {e}");
            }
            std::thread::sleep(Duration::from_secs(2));
        });
    }
    let recovered = handle
        .state()
        .recovery
        .as_ref()
        .map_or(0, |r| r.records_replayed());
    if let Some(repl_addr) = handle.repl_addr() {
        // Where followers connect; printed before the readiness line so a
        // spawner reading until "listening on" has it already.
        println!("replication on {repl_addr}");
    }
    // The "listening on" line is the readiness contract with CI scripts.
    println!(
        "listening on {} (recovered {recovered} records)",
        handle.addr()
    );
    loop {
        std::thread::park();
    }
}
