//! `serverd` — a standalone cqp-server process for crash testing.
//!
//! The in-process test harness can exercise graceful drain, but only a
//! real process can be SIGKILLed. This binary boots a server over a
//! deterministic datagen movie database with a WAL-backed session store,
//! prints the bound address, and parks until killed — CI's
//! kill-and-restart smoke drives it with curl.
//!
//! ```text
//! serverd --addr 127.0.0.1:9142 --wal-dir /tmp/cqp-wal --seed 42 [--seed-users 8]
//! ```

use cqp_server::{start, ServerConfig};
use std::sync::Arc;

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..Default::default()
    };
    let mut db_seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("serverd: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--wal-dir" => config.wal_dir = Some(value("--wal-dir").into()),
            "--seed" => {
                db_seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --seed must be an integer");
                    std::process::exit(2);
                })
            }
            "--seed-users" => {
                config.seed_users = value("--seed-users").parse().unwrap_or_else(|_| {
                    eprintln!("serverd: --seed-users must be an integer");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: serverd [--addr HOST:PORT] [--wal-dir DIR] [--seed N] [--seed-users N]"
                );
                return;
            }
            other => {
                eprintln!("serverd: unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    config.seed = db_seed;
    let db = Arc::new(cqp_datagen::generate_movie_db(
        &cqp_datagen::MovieDbConfig::tiny(db_seed),
    ));
    let handle = match start(db, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serverd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let recovered = handle
        .state()
        .recovery
        .as_ref()
        .map_or(0, |r| r.records_replayed());
    // The "listening on" line is the readiness contract with CI scripts.
    println!(
        "listening on {} (recovered {recovered} records)",
        handle.addr()
    );
    loop {
        std::thread::park();
    }
}
